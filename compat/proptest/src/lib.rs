//! Hermetic stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the slice of proptest's API its tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, `prop::collection::vec`, the [`proptest!`] macro
//! (with optional `#![proptest_config(..)]`), and the `prop_assert*`
//! macros.
//!
//! Differences from upstream: cases are generated from a fixed seed (so
//! failures reproduce deterministically) and there is **no shrinking** —
//! a failing case reports its inputs via the panic message only.

use rand::rngs::SmallRng;
use rand::Rng;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The random source handed to strategies.
pub type TestRng = SmallRng;

/// A generator of test inputs.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Chains a value-dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_camel_case_types)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (a, b) (a, b, c) (a, b, c, d) (a, b, c, d, e) (a, b, c, d, e, f) }

/// A strategy yielding one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection sizes: a fixed count or a range of counts.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// `prop::collection` etc., mirroring proptest's module layout.
pub mod prop {
    /// Strategies over collections.
    pub mod collection {
        use super::super::{IntoSizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s whose elements come from `element` and
        /// whose length comes from `size`.
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        /// Builds a [`VecStrategy`].
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

#[doc(hidden)]
pub use rand as __rand;

/// Everything tests typically import.
pub mod prelude {
    pub use super::{prop, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the current case when the assumption does not hold. The body
/// runs inside a per-case closure, so an early return abandons just this
/// case (no replacement case is generated, unlike upstream).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return;
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Each function body runs for `cases`
/// freshly generated inputs (default 64, override with
/// `#![proptest_config(ProptestConfig::with_cases(N))]`).
#[macro_export]
macro_rules! proptest {
    // Internal muncher arms must precede the public entry arms: the
    // trailing catch-all would otherwise re-capture `@fns ...` calls and
    // recurse forever.
    (@fns ($config:expr)) => {};
    (
        @fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // Callers write `#[test]` themselves (as upstream requires), so
        // the expansion only forwards the attributes it captured.
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            // Deterministic seed derived from the test name so distinct
            // tests explore distinct streams but failures reproduce.
            let seed = {
                let name = stringify!($name);
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut rng: $crate::TestRng =
                <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)*
                // Render inputs up front: the body may consume them.
                let mut rendered_inputs = String::new();
                $(rendered_inputs.push_str(
                    &format!("  {} = {:?}\n", stringify!($arg), $arg),
                );)*
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} failed with inputs:\n{}",
                        case + 1,
                        config.cases,
                        rendered_inputs
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };

    // With a config override.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    // Without: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_collections_compose(
            xs in prop::collection::vec(0u64..100, 1..8),
            scale in 1usize..=3,
        ) {
            prop_assert!(xs.len() < 8 && !xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!((1..=3).contains(&scale));
        }

        #[test]
        fn map_and_flat_map_work(
            v in (1usize..=4, 1usize..=4).prop_flat_map(|(r, c)| {
                prop::collection::vec(-1.0f32..1.0, r * c).prop_map(move |d| (r, c, d))
            }),
        ) {
            let (r, c, d) = v;
            prop_assert_eq!(d.len(), r * c);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        use rand::SeedableRng;
        let s = crate::prop::collection::vec(0u64..1000, 5);
        let mut r1 = crate::TestRng::seed_from_u64(1);
        let mut r2 = crate::TestRng::seed_from_u64(1);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
