//! Hermetic stand-in for the `criterion` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the slice of criterion's API its benchmarks
//! use. Statistics are deliberately simple: each benchmark warms up
//! briefly, then runs timed batches until a time budget is spent, and
//! reports the median per-iteration wall-clock time (plus throughput
//! when configured). No plotting, no outlier analysis.

use std::time::{Duration, Instant};

/// Re-export for drop-in compatibility with `criterion::black_box`.
pub use std::hint::black_box;

/// Declared throughput of a benchmark, for elements/second reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output `iter_batched` amortizes per timing batch.
/// The stand-in times each routine call individually, so the hint is
/// accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per measurement.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let measurement = self.measurement;
        eprintln!("group {}", name);
        BenchmarkGroup { _criterion: self, name, throughput: None, sample_size: 0, measurement }
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Unused by the stand-in (kept for API compatibility).
    sample_size: usize,
    measurement: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for compatibility; the stand-in sizes samples by time.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n;
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), budget: self.measurement };
        f(&mut bencher);
        bencher.report(&self.name, &id, self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and per-call estimate.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let calls = (self.budget.as_nanos() / estimate.as_nanos()).clamp(1, 100_000) as usize;
        for _ in 0..calls {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh state from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let calls = (self.budget.as_nanos() / estimate.as_nanos()).clamp(1, 10_000) as usize;
        for _ in 0..calls {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(mut self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            eprintln!("  {}/{}: no samples", group, id);
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let per_iter_ns = median.as_nanos().max(1);
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.2e} elem/s)", n as f64 * 1e9 / per_iter_ns as f64)
            }
            Throughput::Bytes(n) => {
                format!(" ({:.2e} B/s)", n as f64 * 1e9 / per_iter_ns as f64)
            }
        });
        eprintln!(
            "  {}/{}: median {:?} over {} samples{}",
            group,
            id,
            median,
            self.samples.len(),
            rate.unwrap_or_default()
        );
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs() {
        let mut c = Criterion { measurement: Duration::from_millis(5) };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        let mut count = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
