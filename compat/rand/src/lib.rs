//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of the `rand` 0.8 API it
//! actually uses: [`RngCore`]/[`Rng`]/[`SeedableRng`], a seedable
//! [`rngs::SmallRng`] (xoshiro256++), and [`rngs::mock::StepRng`].
//!
//! The generator is of good statistical quality and fully deterministic
//! per seed, but its streams differ from upstream `rand`'s `SmallRng`;
//! tests asserting calibrated statistical properties keep their
//! tolerances, they just see a different sample.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Largest `f32` strictly below `x` (assumes `x` finite, `> -inf`).
fn next_down_f32(x: f32) -> f32 {
    if x > 0.0 {
        f32::from_bits(x.to_bits() - 1)
    } else if x < 0.0 {
        f32::from_bits(x.to_bits() + 1)
    } else {
        -f32::from_bits(1)
    }
}

/// Largest `f64` strictly below `x`.
fn next_down_f64(x: f64) -> f64 {
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else if x < 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        -f64::from_bits(1)
    }
}

/// Types with uniform range sampling. Mirroring upstream, the range
/// shapes get one blanket impl each over this trait, so `gen_range(5..n)`
/// infers the element type from context instead of defaulting to `i32`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span =
                    (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "gen_range: empty range");
                // Widening multiply maps 64 random bits onto [0, span).
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
        let u: f32 = Standard::sample(rng);
        let v = lo + (hi - lo) * u;
        // Float rounding can land exactly on the excluded upper bound.
        if !inclusive && v >= hi {
            next_down_f32(hi).max(lo)
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        let v = lo + (hi - lo) * u;
        if !inclusive && v >= hi {
            next_down_f64(hi).max(lo)
        } else {
            v
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the type's standard domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators. Upstream `rand` seeds from byte arrays too; this
/// workspace only ever uses `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: expands one u64 seed into well-mixed words.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw generator state, for exact persistence: a generator
        /// rebuilt with [`SmallRng::from_state`] continues the stream
        /// bit-for-bit where this one stands.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`SmallRng::state`] output.
        /// An all-zero state (a xoshiro fixed point that `state()` can
        /// never produce) is nudged to a valid one.
        pub fn from_state(mut s: [u64; 4]) -> SmallRng {
            if s == [0; 4] {
                s[0] = 0x1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            SmallRng { s }
        }
    }

    pub mod mock {
        //! Deterministic non-random generators for tests and
        //! initialize-then-overwrite patterns.

        use super::super::RngCore;

        /// Yields `initial`, `initial + step`, `initial + 2*step`, ...
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Builds the generator.
            pub fn new(initial: u64, step: u64) -> StepRng {
                StepRng { v: initial, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{mock::StepRng, SmallRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen_range(-0.25f32..0.25);
            assert!((-0.25..0.25).contains(&f), "{}", f);
            let g: f64 = rng.gen_range(0.0f64..1e-30);
            assert!((0.0..1e-30).contains(&g), "{}", g);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn mean_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {}", mean);
    }

    #[test]
    fn step_rng_counts() {
        let mut r = StepRng::new(1, 1);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }
}
