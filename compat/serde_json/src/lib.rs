//! Hermetic stand-in for the `serde_json` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the slice of `serde_json`'s API it uses: the
//! [`Value`] tree, [`Map`], [`from_str`]/[`to_string`]/
//! [`to_string_pretty`] over `Value`s, and the [`json!`] macro. There is
//! no `Serialize`/`Deserialize` derive layer — callers build and walk
//! `Value` trees explicitly, which also keeps on-disk formats easy to
//! validate (see `nfv_nn::checkpoint`).
//!
//! Object keys are stored in a `BTreeMap`, so serialization is
//! canonical: the same tree always renders to the same bytes. Checkpoint
//! checksums rely on this.

use std::collections::BTreeMap;
use std::fmt;

/// Ordered string-keyed map used for JSON objects.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// Empty map.
    pub fn new() -> Self {
        Map { inner: BTreeMap::new() }
    }

    /// Inserts a key-value pair, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Map { inner: iter.into_iter().collect() }
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// A JSON number. `f32`-originated values keep their width so they
/// render with the shortest `f32` representation instead of a blown-up
/// `f64` expansion (checkpoints store millions of `f32` weights).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// 32-bit float.
    F32(f32),
}

impl Number {
    /// Value as `f64` (lossless for all variants).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
            Number::F32(v) => v as f64,
        }
    }

    /// Value as `u64` when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Value as `i64` when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{}", v),
            Number::I64(v) => write!(f, "{}", v),
            // JSON has no NaN/inf; mirror serde_json and emit null so
            // readers get a typed "expected number" error, not a panic.
            Number::F64(v) if !v.is_finite() => write!(f, "null"),
            Number::F32(v) if !v.is_finite() => write!(f, "null"),
            Number::F64(v) => {
                if v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{}", v)
                }
            }
            Number::F32(v) => {
                if v == v.trunc() && v.abs() < 1e7 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{}", v)
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as u64 (integral numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Borrow as i64 (integral numbers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrow as f64 (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

// --- Conversions used by the json! macro and by checkpoint writers. ---

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F32(v))
    }
}
macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);
macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 { Value::Number(Number::U64(v as u64)) }
                else { Value::Number(Number::I64(v as i64)) }
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);
impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}
impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::from(*v)
    }
}
impl From<&f32> for Value {
    fn from(v: &f32) -> Value {
        Value::from(*v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}
impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}
impl From<()> for Value {
    fn from(_: ()) -> Value {
        Value::Null
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

macro_rules! from_tuple {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_camel_case_types)]
        impl<$($n: Into<Value>),+> From<($($n,)+)> for Value {
            fn from(t: ($($n,)+)) -> Value {
                let ($($n,)+) = t;
                Value::Array(vec![$($n.into()),+])
            }
        }
    )*};
}
from_tuple! { (a, b) (a, b, c) (a, b, c, d) (a, b, c, d, e) (a, b, c, d, e, f) }

impl<T: Into<Value> + Clone, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone, const N: usize> From<&[T; N]> for Value {
    fn from(v: &[T; N]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from JSON-looking syntax. Subset of serde_json's
/// macro: `null`, literals, arbitrary expressions, arrays, and objects
/// with string-literal keys.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Token-munching backend of [`json!`]. Object/array values may be
/// arbitrary expressions; a comma at nesting level 0 terminates them
/// (commas inside `()`/`[]`/`{}` groups are invisible to the muncher
/// because a delimited group is a single token tree).
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        // The muncher pushes element by element; vec! can't be used
        // because elements are arbitrary token runs, not expressions yet.
        #[allow(clippy::vec_init_then_push)]
        {
            let mut items: Vec<$crate::Value> = Vec::new();
            $crate::json_internal!(@arr items () ($($tt)+));
            $crate::Value::Array(items)
        }
    }};
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@obj object ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::Value::from($other) };

    // --- array elements ---
    (@arr $vec:ident () ()) => {};
    (@arr $vec:ident ($($val:tt)+) ()) => {
        $vec.push($crate::json_internal!($($val)+));
    };
    (@arr $vec:ident ($($val:tt)+) (, $($rest:tt)*)) => {
        $vec.push($crate::json_internal!($($val)+));
        $crate::json_internal!(@arr $vec () ($($rest)*));
    };
    (@arr $vec:ident ($($val:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_internal!(@arr $vec ($($val)* $next) ($($rest)*));
    };

    // --- object entries ---
    (@obj $obj:ident ()) => {};
    (@obj $obj:ident ($key:literal : $($rest:tt)+)) => {
        $crate::json_internal!(@val $obj ($key) () ($($rest)+));
    };
    (@val $obj:ident ($key:literal) ($($val:tt)+) ()) => {
        $obj.insert($key.to_string(), $crate::json_internal!($($val)+));
    };
    (@val $obj:ident ($key:literal) ($($val:tt)+) (, $($rest:tt)*)) => {
        $obj.insert($key.to_string(), $crate::json_internal!($($val)+));
        $crate::json_internal!(@obj $obj ($($rest)*));
    };
    (@val $obj:ident ($key:literal) ($($val:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_internal!(@val $obj ($key) ($($val)* $next) ($($rest)*));
    };
}

// --- Serialization. ---

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Error type for parsing (and, for API compatibility, serialization —
/// which cannot actually fail here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the error in the input, when parsing.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Compact serialization. Infallible for `Value` trees; the `Result`
/// mirrors serde_json's signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(value, &mut out, None, 0);
    Ok(out)
}

/// Pretty serialization with 2-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(value, &mut out, Some(2), 0);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        f.write_str(&out)
    }
}

// --- Parsing. ---

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting bound: malformed/adversarial inputs must not overflow the
/// stack of the recursive-descent parser.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, Error> {
        Err(Error { msg: msg.into(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
                self.depth -= 1;
                Ok(Value::Array(items))
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
                self.depth -= 1;
                Ok(Value::Object(map))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => self.err(format!("unexpected byte {:?}", b as char)),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected {:?}", word))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5).ok_or(Error {
                                msg: "truncated \\u escape".into(),
                                offset: self.pos,
                            })?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(Error { msg: "bad \\u escape".into(), offset: self.pos })?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject them cleanly.
                            let c = char::from_u32(hex).ok_or(Error {
                                msg: "non-scalar \\u escape".into(),
                                offset: self.pos,
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error { msg: "invalid UTF-8".into(), offset: self.pos })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error { msg: "invalid number".into(), offset: start })?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Number(Number::F64(f))),
            _ => Err(Error { msg: format!("invalid number {:?}", text), offset: start }),
        }
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after JSON value");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = json!({
            "name": "vpe00",
            "count": 3,
            "neg": -7,
            "rate": 0.25f32,
            "ok": true,
            "none": null,
            "items": [1, 2, [3, "four"]],
        });
        let s = to_string(&v).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(back.get("name").and_then(Value::as_str), Some("vpe00"));
        assert_eq!(back.get("count").and_then(Value::as_u64), Some(3));
        assert_eq!(back.get("neg").and_then(Value::as_i64), Some(-7));
        assert_eq!(back.get("rate").and_then(Value::as_f64), Some(0.25));
        assert!(back.get("none").unwrap().is_null());
        assert_eq!(back.get("items").and_then(Value::as_array).unwrap().len(), 3);
    }

    #[test]
    fn canonical_and_deterministic() {
        let mut m = Map::new();
        m.insert("zebra".into(), json!(1));
        m.insert("alpha".into(), json!(2));
        let s = to_string(&Value::Object(m)).unwrap();
        assert_eq!(s, r#"{"alpha":2,"zebra":1}"#);
    }

    #[test]
    fn f32_values_render_shortest() {
        let v = Value::from(0.1f32);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "0.1");
        let back = from_str(&s).unwrap();
        assert_eq!(back.as_f64().unwrap() as f32, 0.1f32);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&Value::from(2.0f32)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::from(-3.0f64)).unwrap(), "-3.0");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "{\"a\" 1}",
            "[1] trailing",
            "nul",
            "--1",
            "1e",
        ] {
            assert!(from_str(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let s = "[".repeat(100_000);
        assert!(from_str(&s).is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&Value::from(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&Value::from(f32::INFINITY)).unwrap(), "null");
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"a": [1, {"b": "c"}], "d": 2.5});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str(&pretty).unwrap(), v);
    }
}
