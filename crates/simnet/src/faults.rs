//! Fault-signature injection: the anomalous log bursts that precede and
//! accompany trouble tickets.
//!
//! Lead-time distributions per root cause are calibrated so the Fig 8
//! shape is achievable by a detector that catches the injected bursts:
//! Circuit faults show pre-ticket syslog signatures most often (74%, of
//! which about half lead by >= 15 minutes), then Software (55%), Cable
//! (40%, almost always long leads when present — cables degrade slowly),
//! Hardware (28%, long leads), and Duplicates mostly only after the
//! ticket. For tickets without a pre signal, a burst usually appears
//! within 15 minutes after the report (Q2: ~80% of tickets show
//! anomalies by +15 min).

use crate::catalog::Catalog;
use crate::tickets::{Ticket, TicketCause};
use nfv_syslog::time::MINUTE;
use rand::Rng;

/// Per-cause injection profile.
struct CauseProfile {
    /// Probability of a pre-ticket signature burst.
    p_pre: f64,
    /// Given a pre burst, probability its lead is >= 15 minutes.
    p_long_lead: f64,
    /// For tickets without a pre burst, probability of a burst within
    /// 15 minutes after the report.
    p_post15: f64,
}

fn profile(cause: TicketCause) -> Option<CauseProfile> {
    Some(match cause {
        TicketCause::Circuit => CauseProfile { p_pre: 0.74, p_long_lead: 0.49, p_post15: 0.80 },
        TicketCause::Software => CauseProfile { p_pre: 0.55, p_long_lead: 0.30, p_post15: 0.80 },
        TicketCause::Cable => CauseProfile { p_pre: 0.40, p_long_lead: 0.95, p_post15: 0.75 },
        TicketCause::Hardware => CauseProfile { p_pre: 0.28, p_long_lead: 0.90, p_post15: 0.70 },
        TicketCause::Duplicate => CauseProfile { p_pre: 0.15, p_long_lead: 0.20, p_post15: 0.80 },
        // Maintenance is scheduled work: no fault signature.
        TicketCause::Maintenance => return None,
    })
}

/// Fraction of fault tickets whose syslog signature is too weak to
/// cluster (isolated messages only). These tickets are genuinely
/// undetectable under the paper's >= 2-anomalies-per-warning rule and
/// bound the achievable recall below 1.
const P_WEAK_SIGNATURE: f64 = 0.22;

/// One injected anomalous burst: a handful of fault-template messages
/// packed into less than a minute (so the detector's >= 2-anomaly
/// clustering rule fires). A weak burst is a single isolated message.
fn burst(
    templates: &[usize],
    center: u64,
    weak: bool,
    rng: &mut impl Rng,
    out: &mut Vec<(u64, usize)>,
) {
    // Bursts are short: 2-4 messages. A per-message sequence model sees
    // each of them as a high-surprise event, while a 32-message count
    // window dilutes them — the modality gap behind the paper's
    // LSTM-vs-shallow ordering (Fig 6).
    let n = if weak { 1 } else { rng.gen_range(2..=4) };
    let start = center.saturating_sub(20);
    // A storm repeats one message (e.g. the "BGP UNUSABLE ASPATH" storm
    // of §5.3); otherwise messages mix across the cause's templates.
    let storm = rng.gen::<f64>() < 0.4;
    let storm_tpl = templates[rng.gen_range(0..templates.len())];
    for i in 0..n {
        let t = start + i as u64 * rng.gen_range(3..9);
        let tpl = if storm { storm_tpl } else { templates[rng.gen_range(0..templates.len())] };
        out.push((t, tpl));
    }
}

/// Generates the injected `(time, catalog_template)` records for one
/// ticket. Returns an empty vector for maintenance tickets.
pub fn inject_for_ticket(
    ticket: &Ticket,
    catalog: &Catalog,
    rng: &mut impl Rng,
) -> Vec<(u64, usize)> {
    let Some(p) = profile(ticket.cause) else { return Vec::new() };
    let templates = catalog.fault_templates(ticket.cause);
    assert!(!templates.is_empty(), "no fault templates for {:?}", ticket.cause);
    let mut out = Vec::new();
    let weak = rng.gen::<f64>() < P_WEAK_SIGNATURE;

    // Pre-ticket signature.
    if rng.gen::<f64>() < p.p_pre {
        let lead = if rng.gen::<f64>() < p.p_long_lead {
            rng.gen_range(16 * MINUTE..45 * MINUTE)
        } else {
            rng.gen_range(2 * MINUTE..14 * MINUTE)
        };
        let center = ticket.report_time.saturating_sub(lead);
        burst(templates, center, weak, rng, &mut out);
        // Sometimes the symptom repeats before the ticket fires.
        if rng.gen::<f64>() < 0.4 {
            let center2 = ticket.report_time.saturating_sub(lead / 2);
            burst(templates, center2, weak, rng, &mut out);
        }
    } else if rng.gen::<f64>() < p.p_post15 {
        // No early signal: the fault becomes visible shortly after the
        // ticketing system reacted.
        let delay = rng.gen_range(30..13 * MINUTE);
        burst(templates, ticket.report_time + delay, weak, rng, &mut out);
    }

    // Errors during the infected period (between report and repair).
    let infected = ticket.repair_time.saturating_sub(ticket.report_time);
    if infected > 30 * MINUTE {
        let n_bursts = rng.gen_range(1..=3);
        for _ in 0..n_bursts {
            let offset = rng.gen_range(15 * MINUTE..infected);
            burst(templates, ticket.report_time + offset, weak, rng, &mut out);
        }
    }

    out.sort_by_key(|&(t, _)| t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, SimPreset};
    use crate::tickets::generate_tickets;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ticket(cause: TicketCause, report: u64, repair: u64) -> Ticket {
        Ticket {
            id: 0,
            vpe: 0,
            cause,
            report_time: report,
            repair_time: repair,
            core_incident: false,
        }
    }

    #[test]
    fn maintenance_gets_no_injection() {
        let cat = Catalog::build();
        let mut rng = SmallRng::seed_from_u64(1);
        let t = ticket(TicketCause::Maintenance, 100_000, 110_000);
        assert!(inject_for_ticket(&t, &cat, &mut rng).is_empty());
    }

    #[test]
    fn injected_templates_are_fault_signatures_of_the_cause() {
        let cat = Catalog::build();
        let mut rng = SmallRng::seed_from_u64(2);
        let t = ticket(TicketCause::Circuit, 500_000, 520_000);
        for _ in 0..50 {
            for (_, tpl) in inject_for_ticket(&t, &cat, &mut rng) {
                assert!(cat.fault_templates(TicketCause::Circuit).contains(&tpl));
            }
        }
    }

    #[test]
    fn bursts_are_tight_clusters() {
        let cat = Catalog::build();
        let mut rng = SmallRng::seed_from_u64(3);
        let t = ticket(TicketCause::Software, 1_000_000, 1_050_000);
        let mut found_burst = false;
        for _ in 0..20 {
            let recs = inject_for_ticket(&t, &cat, &mut rng);
            // Count records within 60s of another record.
            for w in recs.windows(2) {
                if w[1].0 - w[0].0 < 60 {
                    found_burst = true;
                }
            }
        }
        assert!(found_burst, "expected clustered anomalies (>=2 within a minute)");
    }

    #[test]
    fn circuit_leads_most_often() {
        // Empirical check of the calibrated pre-ticket probabilities.
        let cat = Catalog::build();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut pre_frac = |cause: TicketCause| {
            let mut pre = 0usize;
            let n = 2000;
            for i in 0..n {
                let report = 10_000_000 + i as u64 * 100_000;
                let t = ticket(cause, report, report + 40_000);
                let recs = inject_for_ticket(&t, &cat, &mut rng);
                if recs.iter().any(|&(time, _)| time < report) {
                    pre += 1;
                }
            }
            pre as f64 / n as f64
        };
        let circuit = pre_frac(TicketCause::Circuit);
        let software = pre_frac(TicketCause::Software);
        let cable = pre_frac(TicketCause::Cable);
        let hardware = pre_frac(TicketCause::Hardware);
        assert!((circuit - 0.74).abs() < 0.05, "circuit {}", circuit);
        assert!((software - 0.55).abs() < 0.05, "software {}", software);
        assert!((cable - 0.40).abs() < 0.05, "cable {}", cable);
        assert!((hardware - 0.28).abs() < 0.05, "hardware {}", hardware);
        assert!(circuit > software && software > cable && cable > hardware);
    }

    #[test]
    fn long_leads_dominate_for_cable_and_hardware() {
        let cat = Catalog::build();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut long_lead_given_pre = |cause: TicketCause| {
            let (mut pre, mut long) = (0usize, 0usize);
            for i in 0..3000 {
                let report = 20_000_000 + i as u64 * 50_000;
                let t = ticket(cause, report, report + 30_000);
                let recs = inject_for_ticket(&t, &cat, &mut rng);
                let earliest = recs.iter().map(|&(t, _)| t).min();
                if let Some(e) = earliest {
                    if e < report {
                        pre += 1;
                        if report - e >= 15 * MINUTE {
                            long += 1;
                        }
                    }
                }
            }
            long as f64 / pre.max(1) as f64
        };
        assert!(long_lead_given_pre(TicketCause::Cable) > 0.85);
        assert!(long_lead_given_pre(TicketCause::Hardware) > 0.8);
        assert!(long_lead_given_pre(TicketCause::Circuit) < 0.7);
    }

    #[test]
    fn majority_of_fault_tickets_show_anomalies_by_15min_after() {
        let cat = Catalog::build();
        let cfg = SimConfig::preset(SimPreset::Full, 6);
        let tickets = generate_tickets(&cfg);
        let mut rng = SmallRng::seed_from_u64(6);
        let (mut with_anomaly, mut total) = (0usize, 0usize);
        for t in tickets.iter().filter(|t| t.cause != TicketCause::Maintenance) {
            total += 1;
            let recs = inject_for_ticket(t, &cat, &mut rng);
            if recs.iter().any(|&(time, _)| time <= t.report_time + 15 * MINUTE) {
                with_anomaly += 1;
            }
        }
        let frac = with_anomaly as f64 / total as f64;
        assert!((0.72..0.95).contains(&frac), "fraction by +15min = {}", frac);
    }
}
