//! Per-vPE normal-log behaviour: a Markov-structured template process.
//!
//! Each vPE emits its group's template set with a sequential structure
//! (each template has a preferred successor) so that an LSTM can learn
//! the normal patterns, plus a per-vPE stationary mixture that weights
//! fleet-wide base templates against group-specific ones according to
//! the vPE's `base_affinity` (which produces the Fig 3 heterogeneity).
//! Inter-arrival times are exponential with a diurnal modulation.

use crate::catalog::Catalog;
use crate::config::SimConfig;
use crate::topology::Vpe;
use nfv_syslog::time::HOUR;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Probability of following the deterministic successor chain instead of
/// re-sampling from the stationary mixture. High enough that sequences
/// are learnable, low enough that logs stay varied.
const P_FOLLOW: f64 = 0.65;

/// Mean benign transient bursts per day (protocol flaps, link blips that
/// self-resolve without a ticket). These use the same fault-layer
/// templates as real failures, which is what makes the detection task
/// realistically hard: the model must trade precision against recall
/// instead of keying on never-seen-before templates.
const NOISE_BURSTS_PER_DAY: f64 = 0.35;

/// A sampled normal-log generator for one vPE (pre- or post-update).
#[derive(Debug, Clone)]
pub struct VpeBehavior {
    /// Catalog template ids (the Markov states).
    states: Vec<usize>,
    /// Stationary sampling weights (cumulative, for fast inversion).
    cumulative: Vec<f64>,
    /// Preferred successor state index per state.
    successor: Vec<usize>,
    /// Mean inter-arrival in seconds.
    mean_gap: f64,
    /// Templates used for benign transient bursts.
    noise_templates: Vec<usize>,
    /// Full fault-template pool: a small share of benign transients
    /// looks exactly like a real fault storm that happens to
    /// self-resolve, which is the irreducible false-alarm source.
    decisive_pool: Vec<usize>,
}

impl VpeBehavior {
    /// Builds the behaviour for a vPE. `post_update` switches the state
    /// set to the v2 template variants plus the brand-new post-update
    /// templates (only meaningful for vPEs the update affects).
    pub fn build(catalog: &Catalog, vpe: &Vpe, cfg: &SimConfig, post_update: bool) -> VpeBehavior {
        // Deterministic per-(vpe, phase) stream so behaviour is stable.
        let phase = u64::from(post_update);
        let mut rng = SmallRng::seed_from_u64(
            cfg.seed ^ (vpe.id as u64).wrapping_mul(0x9e37_79b9) ^ (phase << 63),
        );

        let base = &catalog.base;
        let extra = &catalog.group_extra[vpe.group % catalog.group_extra.len()];
        let mut states: Vec<usize> = base.iter().chain(extra.iter()).copied().collect();
        if post_update {
            for s in &mut states {
                if let Some(v2) = catalog.v2_of(*s) {
                    *s = v2;
                }
            }
            states.extend(&catalog.post_update_new);
        }

        // Stationary weights: base templates share `base_affinity` mass,
        // everything else shares the rest; jittered per vPE.
        let n_base = base.len();
        let mut weights = vec![0.0f64; states.len()];
        let affinity = vpe.base_affinity as f64;
        for (i, w) in weights.iter_mut().enumerate() {
            let pool_mass = if i < n_base { affinity } else { 1.0 - affinity };
            let pool_size = if i < n_base { n_base } else { states.len() - n_base };
            *w = pool_mass / pool_size as f64 * rng.gen_range(0.5..1.5);
        }
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;

        // Successor chains: one fixed random permutation cycle *per pool*
        // (base vs group-specific), shared per group so pooled group
        // training sees one pattern. Keeping the cycles pool-local means
        // chain-following preserves the pool chosen by the stationary
        // mixture, so the long-run base/extra split really follows
        // `base_affinity`.
        let mut group_rng = SmallRng::seed_from_u64(
            cfg.seed ^ 0xbead_cafe ^ ((vpe.group as u64) << 8) ^ (phase << 62),
        );
        let mut successor = vec![0usize; states.len()];
        for pool in [0..n_base, n_base..states.len()] {
            let mut perm: Vec<usize> = pool.clone().collect();
            crate::util::shuffle(&mut perm, &mut group_rng);
            for w in 0..perm.len() {
                successor[perm[w]] = perm[(w + 1) % perm.len()];
            }
        }

        // Benign transients reuse one *ambiguous* fault-layer template
        // per cause (a lone session flap, a carrier blip, a memory-growth
        // warning): events that also happen without a ticket. The other
        // fault templates (e.g. the "BGP UNUSABLE ASPATH" storm) remain
        // decisive — they practically only appear around real troubles —
        // matching the structure of the paper's operational findings
        // (§5.3: some conditions make quick-detection signatures with
        // minimum false positives, others are ambiguous).
        let causes = [
            crate::tickets::TicketCause::Circuit,
            crate::tickets::TicketCause::Cable,
            crate::tickets::TicketCause::Software,
        ];
        let noise_templates: Vec<usize> =
            causes.iter().filter_map(|&c| catalog.fault_templates(c).get(1).copied()).collect();
        let decisive_pool: Vec<usize> =
            causes.iter().flat_map(|&c| catalog.fault_templates(c).iter().copied()).collect();

        VpeBehavior {
            states,
            cumulative,
            successor,
            mean_gap: cfg.mean_log_gap,
            noise_templates,
            decisive_pool,
        }
    }

    /// The template ids this behaviour can emit.
    pub fn states(&self) -> &[usize] {
        &self.states
    }

    fn sample_state(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u).min(self.states.len() - 1)
    }

    /// Generates `(time, catalog_template)` pairs over `[start, end)`.
    pub fn generate(&self, start: u64, end: u64, rng: &mut impl Rng) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        let mut state = self.sample_state(rng);
        let mut t = start as f64;
        loop {
            // Diurnal modulation: nights are ~40% quieter.
            let hour_of_day = ((t as u64 / HOUR) % 24) as f64;
            let diurnal = 1.0 + 0.4 * ((hour_of_day - 14.0) / 24.0 * std::f64::consts::TAU).cos();
            let gap = -self.mean_gap / diurnal * (1.0 - rng.gen::<f64>()).ln();
            t += gap.max(1.0);
            if t >= end as f64 {
                break;
            }
            out.push((t as u64, self.states[state]));
            state = if rng.gen::<f64>() < P_FOLLOW {
                self.successor[state]
            } else {
                self.sample_state(rng)
            };
        }

        // Benign transient bursts: 1-3 fault-layer messages within a
        // minute, self-resolving, not tied to any ticket.
        if !self.noise_templates.is_empty() {
            let mut t = 0.0f64;
            let mean_gap = nfv_syslog::time::DAY as f64 / NOISE_BURSTS_PER_DAY;
            loop {
                t += -mean_gap * (1.0 - rng.gen::<f64>()).ln();
                if t >= end as f64 || (t as u64) < start {
                    if t >= end as f64 {
                        break;
                    }
                    continue;
                }
                // A transient is either a repeated-message blip or a
                // flap/recovery pair of two different messages — the same
                // shapes real fault bursts take, so thresholding has to
                // trade precision against recall.
                // ~6% of transients are decisive-looking storms that
                // self-resolve; the rest reuse the ambiguous templates.
                let pool = if rng.gen::<f64>() < 0.06 {
                    &self.decisive_pool
                } else {
                    &self.noise_templates
                };
                let a = pool[rng.gen_range(0..pool.len())];
                let b = if rng.gen::<f64>() < 0.5 { a } else { pool[rng.gen_range(0..pool.len())] };
                let u: f64 = rng.gen();
                let n = if u < 0.45 {
                    1
                } else if u < 0.80 {
                    2
                } else {
                    3
                };
                for i in 0..n {
                    let tpl = if i % 2 == 0 { a } else { b };
                    let when = t as u64 + i * rng.gen_range(5..25);
                    // Keep the documented [start, end) contract even for
                    // burst members that would spill past the window.
                    if when < end {
                        out.push((when, tpl));
                    }
                }
            }
            out.sort_by_key(|&(time, _)| time);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimPreset;
    use crate::topology::Topology;
    use nfv_syslog::time::DAY;

    fn setup() -> (SimConfig, Topology, Catalog) {
        let cfg = SimConfig::preset(SimPreset::Full, 11);
        let topo = Topology::build(&cfg);
        (cfg, topo, Catalog::build())
    }

    #[test]
    fn emits_only_group_templates_plus_rare_transients() {
        let (cfg, topo, cat) = setup();
        let vpe = &topo.vpes[0];
        let beh = VpeBehavior::build(&cat, vpe, &cfg, false);
        let mut rng = SmallRng::seed_from_u64(1);
        let logs = beh.generate(0, 30 * DAY, &mut rng);
        assert!(!logs.is_empty());
        let allowed: std::collections::HashSet<usize> =
            cat.normal_for_group(vpe.group).into_iter().collect();
        let transients = logs.iter().filter(|&&(_, tpl)| !allowed.contains(&tpl)).count();
        for &(_, tpl) in &logs {
            if !allowed.contains(&tpl) {
                assert!(
                    beh.noise_templates.contains(&tpl) || beh.decisive_pool.contains(&tpl),
                    "template {} is neither group chatter nor a transient",
                    tpl
                );
            }
        }
        // Transients exist but are rare.
        let frac = transients as f64 / logs.len() as f64;
        assert!(frac > 0.0, "expected some benign transients");
        assert!(frac < 0.05, "transient fraction too high: {}", frac);
    }

    #[test]
    fn mean_rate_is_close_to_configured() {
        let (cfg, topo, cat) = setup();
        let beh = VpeBehavior::build(&cat, &topo.vpes[3], &cfg, false);
        let mut rng = SmallRng::seed_from_u64(2);
        let logs = beh.generate(0, 60 * DAY, &mut rng);
        let expected = 60.0 * DAY as f64 / cfg.mean_log_gap;
        let ratio = logs.len() as f64 / expected;
        assert!((0.8..1.25).contains(&ratio), "ratio {}", ratio);
    }

    #[test]
    fn sequences_have_learnable_structure() {
        // The successor of each template should be its actual next
        // template well above chance.
        let (cfg, topo, cat) = setup();
        let beh = VpeBehavior::build(&cat, &topo.vpes[0], &cfg, false);
        let mut rng = SmallRng::seed_from_u64(3);
        let logs = beh.generate(0, 90 * DAY, &mut rng);
        let idx_of: std::collections::HashMap<usize, usize> =
            beh.states().iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut follows = 0usize;
        let mut pairs = 0usize;
        for w in logs.windows(2) {
            // Skip pairs touching benign transients (not chain states).
            let (Some(&cur), Some(&next)) = (idx_of.get(&w[0].1), idx_of.get(&w[1].1)) else {
                continue;
            };
            pairs += 1;
            if beh.successor[cur] == next {
                follows += 1;
            }
        }
        let frac = follows as f64 / pairs as f64;
        assert!(frac > 0.5, "successor-following fraction {}", frac);
    }

    #[test]
    fn post_update_changes_emitted_distribution() {
        let (cfg, topo, cat) = setup();
        let vpe = &topo.vpes[0];
        let pre = VpeBehavior::build(&cat, vpe, &cfg, false);
        let post = VpeBehavior::build(&cat, vpe, &cfg, true);
        let pre_set: std::collections::HashSet<usize> = pre.states().iter().copied().collect();
        let post_set: std::collections::HashSet<usize> = post.states().iter().copied().collect();
        assert_ne!(pre_set, post_set);
        // v2 ids replace their v1 forms.
        for &(v1, v2) in &cat.v2_map {
            if pre_set.contains(&v1) {
                assert!(!post_set.contains(&v1), "v1 {} survived the update", v1);
                assert!(post_set.contains(&v2), "v2 {} missing after update", v2);
            }
        }
    }

    #[test]
    fn outlier_vpes_lean_on_group_specific_templates() {
        let (cfg, topo, cat) = setup();
        let outlier = topo.vpes.iter().find(|v| v.outlier).expect("outlier exists");
        let normal = topo.vpes.iter().find(|v| !v.outlier && v.group == 0).expect("normal exists");
        let base_set: std::collections::HashSet<usize> = cat.base.iter().copied().collect();
        let frac_base = |vpe: &crate::topology::Vpe| {
            let beh = VpeBehavior::build(&cat, vpe, &cfg, false);
            let mut rng = SmallRng::seed_from_u64(4);
            let logs = beh.generate(0, 60 * DAY, &mut rng);
            logs.iter().filter(|(_, t)| base_set.contains(t)).count() as f64 / logs.len() as f64
        };
        assert!(frac_base(outlier) < 0.35);
        assert!(frac_base(normal) > 0.55);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (cfg, topo, cat) = setup();
        let beh = VpeBehavior::build(&cat, &topo.vpes[5], &cfg, false);
        let a = beh.generate(0, 10 * DAY, &mut SmallRng::seed_from_u64(9));
        let b = beh.generate(0, 10 * DAY, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
