//! Small internal utilities shared across the simulator modules.

use rand::Rng;

/// Fisher-Yates shuffle (simnet keeps its dependency set to `rand`, so
/// this mirrors `nfv_ml::sampling::shuffle`).
pub(crate) fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}
