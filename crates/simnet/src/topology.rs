//! Deployment topology: vPEs, their behaviour groups, and core routers.

use crate::config::SimConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One virtualized provider-edge router.
#[derive(Debug, Clone)]
pub struct Vpe {
    /// Fleet index.
    pub id: usize,
    /// Host name, e.g. `vpe07`.
    pub name: String,
    /// Latent behaviour group (server role / configuration family).
    pub group: usize,
    /// Core router this vPE attaches to.
    pub core_router: usize,
    /// Fraction of this vPE's chatter drawn from the fleet-wide base
    /// templates (vs group/own-specific ones). Low affinity makes a vPE's
    /// syslog distribution diverge from the aggregate — the <0.5 cosine
    /// outliers of Fig 3.
    pub base_affinity: f32,
    /// True for the handful of strongly divergent vPEs (Fig 3's
    /// below-0.5 outliers).
    pub outlier: bool,
}

/// The whole deployment.
#[derive(Debug, Clone)]
pub struct Topology {
    /// All vPEs, indexed by id.
    pub vpes: Vec<Vpe>,
    /// Number of core routers.
    pub n_core: usize,
}

impl Topology {
    /// Builds the topology for a configuration: group sizes are skewed
    /// (the largest group holds ~40% of the fleet so that about a third
    /// of vPEs track the aggregate closely), and a handful of outlier
    /// vPEs get low base affinity.
    pub fn build(cfg: &SimConfig) -> Topology {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x7070_1234_aaaa_0001);
        let n = cfg.n_vpes;
        let n_core = (n / 10).max(2);

        // Group proportions: ~40/25/20/15 over n_groups (truncated or
        // renormalized when n_groups != 4).
        let props = [0.40f64, 0.25, 0.20, 0.15];
        let mut group_of = Vec::with_capacity(n);
        for i in 0..n {
            let frac = i as f64 / n as f64;
            let mut acc = 0.0;
            let mut g = cfg.n_groups - 1;
            for (gi, &p) in props.iter().take(cfg.n_groups).enumerate() {
                acc += p;
                if frac < acc {
                    g = gi;
                    break;
                }
            }
            group_of.push(g);
        }

        // ~5 outliers on the Full preset, scaled down for smaller fleets.
        let n_outliers = (n as f64 * 5.0 / 38.0).round().max(1.0) as usize;
        let mut outlier = vec![false; n];
        let mut order: Vec<usize> = (0..n).collect();
        crate::util::shuffle(&mut order, &mut rng);
        for &i in order.iter().take(n_outliers) {
            outlier[i] = true;
        }

        let vpes = (0..n)
            .map(|id| Vpe {
                id,
                name: format!("vpe{:02}", id),
                group: group_of[id],
                core_router: id % n_core,
                // Group 0 (the largest role family) tracks the fleet-wide
                // chatter closely; the other roles lean more on their
                // group-specific templates, which is what keeps only
                // about a third of the fleet above 0.8 cosine similarity
                // to the aggregate (Fig 3).
                base_affinity: if outlier[id] {
                    rng.gen_range(0.05..0.20)
                } else if group_of[id] == 0 {
                    rng.gen_range(0.70..0.85)
                } else {
                    rng.gen_range(0.46..0.66)
                },
                outlier: outlier[id],
            })
            .collect();
        Topology { vpes, n_core }
    }

    /// Ids of vPEs attached to the given core router.
    pub fn attached_to_core(&self, core: usize) -> Vec<usize> {
        self.vpes.iter().filter(|v| v.core_router == core).map(|v| v.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimPreset;

    #[test]
    fn full_topology_has_paper_shape() {
        let cfg = SimConfig::preset(SimPreset::Full, 7);
        let topo = Topology::build(&cfg);
        assert_eq!(topo.vpes.len(), 38);
        // All 4 groups populated; the largest holds >= a third of the fleet.
        let mut sizes = vec![0usize; 4];
        for v in &topo.vpes {
            sizes[v.group] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0), "{:?}", sizes);
        assert!(*sizes.iter().max().unwrap() >= 38 / 3);
        // Around 5 outliers with low base affinity.
        let outliers = topo.vpes.iter().filter(|v| v.outlier).count();
        assert_eq!(outliers, 5);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = SimConfig::preset(SimPreset::Full, 9);
        let a = Topology::build(&cfg);
        let b = Topology::build(&cfg);
        for (x, y) in a.vpes.iter().zip(b.vpes.iter()) {
            assert_eq!(x.group, y.group);
            assert_eq!(x.base_affinity, y.base_affinity);
        }
    }

    #[test]
    fn every_core_router_has_attachments() {
        let cfg = SimConfig::preset(SimPreset::Full, 7);
        let topo = Topology::build(&cfg);
        for core in 0..topo.n_core {
            assert!(!topo.attached_to_core(core).is_empty());
        }
    }
}
