//! Transport-level fault injection for syslog feeds.
//!
//! [`faults`](crate::faults) injects *semantic* faults — anomalous
//! message bursts that precede trouble tickets. This module injects
//! *transport* faults: the UDP-syslog pathologies between a vPE and the
//! collector. A [`TransportSim`] wraps a generated message stream and
//! applies, deterministically per `(seed, feed)`:
//!
//! * message **loss** (each line independently dropped),
//! * message **duplication** (the classic retransmit double-delivery),
//! * **bounded reordering** (each line's delivery is delayed by a random
//!   jitter up to a configured window, then lines are sorted by delivery
//!   time),
//! * line **corruption** (truncation or a flipped byte), and
//! * per-feed **clock skew** (a constant offset applied to every
//!   timestamp a feed emits, as from an unsynchronized device clock).
//!
//! Determinism matters: the chaos tests compare a faulted run against a
//! clean run of the same trace, so the same seed must produce the same
//! faulted byte stream every time.

use nfv_syslog::SyslogMessage;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Transport fault rates. The default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportFaults {
    /// Per-line probability of silent loss.
    pub loss: f64,
    /// Per-line probability of duplicate delivery.
    pub dup: f64,
    /// Maximum delivery jitter in seconds (bounds how far lines can
    /// reorder). 0 preserves order.
    pub reorder: u64,
    /// Per-line probability of corruption (truncation or byte flip).
    pub corrupt: f64,
    /// Maximum absolute per-feed clock skew in seconds. Each feed draws
    /// one constant offset in `[-skew, +skew]`.
    pub skew: u64,
}

impl Default for TransportFaults {
    fn default() -> Self {
        TransportFaults { loss: 0.0, dup: 0.0, reorder: 0, corrupt: 0.0, skew: 0 }
    }
}

impl TransportFaults {
    /// Parses the CLI flag syntax
    /// `loss=0.05,dup=0.02,reorder=30,corrupt=0.01,skew=5`.
    /// Unmentioned faults stay at zero; an empty string is all-clean.
    pub fn parse(spec: &str) -> Result<TransportFaults, String> {
        let mut f = TransportFaults::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec {:?} is not key=value", part))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 =
                    v.parse().map_err(|_| format!("{:?} is not a number in {:?}", v, part))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{}={} is outside [0, 1]", key, p));
                }
                Ok(p)
            };
            let secs = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|_| format!("{:?} is not a whole number of seconds", v))
            };
            match key.trim() {
                "loss" => f.loss = prob(value)?,
                "dup" => f.dup = prob(value)?,
                "reorder" => f.reorder = secs(value)?,
                "corrupt" => f.corrupt = prob(value)?,
                "skew" => f.skew = secs(value)?,
                other => {
                    return Err(format!(
                        "unknown fault {:?} (expected loss, dup, reorder, corrupt, skew)",
                        other
                    ))
                }
            }
        }
        Ok(f)
    }

    /// True when every fault is disabled.
    pub fn is_clean(&self) -> bool {
        *self == TransportFaults::default()
    }
}

/// What the transport actually did to one feed's stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportReport {
    /// Lines offered to the transport.
    pub offered: usize,
    /// Lines silently dropped.
    pub lost: usize,
    /// Extra copies delivered.
    pub duplicated: usize,
    /// Lines delivered with corrupted bytes.
    pub corrupted: usize,
    /// The feed's constant clock skew, seconds (signed).
    pub skew: i64,
}

/// Deterministic, seeded fault injector for log transport.
#[derive(Debug, Clone)]
pub struct TransportSim {
    faults: TransportFaults,
    seed: u64,
}

impl TransportSim {
    /// A transport applying `faults`, deterministic in `seed`: the same
    /// `(seed, feed, input)` triple always yields the same output bytes.
    pub fn new(faults: TransportFaults, seed: u64) -> TransportSim {
        TransportSim { faults, seed }
    }

    /// The configured fault rates.
    pub fn faults(&self) -> &TransportFaults {
        &self.faults
    }

    fn feed_rng(&self, feed: usize) -> SmallRng {
        SmallRng::seed_from_u64(
            self.seed ^ 0x7a05_0000_cafe ^ (feed as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
    }

    /// Delivers a feed's messages as raw syslog lines with faults
    /// applied. Timestamps carry the feed's clock skew and reordering is
    /// by skewed-plus-jittered delivery time.
    pub fn deliver(&self, feed: usize, messages: &[SyslogMessage]) -> Vec<String> {
        self.deliver_with_report(feed, messages).0
    }

    /// [`TransportSim::deliver`], also reporting what was injected.
    pub fn deliver_with_report(
        &self,
        feed: usize,
        messages: &[SyslogMessage],
    ) -> (Vec<String>, TransportReport) {
        let mut rng = self.feed_rng(feed);
        let mut report = TransportReport { offered: messages.len(), ..Default::default() };
        report.skew = if self.faults.skew > 0 {
            rng.gen_range(-(self.faults.skew as i64)..=self.faults.skew as i64)
        } else {
            0
        };

        // (delivery time, tiebreak sequence, line)
        let mut sent: Vec<(u64, usize, String)> = Vec::with_capacity(messages.len());
        let mut seq = 0usize;
        for msg in messages {
            if self.faults.loss > 0.0 && rng.gen_bool(self.faults.loss) {
                report.lost += 1;
                continue;
            }
            let skewed = msg.timestamp.saturating_add_signed(report.skew);
            let copies = if self.faults.dup > 0.0 && rng.gen_bool(self.faults.dup) {
                report.duplicated += 1;
                2
            } else {
                1
            };
            let line = SyslogMessage { timestamp: skewed, ..msg.clone() }.to_line();
            for _ in 0..copies {
                let jitter = if self.faults.reorder > 0 {
                    rng.gen_range(0..=self.faults.reorder)
                } else {
                    0
                };
                let delivered = if self.faults.corrupt > 0.0 && rng.gen_bool(self.faults.corrupt) {
                    report.corrupted += 1;
                    corrupt_line(&line, &mut rng)
                } else {
                    line.clone()
                };
                sent.push((skewed.saturating_add(jitter), seq, delivered));
                seq += 1;
            }
        }
        sent.sort_by_key(|a| (a.0, a.1));
        (sent.into_iter().map(|(_, _, line)| line).collect(), report)
    }

    /// Delivers pre-rendered raw lines with faults applied. Without
    /// parsed timestamps, reordering displaces lines by up to
    /// `faults.reorder` positions and clock skew does not apply.
    pub fn deliver_lines(&self, feed: usize, lines: &[String]) -> Vec<String> {
        let mut rng = self.feed_rng(feed);
        let mut sent: Vec<(u64, usize, String)> = Vec::with_capacity(lines.len());
        let mut seq = 0usize;
        for line in lines {
            if self.faults.loss > 0.0 && rng.gen_bool(self.faults.loss) {
                continue;
            }
            let copies = if self.faults.dup > 0.0 && rng.gen_bool(self.faults.dup) { 2 } else { 1 };
            for _ in 0..copies {
                let jitter = if self.faults.reorder > 0 {
                    rng.gen_range(0..=self.faults.reorder)
                } else {
                    0
                };
                let delivered = if self.faults.corrupt > 0.0 && rng.gen_bool(self.faults.corrupt) {
                    corrupt_line(line, &mut rng)
                } else {
                    line.clone()
                };
                sent.push((seq as u64 + jitter, seq, delivered));
                seq += 1;
            }
        }
        sent.sort_by_key(|a| (a.0, a.1));
        sent.into_iter().map(|(_, _, line)| line).collect()
    }
}

/// Mangles one line: half the time a truncation, half the time one byte
/// replaced with a random printable character. Output is valid UTF-8.
fn corrupt_line(line: &str, rng: &mut SmallRng) -> String {
    if line.is_empty() {
        return String::new();
    }
    let bytes = line.as_bytes();
    if rng.gen_bool(0.5) {
        let cut = rng.gen_range(0..bytes.len());
        String::from_utf8_lossy(&bytes[..cut]).into_owned()
    } else {
        let mut mangled = bytes.to_vec();
        let pos = rng.gen_range(0..mangled.len());
        let replacement = rng.gen_range(0x21u8..0x7f);
        mangled[pos] = if mangled[pos] == replacement { b'#' } else { replacement };
        String::from_utf8_lossy(&mangled).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_syslog::message::Severity;

    fn sample(n: usize) -> Vec<SyslogMessage> {
        (0..n)
            .map(|i| SyslogMessage {
                timestamp: 1000 + (i as u64) * 10,
                host: "vpe00".to_string(),
                process: "rpd".to_string(),
                severity: Severity::Info,
                text: format!("BGP peer 10.0.0.{} keepalive ok count {}", i % 8, i),
            })
            .collect()
    }

    #[test]
    fn parse_flag_syntax() {
        let f = TransportFaults::parse("loss=0.05,dup=0.02,reorder=30,corrupt=0.01").unwrap();
        assert_eq!(f.loss, 0.05);
        assert_eq!(f.dup, 0.02);
        assert_eq!(f.reorder, 30);
        assert_eq!(f.corrupt, 0.01);
        assert_eq!(f.skew, 0);
        assert!(TransportFaults::parse("").unwrap().is_clean());
        assert!(TransportFaults::parse("loss=1.5").is_err());
        assert!(TransportFaults::parse("jitter=3").is_err());
        assert!(TransportFaults::parse("loss").is_err());
    }

    #[test]
    fn clean_transport_is_identity() {
        let msgs = sample(50);
        let sim = TransportSim::new(TransportFaults::default(), 7);
        let (lines, report) = sim.deliver_with_report(0, &msgs);
        let expected: Vec<String> = msgs.iter().map(|m| m.to_line()).collect();
        assert_eq!(lines, expected);
        assert_eq!(report, TransportReport { offered: 50, ..Default::default() });
    }

    #[test]
    fn same_seed_is_byte_identical_and_different_seeds_differ() {
        let msgs = sample(300);
        let faults =
            TransportFaults::parse("loss=0.1,dup=0.1,reorder=25,corrupt=0.1,skew=9").unwrap();
        let a = TransportSim::new(faults, 42).deliver(3, &msgs);
        let b = TransportSim::new(faults, 42).deliver(3, &msgs);
        assert_eq!(a, b, "same (seed, feed) must reproduce the same byte stream");
        let c = TransportSim::new(faults, 43).deliver(3, &msgs);
        assert_ne!(a, c, "different seeds should produce different fault patterns");
        let d = TransportSim::new(faults, 42).deliver(4, &msgs);
        assert_ne!(a, d, "different feeds should see different fault patterns");
    }

    #[test]
    fn loss_and_dup_rates_land_near_nominal() {
        let msgs = sample(4000);
        let faults = TransportFaults::parse("loss=0.05,dup=0.02").unwrap();
        let (lines, report) = TransportSim::new(faults, 1).deliver_with_report(0, &msgs);
        assert_eq!(lines.len(), 4000 - report.lost + report.duplicated);
        let lost = report.lost as f64 / 4000.0;
        let dup = report.duplicated as f64 / 4000.0;
        assert!((lost - 0.05).abs() < 0.02, "loss rate {} too far from 5%", lost);
        assert!((dup - 0.02).abs() < 0.015, "dup rate {} too far from 2%", dup);
    }

    #[test]
    fn reordering_is_bounded_by_the_window() {
        let msgs = sample(500);
        let faults = TransportFaults { reorder: 30, ..Default::default() };
        let (lines, _) = TransportSim::new(faults, 5).deliver_with_report(0, &msgs);
        assert_eq!(lines.len(), 500);
        // Parse back the rendered timestamps' order: any line may move,
        // but never by more than the jitter window in time.
        let expected: Vec<String> = msgs.iter().map(|m| m.to_line()).collect();
        let mut displaced = 0usize;
        for (i, line) in lines.iter().enumerate() {
            let orig = expected.iter().position(|e| e == line).unwrap();
            // Messages are 10s apart and jitter is <= 30s, so a line can
            // move at most 3 positions in either direction.
            assert!(
                (orig as i64 - i as i64).unsigned_abs() <= 3,
                "line moved {} -> {}, beyond the 30s window",
                orig,
                i
            );
            if orig != i {
                displaced += 1;
            }
        }
        assert!(displaced > 0, "a 30s window over 10s spacing must reorder something");
    }

    #[test]
    fn skew_shifts_every_rendered_timestamp_by_one_constant() {
        let msgs = sample(100);
        let faults = TransportFaults { skew: 3600, ..Default::default() };
        let (lines, report) = TransportSim::new(faults, 11).deliver_with_report(2, &msgs);
        assert_ne!(report.skew, 0, "a 1h bound virtually never draws exactly 0");
        let reference: Vec<String> = msgs
            .iter()
            .map(|m| {
                SyslogMessage {
                    timestamp: m.timestamp.saturating_add_signed(report.skew),
                    ..m.clone()
                }
                .to_line()
            })
            .collect();
        assert_eq!(lines, reference);
    }

    #[test]
    fn corruption_keeps_line_count_and_mangles_some() {
        let msgs = sample(1000);
        let faults = TransportFaults { corrupt: 0.05, ..Default::default() };
        let (lines, report) = TransportSim::new(faults, 2).deliver_with_report(0, &msgs);
        assert_eq!(lines.len(), 1000);
        assert!(report.corrupted > 20, "expected ~50 corrupted, got {}", report.corrupted);
        let expected: Vec<String> = msgs.iter().map(|m| m.to_line()).collect();
        let differing = lines.iter().zip(&expected).filter(|(a, b)| a != b).count();
        // A flipped byte can collide with the original only when the
        // replacement equals it, which corrupt_line prevents.
        assert_eq!(differing, report.corrupted);
    }

    #[test]
    fn deliver_lines_matches_configured_behaviour() {
        let lines: Vec<String> = sample(200).iter().map(|m| m.to_line()).collect();
        let faults = TransportFaults::parse("loss=0.1,dup=0.05,reorder=4,corrupt=0.05").unwrap();
        let sim = TransportSim::new(faults, 9);
        let a = sim.deliver_lines(0, &lines);
        let b = sim.deliver_lines(0, &lines);
        assert_eq!(a, b);
        assert!(a.len() < 210, "loss should dominate dup at these rates");
        let clean = TransportSim::new(TransportFaults::default(), 9).deliver_lines(0, &lines);
        assert_eq!(clean, lines);
    }
}
