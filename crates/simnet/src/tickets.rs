//! The trouble-ticket process.
//!
//! Calibrated to §3.2 of the paper: maintenance dominates and is
//! pre-scheduled; duplicate and circuit tickets are the next biggest
//! contributors; non-duplicated tickets never arrive closer than 40
//! minutes, 80% arrive more than 10 hours apart and 25% more than 1000
//! hours apart; duplicates arrive in bursts; per-vPE volume is skewed;
//! and rare core-router incidents hit several vPEs in the same interval.

use crate::config::SimConfig;
use nfv_syslog::time::{DAY, HOUR, MINUTE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Root-cause categories of trouble tickets (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TicketCause {
    /// Expected or scheduled network actions or changes.
    Maintenance,
    /// Connection between two devices is down.
    Circuit,
    /// Cable disconnection (environmental or human artifacts).
    Cable,
    /// Chassis-system card or component failures.
    Hardware,
    /// Software issues.
    Software,
    /// Follow-up failures while the original trouble is unresolved.
    Duplicate,
}

impl TicketCause {
    /// All causes, in the paper's listing order.
    pub const ALL: [TicketCause; 6] = [
        TicketCause::Maintenance,
        TicketCause::Circuit,
        TicketCause::Cable,
        TicketCause::Hardware,
        TicketCause::Software,
        TicketCause::Duplicate,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            TicketCause::Maintenance => "Maintenance",
            TicketCause::Circuit => "Circuit",
            TicketCause::Cable => "Cable",
            TicketCause::Hardware => "Hardware",
            TicketCause::Software => "Software",
            TicketCause::Duplicate => "DUP",
        }
    }
}

/// One trouble ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Dense ticket id within the trace.
    pub id: usize,
    /// Index of the vPE the ticket was raised on.
    pub vpe: usize,
    /// Root cause.
    pub cause: TicketCause,
    /// Ticket report time (epoch seconds). Report time trails the first
    /// symptom because ticketing pipelines verify and correlate first.
    pub report_time: u64,
    /// Repair finish time; `[report_time, repair_time]` is the infected
    /// period.
    pub repair_time: u64,
    /// True when this ticket was triggered by a fleet-wide core-router
    /// incident rather than a local fault.
    pub core_incident: bool,
}

impl Ticket {
    /// Ticket duration in seconds.
    pub fn duration(&self) -> u64 {
        self.repair_time - self.report_time
    }
}

/// Samples a non-duplicate inter-arrival time matching Fig 1(b):
/// always > 40 min, 80% > 10 h, 25% > 1000 h (log-uniform within bands).
pub fn sample_interarrival(rng: &mut impl Rng, busyness: f64) -> u64 {
    // `busyness` > 1 shifts probability mass toward the short band,
    // giving the skewed per-vPE volumes of Fig 2. The base band
    // probabilities are set slightly *below* the Fig 1(b) aggregate
    // targets on the short side and above on the long side because busy
    // vPEs contribute disproportionately many gap samples and window
    // censoring trims the heaviest tail; the resulting aggregate lands
    // on the paper's quantiles (validated in tests/paper_claims.rs).
    let u: f64 = rng.gen();
    let p_short = (0.13 * busyness).min(0.5);
    let p_long = (0.32 / busyness).min(1.0 - p_short - 0.1);
    let (lo, hi) = if u < p_short {
        (40.0 * MINUTE as f64, 10.0 * HOUR as f64)
    } else if u > 1.0 - p_long {
        (1000.0 * HOUR as f64, 5000.0 * HOUR as f64)
    } else {
        (10.0 * HOUR as f64, 1000.0 * HOUR as f64)
    };
    let log_t = rng.gen_range(lo.ln()..hi.ln());
    // Guard against exp/ln rounding dipping below the 40-minute floor.
    (log_t.exp() as u64).max(40 * MINUTE + 1)
}

fn sample_cause(rng: &mut impl Rng) -> TicketCause {
    // Mix of non-duplicate, non-maintenance root causes.
    let u: f64 = rng.gen();
    if u < 0.45 {
        TicketCause::Circuit
    } else if u < 0.67 {
        TicketCause::Software
    } else if u < 0.85 {
        TicketCause::Hardware
    } else {
        TicketCause::Cable
    }
}

fn sample_repair_duration(rng: &mut impl Rng, cause: TicketCause) -> u64 {
    // Hardware/cable repairs need field work and take longer.
    let (lo_h, hi_h) = match cause {
        TicketCause::Maintenance => (0.5, 4.0),
        TicketCause::Circuit => (0.5, 8.0),
        TicketCause::Cable => (2.0, 24.0),
        TicketCause::Hardware => (4.0, 48.0),
        TicketCause::Software => (0.5, 12.0),
        TicketCause::Duplicate => (0.2, 2.0),
    };
    (rng.gen_range(lo_h..hi_h) * HOUR as f64) as u64
}

/// Generates the full ticket history for the fleet.
///
/// Per-vPE busyness multipliers produce the skewed ticket volumes of
/// Fig 2; maintenance tickets follow per-vPE weekly windows; duplicates
/// trail non-duplicate tickets in bursts; `core_incidents` fleet events
/// raise circuit tickets on many vPEs in the same interval.
pub fn generate_tickets(cfg: &SimConfig) -> Vec<Ticket> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x71c4_e7a1_11aa_22bb);
    let end = cfg.end_time();
    let mut tickets: Vec<Ticket> = Vec::new();

    // Skewed per-vPE busyness: a few vPEs are much busier than the rest.
    let busyness: Vec<f64> = (0..cfg.n_vpes)
        .map(|_| {
            let u: f64 = rng.gen();
            if u < 0.15 {
                rng.gen_range(2.0..3.5)
            } else {
                rng.gen_range(0.5..1.3)
            }
        })
        .collect();

    for (vpe, &busy) in busyness.iter().enumerate() {
        // Non-duplicate fault tickets.
        let rate_scale = cfg.ticket_rate.max(0.05);
        let mut t = (sample_interarrival(&mut rng, busy) as f64 / rate_scale) as u64;
        while t < end {
            let cause = sample_cause(&mut rng);
            let report_time = t;
            let repair_time = (t + sample_repair_duration(&mut rng, cause)).min(end);
            let id = tickets.len();
            tickets.push(Ticket { id, vpe, cause, report_time, repair_time, core_incident: false });

            // Duplicate bursts: follow-ups while the trouble is open.
            if rng.gen::<f64>() < 0.5 {
                let n_dups = rng.gen_range(1..=4);
                let mut dup_t = report_time;
                for _ in 0..n_dups {
                    dup_t += rng.gen_range(10 * MINUTE..3 * HOUR);
                    if dup_t >= repair_time.min(end) {
                        break;
                    }
                    let dup_repair =
                        (dup_t + sample_repair_duration(&mut rng, TicketCause::Duplicate)).min(end);
                    let id = tickets.len();
                    tickets.push(Ticket {
                        id,
                        vpe,
                        cause: TicketCause::Duplicate,
                        report_time: dup_t,
                        repair_time: dup_repair,
                        core_incident: false,
                    });
                }
            }

            t = report_time
                + ((sample_interarrival(&mut rng, busyness[vpe]) as f64 / rate_scale) as u64)
                    .max(40 * MINUTE);
        }

        // Scheduled maintenance: roughly every 2-6 weeks per vPE.
        let period = rng.gen_range(14 * DAY..42 * DAY);
        let mut m = rng.gen_range(0..period);
        while m < end {
            let id = tickets.len();
            let repair = (m + sample_repair_duration(&mut rng, TicketCause::Maintenance)).min(end);
            tickets.push(Ticket {
                id,
                vpe,
                cause: TicketCause::Maintenance,
                report_time: m,
                repair_time: repair,
                core_incident: false,
            });
            m += period + rng.gen_range(0..3 * DAY);
        }
    }

    // Rare correlated core-router incidents: circuit trouble at many
    // vPEs inside the same short interval.
    for _ in 0..cfg.core_incidents {
        let when = rng.gen_range(0..end.max(1));
        let affected = (cfg.n_vpes / 2).max(2);
        let mut order: Vec<usize> = (0..cfg.n_vpes).collect();
        crate::util::shuffle(&mut order, &mut rng);
        for &vpe in order.iter().take(affected) {
            let jitter = rng.gen_range(0..30 * MINUTE);
            let report_time = (when + jitter).min(end.saturating_sub(1));
            let repair_time =
                (report_time + sample_repair_duration(&mut rng, TicketCause::Circuit)).min(end);
            let id = tickets.len();
            tickets.push(Ticket {
                id,
                vpe,
                cause: TicketCause::Circuit,
                report_time,
                repair_time,
                core_incident: true,
            });
        }
    }

    // Chain failures: a root hardware fault on one member of a
    // behaviour group cascades into circuit trouble across the rest of
    // the group in topology (id) order — a rolling front, unlike the
    // simultaneous symptoms of a core-router incident. Every hop is a
    // real ticket a detector should predict.
    if cfg.chain_failures > 0 {
        let topology = crate::topology::Topology::build(cfg);
        for _ in 0..cfg.chain_failures {
            let group = rng.gen_range(0..cfg.n_groups.max(1));
            let members: Vec<usize> =
                topology.vpes.iter().filter(|v| v.group == group).map(|v| v.id).collect();
            if members.is_empty() {
                continue;
            }
            let mut when = rng.gen_range(0..end.max(1));
            for (hop, &vpe) in members.iter().enumerate() {
                let cause = if hop == 0 { TicketCause::Hardware } else { TicketCause::Circuit };
                let report_time = when.min(end.saturating_sub(1));
                let repair_time = (report_time + sample_repair_duration(&mut rng, cause)).min(end);
                let id = tickets.len();
                tickets.push(Ticket {
                    id,
                    vpe,
                    cause,
                    report_time,
                    repair_time,
                    core_incident: false,
                });
                when += rng.gen_range(3 * MINUTE..20 * MINUTE);
            }
        }
    }

    tickets.sort_by_key(|t| t.report_time);
    for (i, t) in tickets.iter_mut().enumerate() {
        t.id = i;
    }
    tickets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimPreset;

    fn full_cfg() -> SimConfig {
        SimConfig::preset(SimPreset::Full, 42)
    }

    #[test]
    fn interarrival_quantiles_match_fig1b() {
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<u64> = (0..20_000).map(|_| sample_interarrival(&mut rng, 1.0)).collect();
        let n = samples.len() as f64;
        assert!(samples.iter().all(|&s| s > 40 * MINUTE), "min must exceed 40 minutes");
        // The raw sampler is deliberately calibrated slightly long of the
        // Fig 1(b) aggregate targets (0.80 / 0.25): busy vPEs oversample
        // the short band and window censoring trims the tail, so the
        // *fleet aggregate* (checked in tests/paper_claims.rs) lands on
        // the paper's numbers.
        let over_10h = samples.iter().filter(|&&s| s > 10 * HOUR).count() as f64 / n;
        let over_1000h = samples.iter().filter(|&&s| s > 1000 * HOUR).count() as f64 / n;
        assert!((over_10h - 0.87).abs() < 0.03, "P(>10h) = {}", over_10h);
        assert!((over_1000h - 0.32).abs() < 0.03, "P(>1000h) = {}", over_1000h);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate_tickets(&full_cfg());
        let b = generate_tickets(&full_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn maintenance_dominates_ticket_mix() {
        let tickets = generate_tickets(&full_cfg());
        let maint = tickets.iter().filter(|t| t.cause == TicketCause::Maintenance).count();
        let frac = maint as f64 / tickets.len() as f64;
        assert!(frac > 0.30, "maintenance fraction {}", frac);
        // Duplicates and circuits are the next two largest contributors
        // among non-maintenance causes.
        let count = |c: TicketCause| tickets.iter().filter(|t| t.cause == c).count();
        let dup = count(TicketCause::Duplicate);
        let circuit = count(TicketCause::Circuit);
        assert!(dup > count(TicketCause::Cable));
        assert!(circuit > count(TicketCause::Cable));
        assert!(circuit > count(TicketCause::Hardware));
    }

    #[test]
    fn non_duplicate_tickets_keep_min_spacing_per_vpe() {
        let tickets = generate_tickets(&full_cfg());
        for vpe in 0..5 {
            let mut times: Vec<u64> = tickets
                .iter()
                .filter(|t| {
                    t.vpe == vpe
                        && t.cause != TicketCause::Duplicate
                        && t.cause != TicketCause::Maintenance
                        && !t.core_incident
                })
                .map(|t| t.report_time)
                .collect();
            times.sort_unstable();
            for w in times.windows(2) {
                assert!(w[1] - w[0] >= 40 * MINUTE, "vPE {} spacing {}", vpe, w[1] - w[0]);
            }
        }
    }

    #[test]
    fn per_vpe_volume_is_skewed() {
        let cfg = full_cfg();
        let tickets = generate_tickets(&cfg);
        let mut counts = vec![0usize; cfg.n_vpes];
        for t in tickets.iter().filter(|t| t.cause != TicketCause::Maintenance) {
            counts[t.vpe] += 1;
        }
        counts.sort_unstable();
        let max = *counts.last().unwrap() as f64;
        let median = counts[counts.len() / 2] as f64;
        assert!(max > 2.0 * median, "max {} vs median {}", max, median);
    }

    #[test]
    fn core_incidents_hit_many_vpes_in_one_interval() {
        let cfg = full_cfg();
        let tickets = generate_tickets(&cfg);
        let core: Vec<&Ticket> = tickets.iter().filter(|t| t.core_incident).collect();
        assert!(!core.is_empty());
        // Group by hour-scale proximity: at least half the fleet shares
        // one incident window.
        let first = core[0].report_time;
        let same_window = core.iter().filter(|t| t.report_time.abs_diff(first) < 2 * HOUR).count();
        assert!(same_window >= cfg.n_vpes / 2, "only {} vPEs in window", same_window);
    }

    #[test]
    fn chain_failures_cascade_across_a_group_in_id_order() {
        let mut cfg = full_cfg();
        cfg.chain_failures = 2;
        let baseline = generate_tickets(&full_cfg());
        let tickets = generate_tickets(&cfg);
        // The chains are extra tickets on top of a byte-identical base.
        assert_eq!(
            tickets.len(),
            baseline.len() + {
                let topo = crate::topology::Topology::build(&cfg);
                let group_of = |t: &Ticket| topo.vpes[t.vpe].group;
                // Recover the two injected chains: the hardware roots that
                // are not present in the baseline.
                let extra: Vec<&Ticket> = tickets
                    .iter()
                    .filter(|t| {
                        !baseline.iter().any(|b| {
                            b.vpe == t.vpe && b.cause == t.cause && b.report_time == t.report_time
                        })
                    })
                    .collect();
                let roots: Vec<&&Ticket> =
                    extra.iter().filter(|t| t.cause == TicketCause::Hardware).collect();
                assert_eq!(roots.len(), 2, "one hardware root per chain");
                for root in &roots {
                    let group = group_of(root);
                    let members: Vec<usize> =
                        topo.vpes.iter().filter(|v| v.group == group).map(|v| v.id).collect();
                    // Follow-ons: circuit tickets on the remaining members,
                    // strictly after the root, in id order along the chain.
                    let mut chain: Vec<&&Ticket> = extra
                        .iter()
                        .filter(|t| {
                            group_of(t) == group
                                && t.report_time >= root.report_time
                                && t.report_time < root.report_time + members.len() as u64 * HOUR
                        })
                        .collect();
                    chain.sort_by_key(|t| t.report_time);
                    assert_eq!(chain.len(), members.len(), "whole group is hit");
                    assert_eq!(chain[0].vpe, members[0], "root lands on the first member");
                    for (t, &vpe) in chain.iter().zip(members.iter()) {
                        assert_eq!(t.vpe, vpe, "cascade follows topology id order");
                    }
                    for w in chain.windows(2) {
                        let gap = w[1].report_time - w[0].report_time;
                        assert!(
                            (3 * MINUTE..20 * MINUTE).contains(&gap),
                            "hops arrive minutes apart, got {}",
                            gap
                        );
                        assert_eq!(w[1].cause, TicketCause::Circuit);
                    }
                }
                extra.len()
            }
        );
    }

    #[test]
    fn repair_time_always_follows_report_time() {
        let tickets = generate_tickets(&full_cfg());
        assert!(tickets.iter().all(|t| t.repair_time >= t.report_time));
        assert!(tickets.iter().all(|t| t.repair_time <= full_cfg().end_time()));
    }

    #[test]
    fn tickets_are_sorted_with_dense_ids() {
        let tickets = generate_tickets(&full_cfg());
        for (i, w) in tickets.windows(2).enumerate() {
            assert!(w[0].report_time <= w[1].report_time);
            assert_eq!(w[0].id, i);
        }
    }
}
