//! Fleet orchestration: ties topology, behaviour, tickets, fault
//! injection and the software update into one deterministic 18-month
//! trace of raw syslog messages plus the ticket history.

use crate::behavior::VpeBehavior;
use crate::catalog::Catalog;
use crate::config::SimConfig;
use crate::faults::inject_for_ticket;
use crate::scenario::{plan_migrations, Migration};
use crate::tickets::{generate_tickets, Ticket, TicketCause};
use crate::topology::Topology;
use crate::update::UpdatePlan;
use nfv_syslog::time::MINUTE;
use nfv_syslog::{LogRecord, LogStream, SyslogMessage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A complete simulated deployment trace.
#[derive(Debug, Clone)]
pub struct FleetTrace {
    /// The generating configuration.
    pub config: SimConfig,
    /// Fleet topology.
    pub topology: Topology,
    /// Template catalog (ground truth for tests; the detection pipeline
    /// is expected to rediscover templates from raw text).
    pub catalog: Catalog,
    /// All trouble tickets, sorted by report time.
    pub tickets: Vec<Ticket>,
    /// The software-update rollout, when configured.
    pub update: Option<UpdatePlan>,
    /// Planned vPE migrations, start-sorted (expected work; evaluation
    /// suppresses warnings inside these windows like maintenance).
    pub migrations: Vec<Migration>,
    logs: Vec<Vec<SyslogMessage>>,
    injected: Vec<Vec<(u64, usize)>>,
}

/// Synthesizes one vPE's raw log and ground-truth injections. The body
/// is self-contained — it seeds its own RNG from `(cfg.seed, vpe.id)`
/// and reads only this vPE's tickets — so [`FleetTrace::simulate`]
/// (which materializes every vPE up front) and [`MegaFleet`] (which
/// synthesizes vPEs on demand, one at a time) produce byte-identical
/// logs for the same configuration.
///
/// `tickets` may be the whole fleet's ticket list or any pre-filtered
/// subset containing at least this vPE's tickets in report order; rows
/// for other vPEs are ignored, and the same holds for `migrations`.
fn synthesize_vpe(
    cfg: &SimConfig,
    vpe: &crate::topology::Vpe,
    catalog: &Catalog,
    tickets: &[Ticket],
    migrations: &[Migration],
    update_time: Option<u64>,
    end: u64,
) -> (Vec<SyslogMessage>, Vec<(u64, usize)>) {
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed ^ 0xf1ee_7000 ^ (vpe.id as u64).wrapping_mul(0x0123_4567_89ab),
    );
    let mut records: Vec<(u64, usize)> = Vec::new();

    // Normal chatter, split at the vPE's update time when affected.
    match update_time {
        Some(t_u) => {
            let pre = VpeBehavior::build(catalog, vpe, cfg, false);
            let post = VpeBehavior::build(catalog, vpe, cfg, true);
            records.extend(pre.generate(0, t_u, &mut rng));
            records.extend(post.generate(t_u, end, &mut rng));
        }
        None => {
            let beh = VpeBehavior::build(catalog, vpe, cfg, false);
            records.extend(beh.generate(0, end, &mut rng));
        }
    }

    // Maintenance-window chatter (expected, not anomalous).
    for t in tickets.iter().filter(|t| t.vpe == vpe.id && t.cause == TicketCause::Maintenance) {
        let span = t.repair_time.saturating_sub(t.report_time).max(10 * MINUTE);
        let n = rng.gen_range(3..=8);
        for _ in 0..n {
            let when = t.report_time + rng.gen_range(0..span);
            let tpl =
                catalog.maintenance_chatter[rng.gen_range(0..catalog.maintenance_chatter.len())];
            records.push((when.min(end.saturating_sub(1)), tpl));
        }
    }

    // Planned-migration chatter (expected work, no ticket). Emitted as
    // a pre-copy / cutover / resume narration across the window; skipped
    // entirely (zero RNG draws) when this vPE migrates nowhere, so
    // traces without migrations are byte-identical to older ones.
    for m in migrations.iter().filter(|m| m.vpe == vpe.id) {
        let span = m.end.saturating_sub(m.start).max(10 * MINUTE);
        let n = rng.gen_range(6..=14);
        for _ in 0..n {
            let when = m.start + rng.gen_range(0..span);
            let tpl = catalog.migration_chatter[rng.gen_range(0..catalog.migration_chatter.len())];
            records.push((when.min(end.saturating_sub(1)), tpl));
        }
    }

    // Fault signatures around this vPE's tickets.
    let mut vpe_injected: Vec<(u64, usize)> = Vec::new();
    for t in tickets.iter().filter(|t| t.vpe == vpe.id) {
        let recs = inject_for_ticket(t, catalog, &mut rng);
        vpe_injected.extend(recs.iter().copied().filter(|&(time, _)| time < end));
    }
    records.extend(vpe_injected.iter().copied());

    // Render to raw syslog messages, time-sorted.
    records.sort_by_key(|&(t, _)| t);
    let messages = records
        .into_iter()
        .map(|(time, tpl)| {
            let template = catalog.set.get(tpl);
            SyslogMessage {
                timestamp: time,
                host: vpe.name.clone(),
                process: template.process.clone(),
                severity: template.severity,
                text: template.render(&mut rng),
            }
        })
        .collect();
    vpe_injected.sort_by_key(|&(t, _)| t);
    (messages, vpe_injected)
}

impl FleetTrace {
    /// Runs the full simulation for `cfg`. Deterministic in `cfg.seed`.
    pub fn simulate(cfg: SimConfig) -> FleetTrace {
        let topology = Topology::build(&cfg);
        let catalog = Catalog::build();
        let tickets = generate_tickets(&cfg);
        let update = UpdatePlan::build(&cfg);
        let migrations = plan_migrations(&cfg);
        let end = cfg.end_time();

        let mut logs = Vec::with_capacity(cfg.n_vpes);
        let mut injected = Vec::with_capacity(cfg.n_vpes);

        for vpe in &topology.vpes {
            let update_time = update.as_ref().and_then(|u| u.time_of[vpe.id]);
            let (messages, vpe_injected) =
                synthesize_vpe(&cfg, vpe, &catalog, &tickets, &migrations, update_time, end);
            logs.push(messages);
            injected.push(vpe_injected);
        }

        FleetTrace { config: cfg, topology, catalog, tickets, update, migrations, logs, injected }
    }

    /// Raw messages of one vPE, time-sorted.
    pub fn messages(&self, vpe: usize) -> &[SyslogMessage] {
        &self.logs[vpe]
    }

    /// Ground-truth injected anomaly records (time, catalog template) of
    /// one vPE. Only tests and calibration use this; the detection
    /// pipeline never sees it.
    pub fn injected(&self, vpe: usize) -> &[(u64, usize)] {
        &self.injected[vpe]
    }

    /// Tickets raised on one vPE, report-time-sorted.
    pub fn tickets_for(&self, vpe: usize) -> Vec<&Ticket> {
        self.tickets.iter().filter(|t| t.vpe == vpe).collect()
    }

    /// Ground-truth template stream of one vPE (catalog ids), bypassing
    /// raw-text parsing. Useful for fast tests; the real pipeline goes
    /// through the signature tree instead.
    pub fn ground_truth_stream(&self, vpe: usize) -> LogStream {
        let catalog = &self.catalog;
        let records = self.logs[vpe]
            .iter()
            .map(|m| {
                // Recover the catalog id by process+severity+token count —
                // unique in our catalog by construction of distinct
                // patterns; fall back to text match.
                let words = m.text.split_whitespace().count();
                let id = catalog
                    .set
                    .iter()
                    .find(|t| {
                        t.process == m.process
                            && t.severity == m.severity
                            && t.token_count() == words
                            && template_matches(t, &m.text)
                    })
                    .map(|t| t.id)
                    .expect("rendered message must match its template");
                LogRecord { time: m.timestamp, template: id }
            })
            .collect();
        LogStream::from_records(records)
    }

    /// Total messages across the fleet.
    pub fn total_messages(&self) -> usize {
        self.logs.iter().map(|l| l.len()).sum()
    }
}

/// A fleet too large to materialize: synthesizes each vPE's raw log on
/// demand instead of holding the whole fleet's text in memory.
///
/// A 10,000-vPE month is hundreds of millions of bytes of rendered
/// syslog; [`FleetTrace::simulate`] would hold all of it at once. A
/// `MegaFleet` runs the same deterministic per-vPE generator
/// ([`synthesize_vpe`]) lazily: fleet-wide state (topology, catalog,
/// tickets, update plan) is built once, and [`MegaFleet::synthesize`]
/// produces one vPE's messages at a time, so peak memory is one vPE's
/// raw log plus whatever compact encoding the caller retains.
///
/// For any `cfg`, `MegaFleet::new(cfg).synthesize(v)` is byte-identical
/// to `FleetTrace::simulate(cfg).messages(v)`.
#[derive(Debug, Clone)]
pub struct MegaFleet {
    /// The generating configuration.
    pub config: SimConfig,
    /// Fleet topology (per-vPE latent group, affinity, naming).
    pub topology: Topology,
    /// Template catalog.
    pub catalog: Catalog,
    /// All trouble tickets, sorted by report time.
    pub tickets: Vec<Ticket>,
    /// The software-update rollout, when configured.
    pub update: Option<UpdatePlan>,
    /// Planned vPE migrations, start-sorted.
    pub migrations: Vec<Migration>,
    end: u64,
    /// Tickets bucketed by vPE (report order preserved), so per-vPE
    /// synthesis is O(own tickets) instead of O(fleet tickets).
    tickets_by_vpe: Vec<Vec<Ticket>>,
    /// Migrations bucketed by vPE (start order preserved).
    migrations_by_vpe: Vec<Vec<Migration>>,
}

impl MegaFleet {
    /// Builds the fleet-wide state. No per-vPE log is generated yet.
    pub fn new(cfg: SimConfig) -> MegaFleet {
        let topology = Topology::build(&cfg);
        let catalog = Catalog::build();
        let tickets = generate_tickets(&cfg);
        let update = UpdatePlan::build(&cfg);
        let migrations = plan_migrations(&cfg);
        let end = cfg.end_time();
        let mut tickets_by_vpe = vec![Vec::new(); cfg.n_vpes];
        for t in &tickets {
            tickets_by_vpe[t.vpe].push(*t);
        }
        let mut migrations_by_vpe = vec![Vec::new(); cfg.n_vpes];
        for m in &migrations {
            migrations_by_vpe[m.vpe].push(*m);
        }
        MegaFleet {
            config: cfg,
            topology,
            catalog,
            tickets,
            update,
            migrations,
            end,
            tickets_by_vpe,
            migrations_by_vpe,
        }
    }

    /// Number of vPEs in the fleet.
    pub fn n_vpes(&self) -> usize {
        self.config.n_vpes
    }

    /// Synthesizes one vPE's raw messages, time-sorted. Deterministic
    /// in `(config.seed, vpe)` and independent of call order.
    pub fn synthesize(&self, vpe: usize) -> Vec<SyslogMessage> {
        let v = &self.topology.vpes[vpe];
        let update_time = self.update.as_ref().and_then(|u| u.time_of[vpe]);
        let (messages, _) = synthesize_vpe(
            &self.config,
            v,
            &self.catalog,
            &self.tickets_by_vpe[vpe],
            &self.migrations_by_vpe[vpe],
            update_time,
            self.end,
        );
        messages
    }

    /// Tickets raised on one vPE, report-time-sorted.
    pub fn tickets_for(&self, vpe: usize) -> &[Ticket] {
        &self.tickets_by_vpe[vpe]
    }
}

fn template_matches(t: &nfv_syslog::Template, text: &str) -> bool {
    use nfv_syslog::template::TplToken;
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.len() != t.tokens.len() {
        return false;
    }
    t.tokens.iter().zip(words.iter()).all(|(tok, w)| match tok {
        TplToken::Lit(lit) => lit == w,
        TplToken::Var(_) => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimPreset;
    use nfv_syslog::time::{month_start, DAY};
    use nfv_tensor::vecops::cosine_similarity;

    fn fast_trace() -> FleetTrace {
        FleetTrace::simulate(SimConfig::preset(SimPreset::Fast, 77))
    }

    #[test]
    fn trace_is_deterministic() {
        let a = fast_trace();
        let b = fast_trace();
        assert_eq!(a.total_messages(), b.total_messages());
        assert_eq!(a.messages(0), b.messages(0));
        assert_eq!(a.tickets, b.tickets);
    }

    #[test]
    fn messages_are_time_sorted_and_host_tagged() {
        let trace = fast_trace();
        for vpe in 0..trace.config.n_vpes {
            let msgs = trace.messages(vpe);
            assert!(!msgs.is_empty());
            for w in msgs.windows(2) {
                assert!(w[0].timestamp <= w[1].timestamp);
            }
            assert!(msgs.iter().all(|m| m.host == trace.topology.vpes[vpe].name));
        }
    }

    #[test]
    fn ground_truth_stream_matches_message_count() {
        let trace = fast_trace();
        let s = trace.ground_truth_stream(0);
        assert_eq!(s.len(), trace.messages(0).len());
    }

    #[test]
    fn injected_anomalies_appear_in_the_log() {
        let trace = fast_trace();
        for vpe in 0..trace.config.n_vpes {
            let stream = trace.ground_truth_stream(vpe);
            for &(time, tpl) in trace.injected(vpe) {
                let found = stream.slice_time(time, time + 1).iter().any(|r| r.template == tpl);
                assert!(found, "vpe {} missing injected record at {}", vpe, time);
            }
        }
    }

    #[test]
    fn update_shifts_syslog_distribution() {
        // Month-over-month cosine similarity: >0.8 normally, <0.4 across
        // the update month for affected vPEs (§3.3).
        let mut cfg = SimConfig::preset(SimPreset::Fast, 5);
        cfg.months = 6;
        cfg.update_month = Some(3);
        let trace = FleetTrace::simulate(cfg);
        let plan = trace.update.as_ref().unwrap();
        let affected = (0..trace.config.n_vpes).find(|&v| plan.time_of[v].is_some()).unwrap();
        let unaffected = (0..trace.config.n_vpes).find(|&v| plan.time_of[v].is_none()).unwrap();

        let vocab = trace.catalog.set.len();
        let sim_between = |vpe: usize, m1: usize, m2: usize| {
            let s = trace.ground_truth_stream(vpe);
            let d1 = s.template_distribution(vocab, month_start(m1), month_start(m1 + 1));
            let d2 = s.template_distribution(vocab, month_start(m2), month_start(m2 + 1));
            cosine_similarity(&d1, &d2)
        };

        assert!(sim_between(affected, 1, 2) > 0.8, "pre-update months should look alike");
        assert!(
            sim_between(affected, 2, 4) < 0.4,
            "update must break the distribution: {}",
            sim_between(affected, 2, 4)
        );
        assert!(sim_between(unaffected, 2, 4) > 0.8, "unaffected vPE should stay stable");
    }

    #[test]
    fn maintenance_windows_emit_chatter() {
        let trace = fast_trace();
        let chatter: std::collections::HashSet<usize> =
            trace.catalog.maintenance_chatter.iter().copied().collect();
        let mut found = false;
        for vpe in 0..trace.config.n_vpes {
            let stream = trace.ground_truth_stream(vpe);
            for t in trace.tickets_for(vpe) {
                if t.cause == TicketCause::Maintenance {
                    let slice = stream.slice_time(t.report_time, t.repair_time + 1);
                    if slice.iter().any(|r| chatter.contains(&r.template)) {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "no maintenance chatter found");
    }

    #[test]
    fn migration_windows_emit_chatter_only_inside_the_window() {
        let mut cfg = SimConfig::preset(SimPreset::Fast, 77);
        cfg.migrations = 5;
        let trace = FleetTrace::simulate(cfg);
        assert_eq!(trace.migrations.len(), 5);
        let chatter: std::collections::HashSet<usize> =
            trace.catalog.migration_chatter.iter().copied().collect();
        let mut inside = 0usize;
        for vpe in 0..trace.config.n_vpes {
            let stream = trace.ground_truth_stream(vpe);
            let windows: Vec<&Migration> =
                trace.migrations.iter().filter(|m| m.vpe == vpe).collect();
            for r in stream.records() {
                if chatter.contains(&r.template) {
                    assert!(
                        windows.iter().any(|m| (m.start..m.end.max(m.start + 1)).contains(&r.time)
                            || r.time == trace.config.end_time() - 1),
                        "migration chatter at {} outside every window on vpe {}",
                        r.time,
                        vpe
                    );
                    inside += 1;
                }
            }
        }
        assert!(inside >= 5 * 6, "expected >=6 chatter lines per migration, got {}", inside);
    }

    #[test]
    fn zero_migrations_leave_the_trace_byte_identical() {
        // The migration RNG stream is separate and the chatter loop
        // draws nothing when a vPE has no migrations, so the default
        // trace is unchanged by the feature existing at all.
        let trace = fast_trace();
        assert!(trace.migrations.is_empty());
        let mut cfg = SimConfig::preset(SimPreset::Fast, 77);
        cfg.migrations = 0;
        let again = FleetTrace::simulate(cfg);
        for vpe in 0..trace.config.n_vpes {
            assert_eq!(trace.messages(vpe), again.messages(vpe));
        }
    }

    #[test]
    fn megafleet_matches_trace_with_scenarios_enabled() {
        let mut cfg = SimConfig::preset(SimPreset::Fast, 31);
        cfg.migrations = 4;
        cfg.chain_failures = 2;
        let trace = FleetTrace::simulate(cfg.clone());
        let mega = MegaFleet::new(cfg.clone());
        assert_eq!(mega.migrations, trace.migrations);
        for vpe in 0..cfg.n_vpes {
            assert_eq!(mega.synthesize(vpe), trace.messages(vpe), "vpe {}", vpe);
        }
    }

    #[test]
    fn megafleet_matches_materialized_trace_byte_for_byte() {
        // Same config through both paths: the eager FleetTrace and the
        // lazy MegaFleet must render identical logs, in any call order.
        let cfg = SimConfig::preset(SimPreset::Fast, 77);
        let trace = FleetTrace::simulate(cfg.clone());
        let mega = MegaFleet::new(cfg.clone());
        assert_eq!(mega.n_vpes(), cfg.n_vpes);
        for vpe in (0..cfg.n_vpes).rev() {
            assert_eq!(mega.synthesize(vpe), trace.messages(vpe), "vpe {}", vpe);
            let eager: Vec<Ticket> = trace.tickets_for(vpe).into_iter().copied().collect();
            assert_eq!(mega.tickets_for(vpe), &eager[..]);
        }
        assert_eq!(mega.tickets, trace.tickets);
    }

    #[test]
    fn megafleet_with_update_matches_trace() {
        let mut cfg = SimConfig::preset(SimPreset::Fast, 5);
        cfg.months = 6;
        cfg.update_month = Some(3);
        let trace = FleetTrace::simulate(cfg.clone());
        let mega = MegaFleet::new(cfg.clone());
        for vpe in 0..cfg.n_vpes {
            assert_eq!(mega.synthesize(vpe), trace.messages(vpe), "vpe {}", vpe);
        }
    }

    #[test]
    fn mega_config_scales_vpe_count() {
        let cfg = SimConfig::mega(64, 2, 9);
        let mega = MegaFleet::new(cfg);
        assert_eq!(mega.n_vpes(), 64);
        let msgs = mega.synthesize(63);
        assert!(!msgs.is_empty());
        // Sparse rate: well under one message per minute.
        let months_secs = mega.config.end_time();
        assert!((msgs.len() as u64) < months_secs / 60);
    }

    #[test]
    fn fast_preset_volume_is_testable() {
        let trace = fast_trace();
        let total = trace.total_messages();
        // ~4 months * 10 vPEs at one message per ~40 min.
        assert!((20_000..90_000).contains(&total), "total {}", total);
    }

    #[test]
    fn raw_lines_parse_back() {
        let trace = fast_trace();
        let msgs = trace.messages(2);
        for m in msgs.iter().take(500) {
            let parsed =
                nfv_syslog::parse::parse_line(&m.to_line(), m.timestamp.saturating_sub(60))
                    .expect("rendered line must parse");
            assert_eq!(&parsed, m);
        }
    }

    #[test]
    fn fault_templates_concentrate_around_tickets() {
        // Fault-layer templates do appear outside ticket neighbourhoods
        // (benign transients), but only at a low background rate; the
        // bulk of fault-template mass sits near tickets.
        let trace = fast_trace();
        let vpe = 1;
        let stream = trace.ground_truth_stream(vpe);
        let fault_ids: std::collections::HashSet<usize> = TicketCause::ALL
            .iter()
            .flat_map(|&c| trace.catalog.fault_templates(c).iter().copied())
            .collect();
        let tickets = trace.tickets_for(vpe);
        // Compare fault-template *density* inside vs outside ticket
        // neighbourhoods: bursts concentrate around tickets while the
        // benign background stays thin.
        let mut far = 0usize;
        let mut near = 0usize;
        let mut near_any = 0usize;
        let mut far_any = 0usize;
        for r in stream.records() {
            let near_ticket = tickets
                .iter()
                .any(|t| r.time + 2 * DAY > t.report_time && r.time < t.repair_time + DAY);
            if near_ticket {
                near_any += 1;
            } else {
                far_any += 1;
            }
            if fault_ids.contains(&r.template) {
                if near_ticket {
                    near += 1;
                } else {
                    far += 1;
                }
            }
        }
        assert!(near > 0 && far_any > 0 && near_any > 0);
        let density_near = near as f64 / near_any as f64;
        let density_far = far as f64 / far_any as f64;
        assert!(
            density_near > 3.0 * density_far,
            "near density {} vs far density {}",
            density_near,
            density_far
        );
        assert!(density_far < 0.03, "background fault-template rate {}", density_far);
    }
}
