//! Physical provider-edge (pPE) comparator.
//!
//! §2 of the paper compares vPE syslogs against pPEs with similar ticket
//! volume: vPE syslogs have 77% less volume and far fewer physical-layer
//! messages, confirming that virtualization hides lower-layer events.
//! This module generates a pPE log stream with the same control-plane
//! chatter as a vPE plus the physical-layer environment chatter a real
//! chassis produces, at a combined rate ~4.3x the vPE rate.

use crate::behavior::VpeBehavior;
use crate::catalog::Catalog;
use crate::config::SimConfig;
use crate::topology::Vpe;
use nfv_syslog::template::Layer;
use nfv_syslog::{LogRecord, LogStream};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Ratio of pPE to vPE total log volume (1 / (1 - 0.77)).
const PPE_VOLUME_RATIO: f64 = 4.35;

/// Generates one pPE's template stream over `[0, end)`.
///
/// The pPE emits the group-0 control-plane behaviour at a slightly
/// elevated rate plus dense physical-layer chatter; the total volume is
/// `PPE_VOLUME_RATIO` times the vPE rate.
pub fn simulate_ppe(cfg: &SimConfig, catalog: &Catalog, seed: u64) -> LogStream {
    let end = cfg.end_time();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x99ee_0001);

    // Control-plane part: reuse the vPE behaviour at ~1.6x rate.
    let proto_vpe = Vpe {
        id: usize::MAX,
        name: "ppe00".to_string(),
        group: 0,
        core_router: 0,
        base_affinity: 0.75,
        outlier: false,
    };
    let mut proto_cfg = cfg.clone();
    proto_cfg.mean_log_gap = cfg.mean_log_gap / 1.6;
    let behavior = VpeBehavior::build(catalog, &proto_vpe, &proto_cfg, false);
    let mut records: Vec<(u64, usize)> = behavior.generate(0, end, &mut rng);

    // Physical-layer chatter: Poisson process filling the remaining
    // volume budget.
    let physical_gap = cfg.mean_log_gap / (PPE_VOLUME_RATIO - 1.6);
    let mut t = 0.0f64;
    loop {
        t += -physical_gap * (1.0 - rng.gen::<f64>()).ln();
        if t >= end as f64 {
            break;
        }
        let tpl = catalog.ppe_physical[rng.gen_range(0..catalog.ppe_physical.len())];
        records.push((t as u64, tpl));
    }

    LogStream::from_records(
        records.into_iter().map(|(time, template)| LogRecord { time, template }).collect(),
    )
}

/// Volume comparison for the §2 statistic: returns
/// `(vpe_count, ppe_count, vpe_reduction)` where `vpe_reduction` is the
/// fractional volume reduction of the vPE relative to the pPE.
pub fn volume_comparison(vpe_stream: &LogStream, ppe_stream: &LogStream) -> (usize, usize, f64) {
    let v = vpe_stream.len();
    let p = ppe_stream.len();
    let reduction = if p == 0 { 0.0 } else { 1.0 - v as f64 / p as f64 };
    (v, p, reduction)
}

/// Fraction of a stream's messages on the physical layer.
pub fn physical_fraction(stream: &LogStream, catalog: &Catalog) -> f64 {
    if stream.is_empty() {
        return 0.0;
    }
    let physical = stream
        .records()
        .iter()
        .filter(|r| catalog.set.get(r.template).layer == Layer::Physical)
        .count();
    physical as f64 / stream.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimPreset;
    use crate::fleet::FleetTrace;

    #[test]
    fn ppe_volume_is_about_4x_vpe() {
        let cfg = SimConfig::preset(SimPreset::Fast, 21);
        let trace = FleetTrace::simulate(cfg.clone());
        let ppe = simulate_ppe(&cfg, &trace.catalog, 21);
        let vpe = trace.ground_truth_stream(0);
        let (_, _, reduction) = volume_comparison(&vpe, &ppe);
        assert!(
            (0.70..0.84).contains(&reduction),
            "vPE volume reduction {} (expected ~0.77)",
            reduction
        );
    }

    #[test]
    fn ppe_has_physical_chatter_vpe_does_not() {
        let cfg = SimConfig::preset(SimPreset::Fast, 22);
        let trace = FleetTrace::simulate(cfg.clone());
        let ppe = simulate_ppe(&cfg, &trace.catalog, 22);
        let vpe = trace.ground_truth_stream(0);
        assert!(physical_fraction(&ppe, &trace.catalog) > 0.4);
        assert!(physical_fraction(&vpe, &trace.catalog) < 0.01);
    }

    #[test]
    fn ppe_stream_is_sorted_and_deterministic() {
        let cfg = SimConfig::preset(SimPreset::Fast, 23);
        let catalog = Catalog::build();
        let a = simulate_ppe(&cfg, &catalog, 5);
        let b = simulate_ppe(&cfg, &catalog, 5);
        assert_eq!(a.records(), b.records());
        for w in a.records().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }
}
