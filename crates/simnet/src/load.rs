//! Replayable firehose load generator for the serving runtime.
//!
//! `nfvpredict serve` and the overload chaos tests need input that can
//! outrun the scorer *reproducibly*: the same spec and seed must produce
//! the same byte stream, tick for tick, so degraded-mode engagement and
//! drop accounting can be asserted exactly across runs.
//!
//! A [`LoadGen`] emits per-feed syslog lines in discrete ticks (one
//! simulated second each). The steady state is cyclic heartbeat chatter
//! a small LSTM learns easily; on top of that the spec can schedule:
//!
//! * **bursts** — tick windows where the rate is multiplied (the
//!   firehose that forces overload policy to engage);
//! * **outages** — tick windows where a feed goes silent (exercising
//!   staleness detection and recovery);
//! * **anomaly windows** — tick windows with injected never-seen fault
//!   lines (what the monitor is there to catch);
//! * **transport faults** — loss/duplication/reordering/corruption via
//!   [`TransportSim`], re-seeded per tick so fault patterns vary over
//!   time while staying replayable. (Clock skew is not meaningful here:
//!   it would be redrawn every tick. Leave it at zero.)
//!
//! [`LoadGen::training_messages`] produces the same chatter, clean and
//! anomaly-free, at the same cadence — suitable for training the very
//! monitor that will score the live stream.

use crate::transport::{TransportFaults, TransportSim};
use nfv_syslog::message::Severity;
use nfv_syslog::SyslogMessage;

/// Epoch of the generated timeline (seconds); tick `t` maps to
/// `LOAD_EPOCH + t`.
pub const LOAD_EPOCH: u64 = 10_000;

/// A rate-multiplier window: `[start, start + len)` ticks at
/// `mult × base_rate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpec {
    /// First tick of the burst.
    pub start: u64,
    /// Burst length in ticks.
    pub len: u64,
    /// Rate multiplier while the burst is active.
    pub mult: u64,
}

impl BurstSpec {
    /// Parses the CLI syntax `start:len:mult`.
    pub fn parse(s: &str) -> Result<BurstSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("burst {:?} is not start:len:mult", s));
        }
        let num = |v: &str, what: &str| -> Result<u64, String> {
            v.trim().parse().map_err(|_| format!("{:?} is not a whole number ({})", v, what))
        };
        let spec = BurstSpec {
            start: num(parts[0], "start tick")?,
            len: num(parts[1], "length in ticks")?,
            mult: num(parts[2], "rate multiplier")?,
        };
        if spec.mult == 0 {
            return Err("burst multiplier must be at least 1".to_string());
        }
        Ok(spec)
    }
}

/// A tick window `[start, start + len)` for outages and anomaly
/// injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// First tick of the window.
    pub start: u64,
    /// Window length in ticks.
    pub len: u64,
}

impl WindowSpec {
    /// Parses the CLI syntax `start:len`.
    pub fn parse(s: &str) -> Result<WindowSpec, String> {
        let (a, b) = s.split_once(':').ok_or_else(|| format!("window {:?} is not start:len", s))?;
        let num = |v: &str| -> Result<u64, String> {
            v.trim().parse().map_err(|_| format!("{:?} is not a whole number", v))
        };
        Ok(WindowSpec { start: num(a)?, len: num(b)? })
    }

    /// Whether `tick` falls inside the window.
    pub fn contains(&self, tick: u64) -> bool {
        tick >= self.start && tick < self.start.saturating_add(self.len)
    }
}

/// Full description of a load scenario.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Number of feeds.
    pub feeds: usize,
    /// Lines per feed per tick in steady state.
    pub base_rate: u64,
    /// Rate-multiplier windows (applied to every feed).
    pub bursts: Vec<BurstSpec>,
    /// Silence windows (applied to every feed).
    pub outages: Vec<WindowSpec>,
    /// Ticks during which anomalous fault lines are injected.
    pub anomalies: Vec<WindowSpec>,
    /// Anomalous lines appended per feed per anomaly tick.
    pub anomaly_rate: u64,
    /// Transport-level chaos applied to the rendered lines.
    pub faults: TransportFaults,
    /// Seed for all randomness (transport faults).
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            feeds: 1,
            base_rate: 50,
            bursts: Vec::new(),
            outages: Vec::new(),
            anomalies: Vec::new(),
            anomaly_rate: 3,
            faults: TransportFaults::default(),
            seed: 1,
        }
    }
}

/// Deterministic tick-by-tick line generator over a [`LoadSpec`].
///
/// Per-feed message counters advance as lines are generated, so replay
/// requires generating ticks in increasing order from a fresh
/// generator — which is exactly how the serving loop and the chaos
/// tests drive it.
pub struct LoadGen {
    spec: LoadSpec,
    /// Per-feed monotone message counter (drives the template cycle).
    counters: Vec<u64>,
}

impl LoadGen {
    /// A generator at tick zero.
    pub fn new(spec: LoadSpec) -> LoadGen {
        let counters = vec![0; spec.feeds];
        LoadGen { spec, counters }
    }

    /// The scenario being generated.
    pub fn spec(&self) -> &LoadSpec {
        &self.spec
    }

    /// Lines per feed scheduled for `tick` (before transport loss/dup):
    /// zero during an outage, burst-multiplied otherwise, plus the
    /// anomaly lines when an anomaly window is active.
    pub fn rate_at(&self, tick: u64) -> u64 {
        if self.spec.outages.iter().any(|w| w.contains(tick)) {
            return 0;
        }
        let mult =
            self.spec.bursts.iter().filter(|b| b.contains(tick)).map(|b| b.mult).max().unwrap_or(1);
        let anomalies = if self.spec.anomalies.iter().any(|w| w.contains(tick)) {
            self.spec.anomaly_rate
        } else {
            0
        };
        self.spec.base_rate * mult + anomalies
    }

    /// Fast-forwards the generator to `tick` without rendering lines:
    /// the per-feed counters become exactly what generating ticks
    /// `0..tick` in order would have left behind (the per-tick counter
    /// advance equals [`LoadGen::rate_at`]). Warm restarts use this to
    /// resume the replayable stream mid-run — [`LoadGen::tick_lines`]
    /// from here on is byte-identical to an uninterrupted generator.
    pub fn seek(&mut self, tick: u64) {
        let total: u64 = (0..tick).map(|t| self.rate_at(t)).sum();
        for c in &mut self.counters {
            *c = total;
        }
    }

    /// Whether `tick` injects anomaly lines.
    pub fn in_anomaly(&self, tick: u64) -> bool {
        self.spec.anomalies.iter().any(|w| w.contains(tick))
            && !self.spec.outages.iter().any(|w| w.contains(tick))
    }

    fn message(feed: usize, time: u64, k: u64) -> SyslogMessage {
        SyslogMessage {
            timestamp: time,
            host: format!("vpe{:02}", feed),
            process: "rpd".to_string(),
            severity: Severity::Info,
            text: format!("heartbeat stage{} counter {} status ok", k % 4, k),
        }
    }

    fn anomaly_message(feed: usize, time: u64, k: u64) -> SyslogMessage {
        SyslogMessage {
            timestamp: time,
            host: format!("vpe{:02}", feed),
            process: "chassisd".to_string(),
            severity: Severity::Error,
            text: format!("chassis alarm unknown fault storm event {} feed {}", k, feed),
        }
    }

    /// Generates one feed's raw lines for `tick`, with transport faults
    /// applied. Ticks must be generated in increasing order per feed.
    pub fn tick_lines(&mut self, tick: u64, feed: usize) -> Vec<String> {
        let time = LOAD_EPOCH + tick;
        if self.spec.outages.iter().any(|w| w.contains(tick)) {
            return Vec::new();
        }
        let mult =
            self.spec.bursts.iter().filter(|b| b.contains(tick)).map(|b| b.mult).max().unwrap_or(1);
        let normal = self.spec.base_rate * mult;
        let k0 = self.counters[feed];
        let mut msgs: Vec<SyslogMessage> =
            (0..normal).map(|i| Self::message(feed, time, k0 + i)).collect();
        if self.in_anomaly(tick) {
            for j in 0..self.spec.anomaly_rate {
                msgs.push(Self::anomaly_message(feed, time, k0 + normal + j));
            }
        }
        self.counters[feed] +=
            normal + if self.in_anomaly(tick) { self.spec.anomaly_rate } else { 0 };
        if self.spec.faults.is_clean() {
            msgs.iter().map(|m| m.to_line()).collect()
        } else {
            // Re-seed per tick so fault patterns vary over the run while
            // remaining a pure function of (seed, tick, feed).
            let sim = TransportSim::new(
                self.spec.faults,
                self.spec.seed ^ tick.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            sim.deliver(feed, &msgs)
        }
    }

    /// Clean, anomaly-free messages at the serving cadence for training
    /// the monitor that will score this load (`ticks` ticks' worth for
    /// one representative feed).
    pub fn training_messages(&self, ticks: u64) -> Vec<SyslogMessage> {
        let mut out = Vec::new();
        let mut k = 0u64;
        for tick in 0..ticks {
            for _ in 0..self.spec.base_rate {
                out.push(Self::message(0, LOAD_EPOCH + tick, k));
                k += 1;
            }
        }
        out
    }
}

impl BurstSpec {
    /// Whether `tick` falls inside the burst.
    pub fn contains(&self, tick: u64) -> bool {
        tick >= self.start && tick < self.start.saturating_add(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_syslog::parse::parse_line;

    fn spec() -> LoadSpec {
        LoadSpec {
            feeds: 2,
            base_rate: 10,
            bursts: vec![BurstSpec { start: 5, len: 3, mult: 4 }],
            outages: vec![WindowSpec { start: 12, len: 2 }],
            anomalies: vec![WindowSpec { start: 9, len: 2 }],
            anomaly_rate: 3,
            faults: TransportFaults::parse("loss=0.05,corrupt=0.02").unwrap(),
            seed: 7,
        }
    }

    #[test]
    fn spec_strings_parse() {
        assert_eq!(BurstSpec::parse("10:5:8").unwrap(), BurstSpec { start: 10, len: 5, mult: 8 });
        assert!(BurstSpec::parse("10:5").is_err());
        assert!(BurstSpec::parse("10:5:0").is_err());
        assert_eq!(WindowSpec::parse("30:4").unwrap(), WindowSpec { start: 30, len: 4 });
        assert!(WindowSpec::parse("30").is_err());
    }

    #[test]
    fn replay_is_byte_identical() {
        let run = || {
            let mut gen = LoadGen::new(spec());
            let mut all = Vec::new();
            for tick in 0..20 {
                for feed in 0..2 {
                    all.extend(gen.tick_lines(tick, feed));
                }
            }
            all
        };
        let a = run();
        assert_eq!(a, run(), "same spec and seed must replay identically");
        assert!(!a.is_empty());
    }

    #[test]
    fn bursts_outages_and_anomalies_shape_the_rate() {
        let gen = LoadGen::new(spec());
        assert_eq!(gen.rate_at(0), 10);
        assert_eq!(gen.rate_at(5), 40, "burst multiplies the base rate");
        assert_eq!(gen.rate_at(9), 13, "anomaly window adds fault lines");
        assert_eq!(gen.rate_at(12), 0, "outage silences the feed");
        assert!(gen.in_anomaly(9));
        assert!(!gen.in_anomaly(12));
    }

    #[test]
    fn clean_lines_parse_and_counters_advance_across_ticks() {
        let mut gen = LoadGen::new(LoadSpec { feeds: 1, base_rate: 5, ..Default::default() });
        let a = gen.tick_lines(0, 0);
        let b = gen.tick_lines(1, 0);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 5);
        assert_ne!(a[0], b[0], "message counter must advance across ticks");
        for line in a.iter().chain(b.iter()) {
            let msg = parse_line(line, 0).expect("clean lines must parse");
            assert!(msg.text.contains("heartbeat"));
        }
    }

    /// A seeked generator must continue byte-identically to one that
    /// generated every earlier tick — across bursts, outages, anomaly
    /// windows, and transport faults.
    #[test]
    fn seek_matches_generating_from_zero() {
        for resume_at in [0u64, 1, 6, 10, 13, 17] {
            let mut full = LoadGen::new(spec());
            let mut tail_full = Vec::new();
            for tick in 0..20 {
                for feed in 0..2 {
                    let lines = full.tick_lines(tick, feed);
                    if tick >= resume_at {
                        tail_full.extend(lines);
                    }
                }
            }
            let mut seeked = LoadGen::new(spec());
            seeked.seek(resume_at);
            let mut tail_seeked = Vec::new();
            for tick in resume_at..20 {
                for feed in 0..2 {
                    tail_seeked.extend(seeked.tick_lines(tick, feed));
                }
            }
            assert_eq!(tail_seeked, tail_full, "seek({}) diverged", resume_at);
        }
    }

    #[test]
    fn training_messages_match_serving_cadence() {
        let gen = LoadGen::new(LoadSpec { feeds: 1, base_rate: 4, ..Default::default() });
        let train = gen.training_messages(10);
        assert_eq!(train.len(), 40);
        assert!(train.iter().all(|m| !m.text.contains("alarm")));
        // Same timestamps per tick as the live stream's clean path.
        assert_eq!(train[0].timestamp, LOAD_EPOCH);
        assert_eq!(train[4].timestamp, LOAD_EPOCH + 1);
    }
}
