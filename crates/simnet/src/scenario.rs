//! Scenario generators beyond the paper's baseline fault universe.
//!
//! The baseline simulation already covers local faults, duplicate
//! bursts, maintenance windows, core-router incidents and the software
//! update. This module adds two NFV-specific stressors for the
//! scenario x detector ablation matrix:
//!
//! * **planned migrations** ([`plan_migrations`]) — a vPE's VM state is
//!   moved to another host. The hypervisor narrates the move
//!   (pre-copy, cutover, resume) in management chatter that looks
//!   nothing like steady state, yet nothing is broken: no ticket is
//!   raised, and the evaluation suppresses warnings inside the window
//!   exactly like scheduled maintenance. A detector that cannot absorb
//!   migration chatter pays for it in false alarms.
//! * **chain failures** (in [`crate::tickets::generate_tickets`]) — a
//!   root hardware fault on one member of a behaviour group cascades
//!   into circuit trouble across the rest of the group in topology
//!   order, each follow-on minutes after the last. Unlike core-router
//!   incidents (one cause, simultaneous symptoms), a chain is a rolling
//!   front: every hop is a real ticket a detector should predict.

use crate::config::SimConfig;
use nfv_syslog::time::{HOUR, MINUTE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One planned vPE migration: the VM's state moves to another host
/// during `[start, end)`. Expected work — chatter, but no ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The migrated vPE.
    pub vpe: usize,
    /// Migration window start (epoch seconds).
    pub start: u64,
    /// Migration window end (exclusive).
    pub end: u64,
}

/// Plans `cfg.migrations` migrations, deterministic in `cfg.seed` and
/// independent of everything else in the simulation (its RNG stream is
/// separate, so enabling migrations never perturbs chatter, tickets or
/// faults). Windows last 30 minutes to 3 hours and are start-sorted.
pub fn plan_migrations(cfg: &SimConfig) -> Vec<Migration> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x319a_7e55_0dd0_cafe);
    let end = cfg.end_time();
    let mut out = Vec::with_capacity(cfg.migrations);
    for _ in 0..cfg.migrations {
        let vpe = rng.gen_range(0..cfg.n_vpes);
        let span = rng.gen_range(30 * MINUTE..3 * HOUR);
        let start = rng.gen_range(0..end.saturating_sub(span).max(1));
        out.push(Migration { vpe, start, end: start + span });
    }
    out.sort_by_key(|m| (m.start, m.vpe));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimPreset;

    #[test]
    fn migrations_are_deterministic_and_sorted() {
        let mut cfg = SimConfig::preset(SimPreset::Fast, 9);
        cfg.migrations = 6;
        let a = plan_migrations(&cfg);
        let b = plan_migrations(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        for w in a.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for m in &a {
            assert!(m.vpe < cfg.n_vpes);
            assert!(m.start < m.end && m.end <= cfg.end_time());
            assert!((30 * MINUTE..3 * HOUR).contains(&(m.end - m.start)));
        }
    }

    #[test]
    fn zero_migrations_plan_nothing() {
        let cfg = SimConfig::preset(SimPreset::Fast, 9);
        assert!(plan_migrations(&cfg).is_empty());
    }
}
