//! The software-update event that shifts syslog distributions.
//!
//! "Between late 2017 and early 2018, the vPE network had a system
//! upgrade, and some vPEs' syslog distributions were largely modified"
//! (§3.3/§4.3). The update rolls out over the configured month, hitting
//! a configurable fraction of the fleet at staggered times.

use crate::config::SimConfig;
use nfv_syslog::time::{month_start, DAY};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The planned update rollout.
#[derive(Debug, Clone)]
pub struct UpdatePlan {
    /// Per-vPE update time (epoch seconds); `None` when unaffected.
    pub time_of: Vec<Option<u64>>,
    /// First second of the rollout month.
    pub month_begin: u64,
}

impl UpdatePlan {
    /// Plans the rollout for a configuration; `None` when the config has
    /// no update.
    pub fn build(cfg: &SimConfig) -> Option<UpdatePlan> {
        let month = cfg.update_month?;
        assert!(month < cfg.months, "update month {} outside simulation", month);
        let begin = month_start(month);
        let span = month_start(month + 1) - begin;
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5f5f_0bad_f00d_0001);
        let mut time_of = vec![None; cfg.n_vpes];
        let mut order: Vec<usize> = (0..cfg.n_vpes).collect();
        crate::util::shuffle(&mut order, &mut rng);
        let affected = ((cfg.n_vpes as f64 * cfg.update_fraction).round() as usize).max(1);
        for &vpe in order.iter().take(affected) {
            // Staggered rollout through the month, avoiding the last day.
            time_of[vpe] = Some(begin + rng.gen_range(0..span.saturating_sub(DAY)));
        }
        Some(UpdatePlan { time_of, month_begin: begin })
    }

    /// True when `vpe` is updated at or before `time`.
    pub fn is_updated(&self, vpe: usize, time: u64) -> bool {
        matches!(self.time_of.get(vpe), Some(Some(t)) if time >= *t)
    }

    /// Number of affected vPEs.
    pub fn affected_count(&self) -> usize {
        self.time_of.iter().filter(|t| t.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimPreset;

    #[test]
    fn fast_preset_has_no_update() {
        let cfg = SimConfig::preset(SimPreset::Fast, 1);
        assert!(UpdatePlan::build(&cfg).is_none());
    }

    #[test]
    fn full_preset_updates_configured_fraction_in_month() {
        let cfg = SimConfig::preset(SimPreset::Full, 1);
        let plan = UpdatePlan::build(&cfg).unwrap();
        let expected = (38.0f64 * cfg.update_fraction).round() as usize;
        assert_eq!(plan.affected_count(), expected);
        let begin = month_start(14);
        let end = month_start(15);
        for t in plan.time_of.iter().flatten() {
            assert!((begin..end).contains(t));
        }
    }

    #[test]
    fn is_updated_respects_rollout_time() {
        let cfg = SimConfig::preset(SimPreset::Full, 2);
        let plan = UpdatePlan::build(&cfg).unwrap();
        let (vpe, t) =
            plan.time_of.iter().enumerate().find_map(|(v, t)| t.map(|t| (v, t))).unwrap();
        assert!(!plan.is_updated(vpe, t - 1));
        assert!(plan.is_updated(vpe, t));
        let unaffected = plan.time_of.iter().position(|t| t.is_none()).unwrap();
        assert!(!plan.is_updated(unaffected, u64::MAX));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SimConfig::preset(SimPreset::Full, 3);
        let a = UpdatePlan::build(&cfg).unwrap();
        let b = UpdatePlan::build(&cfg).unwrap();
        assert_eq!(a.time_of, b.time_of);
    }
}
