//! Simulation configuration and presets.

use nfv_syslog::time::{DAY, MINUTE};

/// Scale presets: `Full` mirrors the paper's 18-month / 38-vPE study
/// (volume scaled ~10x down from "millions of messages per year" to stay
/// laptop-runnable); `Fast` is a small deterministic configuration for
/// unit and integration tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPreset {
    /// 18 months, 38 vPEs.
    Full,
    /// 4 months, 10 vPEs, sparser logs.
    Fast,
}

/// All knobs of the fleet simulation. Every stochastic component derives
/// its own RNG stream from `seed`, so a config reproduces byte-identical
/// traces.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of vPEs in the deployment (the paper studies 38).
    pub n_vpes: usize,
    /// Number of simulated months (the paper spans 18).
    pub months: usize,
    /// Number of latent vPE behaviour groups (the paper finds 4).
    pub n_groups: usize,
    /// Mean inter-arrival of normal log messages, seconds.
    pub mean_log_gap: f64,
    /// Zero-based month at which the software update rolls out
    /// ("between late 2017 and early 2018" = month 14 from Oct '16).
    /// `None` disables the update.
    pub update_month: Option<usize>,
    /// Fraction of vPEs affected by the update.
    pub update_fraction: f64,
    /// Expected non-duplicate, non-maintenance tickets per vPE per month.
    pub ticket_rate: f64,
    /// Number of fleet-wide correlated core-router incidents over the
    /// whole window (the paper observes these are "very rare").
    pub core_incidents: usize,
    /// Number of planned vPE migrations (VM state moved to another
    /// host) over the whole window. A migration emits its own
    /// management chatter and is *expected* work: no ticket is raised,
    /// and the evaluation suppresses warnings inside its window, like
    /// maintenance.
    pub migrations: usize,
    /// Number of chain-failure incidents over the whole window: a root
    /// hardware fault on one member of a behaviour group cascading into
    /// circuit trouble on the rest of the group, in topology (id)
    /// order.
    pub chain_failures: usize,
}

impl SimConfig {
    /// Builds the configuration for a preset.
    pub fn preset(preset: SimPreset, seed: u64) -> SimConfig {
        match preset {
            SimPreset::Full => SimConfig {
                seed,
                n_vpes: 38,
                months: 18,
                n_groups: 4,
                mean_log_gap: 20.0 * MINUTE as f64,
                update_month: Some(14),
                update_fraction: 0.6,
                ticket_rate: 0.9,
                core_incidents: 2,
                migrations: 0,
                chain_failures: 0,
            },
            SimPreset::Fast => SimConfig {
                seed,
                n_vpes: 10,
                months: 4,
                n_groups: 4,
                mean_log_gap: 40.0 * MINUTE as f64,
                update_month: None,
                update_fraction: 0.6,
                ticket_rate: 1.2,
                core_incidents: 0,
                migrations: 0,
                chain_failures: 0,
            },
        }
    }

    /// A mega-fleet configuration for synthetic scale runs: `n_vpes`
    /// instances over `months` months at a sparse per-vPE log rate
    /// (one message per ~4 h), no update, and a low ticket rate. Meant
    /// for [`crate::fleet::MegaFleet`]'s on-demand synthesis — at
    /// 10,000 vPEs the full raw text would not fit in a sane budget.
    pub fn mega(n_vpes: usize, months: usize, seed: u64) -> SimConfig {
        SimConfig {
            seed,
            n_vpes,
            months,
            n_groups: 4,
            mean_log_gap: 4.0 * 60.0 * MINUTE as f64,
            update_month: None,
            update_fraction: 0.0,
            ticket_rate: 0.2,
            core_incidents: 0,
            migrations: 0,
            chain_failures: 0,
        }
    }

    /// End of the simulated window in epoch seconds.
    pub fn end_time(&self) -> u64 {
        nfv_syslog::time::month_start(self.months)
    }
}

/// Predictive-period and clustering constants shared with the detector
/// side; kept here so the simulator and the evaluation agree on units.
pub mod windows {
    use super::*;

    /// Default predictive period (1 day — the paper finds performance
    /// converges there).
    pub const PREDICTIVE_PERIOD: u64 = DAY;
    /// Anomalies this close together form one warning cluster (§5.1).
    pub const CLUSTER_GAP: u64 = MINUTE;
    /// Exclusion margin around tickets when selecting "normal" training
    /// logs (3 days, §4.2).
    pub const TRAIN_EXCLUSION: u64 = 3 * DAY;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_preset_matches_paper_shape() {
        let cfg = SimConfig::preset(SimPreset::Full, 1);
        assert_eq!(cfg.n_vpes, 38);
        assert_eq!(cfg.months, 18);
        assert_eq!(cfg.n_groups, 4);
        assert_eq!(cfg.update_month, Some(14));
    }

    #[test]
    fn fast_preset_is_smaller() {
        let full = SimConfig::preset(SimPreset::Full, 1);
        let fast = SimConfig::preset(SimPreset::Fast, 1);
        assert!(fast.n_vpes < full.n_vpes);
        assert!(fast.months < full.months);
    }

    #[test]
    fn end_time_is_months_after_epoch() {
        let cfg = SimConfig::preset(SimPreset::Fast, 1);
        // 4 months from Oct 1 '16: Oct+Nov+Dec+Jan = 31+30+31+31 days.
        assert_eq!(cfg.end_time(), (31 + 30 + 31 + 31) * DAY);
    }
}
