//! The template catalog: every raw log message the simulated deployment
//! can produce.
//!
//! Messages are modeled on the JunOS-style syslogs of provider-edge
//! routers: control-plane protocol chatter (rpd), interface events
//! (dcd/mib2d), system/VM events (kernel), management-plane daemons, and
//! — for physical PEs only — a rich set of physical-layer environment
//! messages. The catalog also contains the fault signatures injected
//! around tickets (including the two operational findings quoted in §5.3
//! of the paper: the `invalid response from peer chassis-control`
//! predictive signal and the `BGP UNUSABLE ASPATH: bgp reject path`
//! storm), and "v2" variants of common templates that replace their v1
//! forms after the software update.

use crate::tickets::TicketCause;
use nfv_syslog::message::Severity;
use nfv_syslog::template::Layer;
use nfv_syslog::TemplateSet;

/// The full catalog plus the index structures the generators need.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// All templates (vPE + pPE + fault + v2).
    pub set: TemplateSet,
    /// Normal templates every vPE emits.
    pub base: Vec<usize>,
    /// Additional normal templates per behaviour group.
    pub group_extra: Vec<Vec<usize>>,
    /// Fault-signature templates per root cause.
    fault: Vec<(TicketCause, Vec<usize>)>,
    /// Maintenance-window chatter (normal, expected, not anomalous).
    pub maintenance_chatter: Vec<usize>,
    /// Planned-migration chatter (expected hypervisor narration while a
    /// vPE's state moves hosts; chatter, not a fault signature).
    pub migration_chatter: Vec<usize>,
    /// `v1 -> v2` template replacements applied by the software update.
    pub v2_map: Vec<(usize, usize)>,
    /// Brand-new templates that only exist after the update.
    pub post_update_new: Vec<usize>,
    /// Physical-layer templates only physical PEs emit.
    pub ppe_physical: Vec<usize>,
}

impl Catalog {
    /// Fault-signature template ids for a root cause.
    pub fn fault_templates(&self, cause: TicketCause) -> &[usize] {
        self.fault.iter().find(|(c, _)| *c == cause).map(|(_, ids)| ids.as_slice()).unwrap_or(&[])
    }

    /// Builds the deployment catalog. Template ids are stable across
    /// calls (the catalog is fully deterministic).
    pub fn build() -> Catalog {
        let mut set = TemplateSet::new();
        use Layer::*;
        use Severity::*;

        // ---- Base templates: every vPE's steady-state chatter. ----
        let base = vec![
            set.add(
                "rpd",
                Info,
                Protocol,
                "BGP peer {ip} ( {peer} ) received update with {num} prefixes",
            ),
            set.add(
                "rpd",
                Info,
                Protocol,
                "BGP peer {ip} keepalive exchange completed in {num} ms",
            ),
            set.add(
                "rpd",
                Notice,
                Protocol,
                "OSPF neighbor {ip} state changed from Exchange to Full",
            ),
            set.add(
                "rpd",
                Info,
                Network,
                "routing table rescan completed with {num} active routes",
            ),
            set.add("dcd", Info, Link, "interface {iface} statistics poll completed"),
            set.add("mib2d", Info, Management, "SNMP walk from {ip} served {num} objects"),
            set.add("mgd", Info, Management, "commit operation requested by user netops via {ip}"),
            set.add("mgd", Info, Management, "commit complete revision {num} archived"),
            set.add("kernel", Info, System, "virtio queue {num} rebalanced across {num} vcpus"),
            set.add("kernel", Info, System, "memory watermark check passed at {num} percent"),
            set.add("sshd", Info, Management, "accepted publickey session for netops from {ip}"),
            set.add("ntpd", Info, System, "clock offset {num} us within tolerance"),
            set.add("license", Info, Management, "license usage audit recorded {num} flows"),
        ];

        // ---- Group-specific normal templates (4 behaviour groups). ----
        // Group 0: backbone-facing, protocol-heavy vPEs.
        let g0 = vec![
            set.add("rpd", Info, Protocol, "LDP session {ip} label space negotiated {num} labels"),
            set.add("rpd", Info, Protocol, "RSVP path refresh for LSP tunnel {hex} succeeded"),
            set.add("rpd", Notice, Protocol, "ISIS adjacency {ip} holdtime refreshed level {num}"),
            set.add("rpd", Info, Network, "BGP route damping decayed {num} suppressed prefixes"),
        ];
        // Group 1: enterprise edge, interface churn.
        let g1 = vec![
            set.add("dcd", Notice, Link, "interface {iface} added to aggregate bundle ae{num}"),
            set.add("dcd", Info, Link, "interface {iface} autonegotiation resolved to {num} Gbps"),
            set.add("mib2d", Notice, Link, "ifOperStatus change logged for {iface}"),
            set.add("dcd", Info, Link, "VLAN {num} provisioned on {iface} for customer {hex}"),
        ];
        // Group 2: mobility/VM churn, system-heavy.
        let g2 = vec![
            set.add("kernel", Info, System, "vcpu {num} steal time {num} ms over sample window"),
            set.add("kernel", Notice, System, "hugepage pool resized to {num} pages"),
            set.add("vmmd", Info, System, "guest heartbeat acknowledged seq {num}"),
            set.add("vmmd", Info, System, "vnic {hex} flow table compacted {num} entries"),
        ];
        // Group 3: media/QoS services.
        let g3 = vec![
            set.add("cosd", Info, Management, "scheduler map recalculated for {num} queues"),
            set.add("cosd", Notice, Management, "shaping profile {hex} applied on {iface}"),
            set.add("sampled", Info, Network, "flow sample export batch {num} sent to {ip}"),
            set.add("sampled", Info, Network, "sampling rate adjusted to 1 in {num}"),
        ];
        let group_extra = vec![g0, g1, g2, g3];

        // ---- Maintenance-window chatter. ----
        let maintenance_chatter = vec![
            set.add("mgd", Notice, Management, "maintenance window opened by change ticket {hex}"),
            set.add("mgd", Notice, Management, "configuration rollback checkpoint {num} created"),
            set.add("mgd", Notice, Management, "maintenance window closed duration {num} minutes"),
        ];

        // ---- Planned-migration chatter. ----
        let migration_chatter = vec![
            set.add(
                "vmmd",
                Notice,
                System,
                "vm state transfer initiated to host {hex} session {hex}",
            ),
            set.add("vmmd", Info, System, "memory pages precopied {num} MB round {num}"),
            set.add("vmmd", Notice, System, "vnic flows quiesced for cutover {num} entries"),
            set.add(
                "vmmd",
                Notice,
                System,
                "vm resumed on destination host {hex} downtime {num} ms",
            ),
        ];

        // ---- Fault signatures, per root cause. ----
        let fault_circuit = vec![
            set.add("rpd", Error, Protocol, "BGP UNUSABLE ASPATH: bgp reject path from peer {ip}"),
            set.add(
                "rpd",
                Error,
                Protocol,
                "BGP peer {ip} ( {peer} ) session flap hold timer expired",
            ),
            set.add("rpd", Warning, Protocol, "BGP peer {ip} notification sent code {num} cease"),
            set.add("rpd", Error, Network, "next hop {ip} unreachable withdrawing {num} prefixes"),
        ];
        let fault_cable = vec![
            set.add("dcd", Error, Link, "interface {iface} CRC error burst {num} frames dropped"),
            set.add("dcd", Error, Link, "interface {iface} carrier transition down unexpected"),
            set.add(
                "dcd",
                Warning,
                Link,
                "interface {iface} signal degradation ber exceeds threshold",
            ),
        ];
        let fault_hardware = vec![
            set.add(
                "chassisd",
                Error,
                System,
                "invalid response from peer chassis-control on session {hex}",
            ),
            set.add(
                "chassisd",
                Critical,
                System,
                "virtual card slot {num} heartbeat missed {num} times",
            ),
            set.add(
                "chassisd",
                Error,
                System,
                "host hardware fault reported by hypervisor code {num}",
            ),
        ];
        let fault_software = vec![
            set.add("rpd", Critical, System, "task {hex} terminated unexpectedly signal {num}"),
            set.add("kernel", Error, System, "daemon rpd restarted by watchdog attempt {num}"),
            set.add(
                "kernel",
                Warning,
                System,
                "memory leak suspect rss grew {num} MB in {num} min",
            ),
            set.add(
                "mgd",
                Error,
                Management,
                "management daemon error invalid response from peer {hex}",
            ),
        ];
        let fault_dup = vec![
            set.add(
                "alarmd",
                Warning,
                Management,
                "alarm {hex} re-raised previous trouble unresolved",
            ),
            set.add("alarmd", Notice, Management, "alarm correlation matched existing case {hex}"),
        ];
        let fault = vec![
            (TicketCause::Circuit, fault_circuit),
            (TicketCause::Cable, fault_cable),
            (TicketCause::Hardware, fault_hardware),
            (TicketCause::Software, fault_software),
            (TicketCause::Duplicate, fault_dup),
        ];

        // ---- Post-update v2 variants of common templates. ----
        // The update renames daemons/reformats messages, which is what
        // collapses month-over-month cosine similarity (§3.3).
        let mut v2_map = Vec::new();
        let v2 = [
            (
                base[0],
                set.add(
                    "rpd2",
                    Info,
                    Protocol,
                    "bgp peer {ip} update message prefixes {num} policy accepted",
                ),
            ),
            (
                base[1],
                set.add(
                    "rpd2",
                    Info,
                    Protocol,
                    "bgp peer {ip} keepalive rtt {num} ms within profile",
                ),
            ),
            (
                base[2],
                set.add("rpd2", Notice, Protocol, "ospf adjacency {ip} transitioned to Full state"),
            ),
            (
                base[3],
                set.add(
                    "rpd2",
                    Info,
                    Network,
                    "rib rescan finished active {num} hidden {num} routes",
                ),
            ),
            (base[4], set.add("ifmand", Info, Link, "ifl {iface} counters collected cycle {num}")),
            (
                base[5],
                set.add("snmpd2", Info, Management, "snmp agent answered {num} oids for {ip}"),
            ),
            (base[6], set.add("cfgd", Info, Management, "edit session opened by netops from {ip}")),
            (
                base[7],
                set.add("cfgd", Info, Management, "candidate config committed generation {num}"),
            ),
            (
                base[8],
                set.add("kernel", Info, System, "virtio ring {num} remapped numa node {num}"),
            ),
            (
                base[10],
                set.add(
                    "sshd",
                    Info,
                    Management,
                    "session authenticated netops key {hex} from {ip}",
                ),
            ),
            (
                base[12],
                set.add(
                    "licensed",
                    Info,
                    Management,
                    "entitlement audit cycle {num} recorded usage",
                ),
            ),
        ];
        v2_map.extend_from_slice(&v2);

        // The update also reshapes part of each group's specific chatter,
        // so even vPEs that lean on group-specific templates (the Fig 3
        // outliers) see their distributions break.
        let extras_v2 = [
            (
                group_extra[0][0],
                set.add(
                    "rpd2",
                    Info,
                    Protocol,
                    "ldp neighbor {ip} label advertisement {num} bindings",
                ),
            ),
            (
                group_extra[0][1],
                set.add("rpd2", Info, Protocol, "rsvp lsp {hex} refresh interval confirmed"),
            ),
            (
                group_extra[1][0],
                set.add("ifmand", Notice, Link, "bundle ae{num} membership updated with {iface}"),
            ),
            (
                group_extra[1][1],
                set.add("ifmand", Info, Link, "negotiation on {iface} settled at {num} Gbps"),
            ),
            (
                group_extra[2][0],
                set.add("kernel", Info, System, "steal time sample vcpu {num} value {num} ms"),
            ),
            (
                group_extra[2][1],
                set.add("kernel", Notice, System, "hugepages repool to {num} entries complete"),
            ),
            (
                group_extra[3][0],
                set.add("cosd2", Info, Management, "queue schedule rebuild {num} classes done"),
            ),
            (
                group_extra[3][1],
                set.add("cosd2", Notice, Management, "profile {hex} shaping active on {iface}"),
            ),
        ];
        v2_map.extend_from_slice(&extras_v2);

        let post_update_new = vec![
            set.add(
                "telemetryd",
                Info,
                Management,
                "streaming telemetry session {hex} established to {ip}",
            ),
            set.add("telemetryd", Info, Management, "sensor group {hex} export interval {num} ms"),
            set.add("cfgd", Notice, Management, "schema upgrade migration step {num} applied"),
        ];

        // ---- Physical-layer templates only pPEs emit. ----
        let ppe_physical = vec![
            set.add("chassisd", Info, Physical, "fan tray {num} speed adjusted to {num} rpm"),
            set.add("chassisd", Info, Physical, "temperature sensor {num} reads {num} C nominal"),
            set.add("chassisd", Notice, Physical, "power supply {num} input voltage {num} mV"),
            set.add("chassisd", Warning, Physical, "optics {iface} rx power {num} dbm low warning"),
            set.add("chassisd", Info, Physical, "optics {iface} temperature {num} C"),
            set.add("craftd", Info, Physical, "craft panel lamp test completed {num} leds"),
            set.add("chassisd", Info, Physical, "fabric plane {num} link trained at {num} Gbps"),
            set.add("chassisd", Info, Physical, "environment monitor sweep ok {num} sensors"),
        ];

        Catalog {
            set,
            base,
            group_extra,
            fault,
            maintenance_chatter,
            migration_chatter,
            v2_map,
            post_update_new,
            ppe_physical,
        }
    }

    /// All normal (non-fault) templates a vPE in `group` emits before the
    /// software update.
    pub fn normal_for_group(&self, group: usize) -> Vec<usize> {
        let mut ids = self.base.clone();
        ids.extend(&self.group_extra[group % self.group_extra.len()]);
        ids
    }

    /// Applies the software-update remapping to a template id.
    pub fn v2_of(&self, id: usize) -> Option<usize> {
        self.v2_map.iter().find(|(v1, _)| *v1 == id).map(|(_, v2)| *v2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic() {
        let a = Catalog::build();
        let b = Catalog::build();
        assert_eq!(a.set.len(), b.set.len());
        assert_eq!(a.base, b.base);
        assert_eq!(a.v2_map, b.v2_map);
    }

    #[test]
    fn all_groups_share_base_but_differ_in_extras() {
        let cat = Catalog::build();
        assert_eq!(cat.group_extra.len(), 4);
        for g in 0..4 {
            let normal = cat.normal_for_group(g);
            for id in &cat.base {
                assert!(normal.contains(id), "group {} missing base template {}", g, id);
            }
        }
        assert_ne!(cat.normal_for_group(0), cat.normal_for_group(1));
    }

    #[test]
    fn fault_templates_exist_for_each_failure_cause() {
        let cat = Catalog::build();
        for cause in [
            TicketCause::Circuit,
            TicketCause::Cable,
            TicketCause::Hardware,
            TicketCause::Software,
            TicketCause::Duplicate,
        ] {
            assert!(!cat.fault_templates(cause).is_empty(), "{:?}", cause);
        }
        // Maintenance is expected work, not a fault signature.
        assert!(cat.fault_templates(TicketCause::Maintenance).is_empty());
    }

    #[test]
    fn fault_templates_are_disjoint_from_normal_chatter() {
        let cat = Catalog::build();
        let mut normal: Vec<usize> = (0..4).flat_map(|g| cat.normal_for_group(g)).collect();
        normal.extend(&cat.maintenance_chatter);
        normal.extend(&cat.migration_chatter);
        for cause in TicketCause::ALL {
            for id in cat.fault_templates(cause) {
                assert!(!normal.contains(id), "fault template {} leaks into normal set", id);
            }
        }
    }

    #[test]
    fn v2_variants_differ_from_v1() {
        let cat = Catalog::build();
        assert!(cat.v2_map.len() >= 5);
        for &(v1, v2) in &cat.v2_map {
            assert_ne!(v1, v2);
            let in_base = cat.base.contains(&v1);
            let in_extras = cat.group_extra.iter().any(|g| g.contains(&v1));
            assert!(in_base || in_extras, "v1 {} should be a normal template", v1);
        }
        assert_eq!(cat.v2_of(cat.base[0]), Some(cat.v2_map[0].1));
        assert_eq!(cat.v2_of(99_999), None);
    }

    #[test]
    fn ppe_physical_templates_are_on_physical_layer() {
        let cat = Catalog::build();
        for &id in &cat.ppe_physical {
            assert_eq!(cat.set.get(id).layer, Layer::Physical);
        }
        // vPE normal sets contain no physical-layer templates (§2: NFV
        // reduces visibility of lower-layer events).
        for g in 0..4 {
            for id in cat.normal_for_group(g) {
                assert_ne!(cat.set.get(id).layer, Layer::Physical);
            }
        }
    }

    #[test]
    fn renders_are_parseable_sentences() {
        use rand::{rngs::SmallRng, SeedableRng};
        let cat = Catalog::build();
        let mut rng = SmallRng::seed_from_u64(3);
        for t in cat.set.iter() {
            let text = t.render(&mut rng);
            assert!(text.split_whitespace().count() >= 4, "too short: {}", text);
        }
    }
}
