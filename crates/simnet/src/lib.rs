//! NFV deployment simulator.
//!
//! The paper's dataset — 18 months of syslogs and trouble tickets from
//! 38 production vPEs at a tier-1 ISP — is proprietary, so this crate
//! builds the closest synthetic equivalent, calibrated to every
//! statistic the paper publishes (see DESIGN.md for the full list):
//!
//! * [`topology`] — 38 vPEs in 4 latent behaviour groups, attached to
//!   core routers, with a few distribution outliers (Fig 3);
//! * [`catalog`] — the raw-text template catalog, including fault
//!   signatures quoted in the paper and post-update template variants;
//! * [`behavior`] — Markov-structured normal chatter per vPE;
//! * [`tickets`] — the trouble-ticket process (Fig 1, Fig 2);
//! * [`faults`] — per-cause anomalous burst injection (Fig 8);
//! * [`transport`] — transport-level chaos (loss, duplication, bounded
//!   reordering, corruption, clock skew) over rendered log lines;
//! * [`update`] — the late-2017 software update that shifts syslog
//!   distributions (§3.3);
//! * [`scenario`] — stressors beyond the baseline fault universe
//!   (planned vPE migrations, chain failures) for ablation studies;
//! * [`fleet`] — the orchestrator producing raw [`SyslogMessage`]s;
//! * [`ppe`] — a physical-PE comparator for the §2 volume statistic.

pub mod behavior;
pub mod catalog;
pub mod config;
pub mod faults;
pub mod fleet;
pub mod load;
pub mod ppe;
pub mod scenario;
pub mod tickets;
pub mod topology;
pub mod transport;
pub mod update;
mod util;

pub use catalog::Catalog;
pub use config::{SimConfig, SimPreset};
pub use fleet::{FleetTrace, MegaFleet};
pub use load::{BurstSpec, LoadGen, LoadSpec, WindowSpec};
pub use nfv_syslog::SyslogMessage;
pub use scenario::{plan_migrations, Migration};
pub use tickets::{Ticket, TicketCause};
pub use topology::{Topology, Vpe};
pub use transport::{TransportFaults, TransportReport, TransportSim};
pub use update::UpdatePlan;
