//! # nfv-detect — predictive analysis for NFV syslogs
//!
//! The primary contribution of the reproduced paper (Li et al.,
//! "Predictive Analysis in Network Function Virtualization", IMC '18):
//! an unsupervised, LSTM-based anomaly detector over vPE syslogs whose
//! anomalies serve as early-warning signatures for network trouble
//! tickets, combined with
//!
//! * **customization** — vPEs are grouped by syslog-distribution
//!   similarity (k-means, modularity-selected K) and one model is
//!   trained per group on pooled data ([`grouping`]);
//! * **online learning** — models are updated monthly with fresh data
//!   ([`pipeline`]);
//! * **adaptation** — after a software update shifts the syslog
//!   distribution, a transfer-learning step (freeze bottom layers,
//!   fine-tune the top on ~1 week of data) restores the model quickly
//!   ([`lstm_detector`]).
//!
//! The crate also implements the paper's baselines (TF-IDF autoencoder,
//! One-Class SVM) plus a PCA detector from related work
//! ([`baselines`]), the raw-log codec ([`codec`]), anomaly-to-ticket
//! mapping ([`mapping`]) and the full monthly evaluation protocol
//! ([`pipeline`], [`eval`]).
//!
//! ## Quick example
//!
//! ```
//! use nfv_detect::pipeline::{run_pipeline, PipelineConfig, DetectorKind};
//! use nfv_detect::eval;
//! use nfv_simnet::{FleetTrace, SimConfig, SimPreset};
//!
//! // Simulate a small deployment and run the LSTM pipeline on it.
//! let mut sim = SimConfig::preset(SimPreset::Fast, 1);
//! sim.n_vpes = 4;
//! sim.months = 2;
//! let trace = FleetTrace::simulate(sim);
//!
//! let mut cfg = PipelineConfig::default();
//! cfg.detector = DetectorKind::Lstm;
//! cfg.lstm.epochs = 1;
//! cfg.lstm.max_train_windows = 500;
//! let run = run_pipeline(&trace, &cfg).unwrap();
//! let curve = eval::sweep_prc(&run, &cfg.mapping, 8);
//! assert!(!curve.points.is_empty());
//! ```

pub mod baselines;
pub mod bundle;
pub mod codec;
pub mod detector;
pub mod eval;
pub mod features;
pub mod group_store;
pub mod grouping;
pub mod gru_detector;
pub mod hmm_detector;
pub mod lstm_detector;
pub mod mapping;
pub mod online;
pub mod par;
pub mod pipeline;
pub mod pipeline_ckpt;
pub mod report;
pub mod serve;
pub mod spsc;
pub mod state;
pub mod supervisor;
pub mod triage;

pub use baselines::{AutoencoderDetector, OcsvmDetector, PcaDetector};
pub use bundle::{ModelBundle, SharedModel};
pub use codec::LogCodec;
pub use detector::{AnomalyDetector, ScoredEvent};
pub use group_store::{GroupModelStore, VpeCursor};
pub use grouping::Grouping;
pub use gru_detector::{GruDetector, GruDetectorConfig};
pub use hmm_detector::{HmmDetector, HmmDetectorConfig};
pub use lstm_detector::{LstmDetector, LstmDetectorConfig};
pub use mapping::{MappingConfig, MappingResult};
pub use online::{OnlineMonitor, Warning};
pub use pipeline::{
    run_pipeline, CheckpointConfig, CrashPoint, DetectorKind, PipelineConfig, PipelineError,
    PipelineEvent, PipelineRun,
};
pub use serve::{
    FeedServeStats, LatencyHistogram, ServeConfig, ServeCore, ServeError, ServeEvent, ServeState,
    ServeStats,
};
pub use supervisor::{
    FeedHealth, FeedObserver, FeedState, FleetEvent, FleetMonitor, FleetMonitorConfig,
};
