//! JSON (de)serialization helpers for detector and pipeline state.
//!
//! The crash-safe pipeline checkpoint (see [`crate::pipeline_ckpt`])
//! persists every detector's learned parameters plus its RNG position so
//! a resumed run continues bit-for-bit where the crashed one stopped.
//! This module holds the small shared vocabulary those serializers use:
//! tagged state objects, RNG state arrays, and float vectors.
//!
//! Finite floats are stored as plain JSON numbers — the workspace's
//! writer emits shortest round-trip representations, so the decoded
//! value is bit-identical (the [`nfv_nn::checkpoint::MatrixDump`]
//! precedent). Floats that may be non-finite (trigger thresholds start
//! at `+inf` for empty calibrations) must instead go through
//! [`f32_bits_value`]/[`f32_from_bits`], which store the raw IEEE-754
//! bit pattern as a JSON integer.

use nfv_nn::checkpoint::CheckpointError;
use rand::rngs::SmallRng;
use serde_json::Value;

/// Field lookup that converts absence into a typed error.
pub fn require<'a>(v: &'a Value, field: &str) -> Result<&'a Value, CheckpointError> {
    v.get(field).ok_or_else(|| CheckpointError::MissingField(field.to_string()))
}

/// Verifies a detector-state object's `"detector"` tag.
pub fn check_tag(v: &Value, expected: &str) -> Result<(), CheckpointError> {
    let found = require(v, "detector")?
        .as_str()
        .ok_or_else(|| CheckpointError::MissingField("detector".into()))?;
    if found != expected {
        return Err(CheckpointError::Invalid(format!(
            "detector state tag mismatch: expected {:?}, found {:?}",
            expected, found
        )));
    }
    Ok(())
}

/// Serializes an RNG's position as a 4-word array.
pub fn rng_value(rng: &SmallRng) -> Value {
    Value::from(rng.state().to_vec())
}

/// Restores an RNG from [`rng_value`] output.
pub fn rng_from_value(v: &Value) -> Result<SmallRng, CheckpointError> {
    let words = u64s_from_value(v, "rng")?;
    let s: [u64; 4] = words
        .try_into()
        .map_err(|_| CheckpointError::Invalid("rng state must have 4 words".into()))?;
    Ok(SmallRng::from_state(s))
}

/// Decodes a u64 field of an object.
pub fn u64_field(v: &Value, field: &str) -> Result<u64, CheckpointError> {
    require(v, field)?.as_u64().ok_or_else(|| CheckpointError::MissingField(field.to_string()))
}

/// Decodes a usize field of an object.
pub fn usize_field(v: &Value, field: &str) -> Result<usize, CheckpointError> {
    u64_field(v, field).map(|x| x as usize)
}

/// Decodes a u32 field of an object.
pub fn u32_field(v: &Value, field: &str) -> Result<u32, CheckpointError> {
    u64_field(v, field)?
        .try_into()
        .map_err(|_| CheckpointError::Invalid(format!("{}: out of u32 range", field)))
}

/// Decodes a bool field of an object.
pub fn bool_field(v: &Value, field: &str) -> Result<bool, CheckpointError> {
    require(v, field)?.as_bool().ok_or_else(|| CheckpointError::MissingField(field.to_string()))
}

/// Decodes a string field of an object.
pub fn str_field<'a>(v: &'a Value, field: &str) -> Result<&'a str, CheckpointError> {
    require(v, field)?.as_str().ok_or_else(|| CheckpointError::MissingField(field.to_string()))
}

/// Decodes an array field of an object.
pub fn array_field<'a>(v: &'a Value, field: &str) -> Result<&'a [Value], CheckpointError> {
    require(v, field)?
        .as_array()
        .map(|a| a.as_slice())
        .ok_or_else(|| CheckpointError::MissingField(field.to_string()))
}

/// Decodes an array of u64.
pub fn u64s_from_value(v: &Value, what: &str) -> Result<Vec<u64>, CheckpointError> {
    v.as_array()
        .ok_or_else(|| CheckpointError::MissingField(what.to_string()))?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| CheckpointError::MissingField(what.to_string())))
        .collect()
}

/// Decodes an array of finite f32.
pub fn f32s_from_value(v: &Value, what: &str) -> Result<Vec<f32>, CheckpointError> {
    v.as_array()
        .ok_or_else(|| CheckpointError::MissingField(what.to_string()))?
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|f| f as f32)
                .ok_or_else(|| CheckpointError::MissingField(what.to_string()))
        })
        .collect()
}

/// Encodes a list of f32 rows as a nested array.
pub fn f32_rows_value(rows: &[Vec<f32>]) -> Value {
    Value::Array(rows.iter().map(|r| Value::from(r.as_slice())).collect())
}

/// Decodes a nested array of finite f32.
pub fn f32_rows_from_value(v: &Value, what: &str) -> Result<Vec<Vec<f32>>, CheckpointError> {
    v.as_array()
        .ok_or_else(|| CheckpointError::MissingField(what.to_string()))?
        .iter()
        .map(|row| f32s_from_value(row, what))
        .collect()
}

/// Decodes an array of finite f64.
pub fn f64s_from_value(v: &Value, what: &str) -> Result<Vec<f64>, CheckpointError> {
    v.as_array()
        .ok_or_else(|| CheckpointError::MissingField(what.to_string()))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| CheckpointError::MissingField(what.to_string())))
        .collect()
}

/// Encodes a list of f64 rows as a nested array.
pub fn f64_rows_value(rows: &[Vec<f64>]) -> Value {
    Value::Array(rows.iter().map(|r| Value::from(r.as_slice())).collect())
}

/// Decodes a nested array of finite f64.
pub fn f64_rows_from_value(v: &Value, what: &str) -> Result<Vec<Vec<f64>>, CheckpointError> {
    v.as_array()
        .ok_or_else(|| CheckpointError::MissingField(what.to_string()))?
        .iter()
        .map(|row| f64s_from_value(row, what))
        .collect()
}

/// Encodes a possibly non-finite f32 as its IEEE-754 bit pattern (JSON
/// cannot represent `inf`/`nan` as numbers).
pub fn f32_bits_value(x: f32) -> Value {
    Value::from(x.to_bits())
}

/// Decodes [`f32_bits_value`] output.
pub fn f32_from_bits(v: &Value, what: &str) -> Result<f32, CheckpointError> {
    let bits = v.as_u64().ok_or_else(|| CheckpointError::MissingField(what.to_string()))?;
    u32::try_from(bits)
        .map(f32::from_bits)
        .map_err(|_| CheckpointError::Invalid(format!("{}: bit pattern out of u32 range", what)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use serde_json::json;

    #[test]
    fn rng_roundtrip_continues_the_stream() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            let _: u64 = rng.gen();
        }
        let saved = rng_value(&rng);
        // Force a text roundtrip: the checkpoint path goes through JSON.
        let reparsed = serde_json::from_str(&saved.to_string()).unwrap();
        let mut restored = rng_from_value(&reparsed).unwrap();
        for _ in 0..100 {
            assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn float_vectors_roundtrip_bitwise_through_text() {
        let xs = vec![0.1f32, -3.25, 1e-30, 7.0, f32::MIN_POSITIVE];
        let text = Value::from(xs.as_slice()).to_string();
        let back = f32s_from_value(&serde_json::from_str(&text).unwrap(), "xs").unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let ys = vec![vec![0.3f64, -1e-200], vec![2.0, 5e300]];
        let text = f64_rows_value(&ys).to_string();
        let back = f64_rows_from_value(&serde_json::from_str(&text).unwrap(), "ys").unwrap();
        assert_eq!(ys, back);
    }

    #[test]
    fn bit_pattern_encoding_survives_infinities() {
        for x in [f32::INFINITY, f32::NEG_INFINITY, 0.25f32, -0.0] {
            let v: Value = serde_json::from_str(&f32_bits_value(x).to_string()).unwrap();
            assert_eq!(f32_from_bits(&v, "x").unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn tag_mismatch_is_a_typed_error() {
        let v = json!({"detector": "lstm"});
        assert!(check_tag(&v, "lstm").is_ok());
        match check_tag(&v, "pca") {
            Err(CheckpointError::Invalid(msg)) => assert!(msg.contains("tag mismatch")),
            other => panic!("expected Invalid, got {:?}", other),
        }
        match check_tag(&json!({}), "pca") {
            Err(CheckpointError::MissingField(_)) => {}
            other => panic!("expected MissingField, got {:?}", other),
        }
    }
}
