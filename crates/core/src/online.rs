//! Streaming (online) detection: the paper envisions "a runtime
//! predictive analysis system running in parallel with existing
//! reactive monitoring" (§1). This module packages a trained bundle
//! into a monitor that consumes one raw syslog message at a time and
//! emits warning signatures incrementally, applying the same
//! >=`min_cluster`-anomalies-within-`cluster_gap` rule as the offline
//! > evaluation.
//!
//! The monitor keeps only O(window) state per feed, so one process can
//! track a whole fleet.

use crate::codec::LogCodec;
use crate::detector::AnomalyDetector;
use crate::lstm_detector::LstmDetector;
use crate::mapping::MappingConfig;
use nfv_syslog::{LogRecord, LogStream, SyslogMessage};
use std::collections::VecDeque;

/// A warning emitted by the monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    /// Time of the first anomaly in the cluster.
    pub start: u64,
    /// Number of anomalous messages in the cluster so far.
    pub anomalies: usize,
    /// Highest anomaly score inside the cluster.
    pub peak_score: f32,
    /// The raw text of the highest-scoring message (the candidate
    /// signature for the operator).
    pub peak_text: String,
}

/// Incremental anomaly monitor for one syslog feed.
pub struct OnlineMonitor {
    codec: LogCodec,
    detector: LstmDetector,
    threshold: f32,
    mapping: MappingConfig,
    /// Trailing records, `window + 1` long at most.
    recent: VecDeque<LogRecord>,
    /// Open anomaly cluster, if any: (start, last, count, peak score,
    /// peak text).
    open: Option<(u64, u64, usize, f32, String)>,
    /// Whether the open cluster was already reported.
    reported: bool,
    /// Largest timestamp observed so far (for monotonicizing slightly
    /// out-of-order arrivals).
    last_time: u64,
    messages_seen: u64,
    anomalies_seen: u64,
}

impl OnlineMonitor {
    /// Builds a monitor from the pieces of a trained bundle.
    pub fn new(
        codec: LogCodec,
        detector: LstmDetector,
        threshold: f32,
        mapping: MappingConfig,
    ) -> OnlineMonitor {
        OnlineMonitor {
            codec,
            detector,
            threshold,
            mapping,
            recent: VecDeque::new(),
            open: None,
            reported: false,
            last_time: 0,
            messages_seen: 0,
            anomalies_seen: 0,
        }
    }

    /// Number of messages consumed.
    pub fn messages_seen(&self) -> u64 {
        self.messages_seen
    }

    /// Number of above-threshold anomalies seen.
    pub fn anomalies_seen(&self) -> u64 {
        self.anomalies_seen
    }

    /// Feeds one message; returns a [`Warning`] when an anomaly cluster
    /// crosses the reporting rule with this message.
    ///
    /// A cluster is reported exactly once — at the moment its size first
    /// reaches `min_cluster` — and subsequent members extend the stats
    /// silently.
    pub fn observe(&mut self, message: &SyslogMessage) -> Option<Warning> {
        self.messages_seen += 1;
        // Monotonicize slightly out-of-order arrivals (retransmits,
        // multi-process interleaving are normal for syslog): a late
        // message is treated as happening "now", so it is still scored
        // and can still extend a cluster.
        let time = message.timestamp.max(self.last_time);
        self.last_time = time;
        let record = LogRecord { time, template: self.codec.encode_text(&message.text) };
        self.recent.push_back(record);
        // Keep window + 2 records: the scored window then starts at
        // stream index 1, so its first element has a real predecessor
        // and gets a true gap feature (matching how the offline
        // calibration scored).
        let window = self.detector.window();
        while self.recent.len() > window + 2 {
            self.recent.pop_front();
        }
        if self.recent.len() < window + 2 {
            return None;
        }

        // Score the newest record given the preceding window.
        let stream = LogStream::from_records(self.recent.iter().copied().collect());
        let events = self.detector.score(&stream, record.time, record.time + 1);
        let score = events.last().map(|e| e.score)?;
        if score < self.threshold {
            return None;
        }
        self.anomalies_seen += 1;

        // Extend or open the cluster.
        match &mut self.open {
            Some((_, last, count, peak, peak_text))
                if record.time.saturating_sub(*last) <= self.mapping.cluster_gap =>
            {
                *last = record.time;
                *count += 1;
                if score > *peak {
                    *peak = score;
                    *peak_text = message.text.clone();
                }
            }
            _ => {
                self.open = Some((record.time, record.time, 1, score, message.text.clone()));
                self.reported = false;
            }
        }

        let (start, _, count, peak, peak_text) = self.open.as_ref().expect("just set");
        if *count >= self.mapping.min_cluster && !self.reported {
            self.reported = true;
            return Some(Warning {
                start: *start,
                anomalies: *count,
                peak_score: *peak,
                peak_text: peak_text.clone(),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm_detector::LstmDetectorConfig;
    use nfv_syslog::message::Severity;

    fn msg(time: u64, text: &str) -> SyslogMessage {
        SyslogMessage {
            timestamp: time,
            host: "vpe00".into(),
            process: "rpd".into(),
            severity: Severity::Info,
            text: text.into(),
        }
    }

    /// Cyclic normal traffic the LSTM can learn, plus a burst generator.
    fn normal_messages(n: usize, start: u64, gap: u64) -> Vec<SyslogMessage> {
        (0..n)
            .map(|i| {
                let phase = i % 4;
                msg(
                    start + i as u64 * gap,
                    &format!("heartbeat stage{} counter {} status ok", phase, i),
                )
            })
            .collect()
    }

    fn trained_monitor() -> OnlineMonitor {
        let train = normal_messages(1200, 0, 60);
        let codec = LogCodec::train(&train, 4);
        let mut det = LstmDetector::new(LstmDetectorConfig {
            vocab: codec.vocab_size(),
            window: 4,
            embed_dim: 6,
            hidden: 10,
            epochs: 3,
            max_train_windows: 2000,
            ..Default::default()
        });
        let stream = codec.encode_stream(&train);
        det.fit(&[&stream]);
        // Threshold: above all training scores.
        let max_score =
            det.score(&stream, 0, u64::MAX).iter().map(|e| e.score).fold(0.0f32, f32::max);
        OnlineMonitor::new(codec, det, max_score * 1.05, MappingConfig::default())
    }

    #[test]
    fn quiet_on_normal_traffic() {
        let mut monitor = trained_monitor();
        for m in normal_messages(300, 1_000_000, 60) {
            assert_eq!(monitor.observe(&m), None, "false warning at {}", m.timestamp);
        }
        assert_eq!(monitor.messages_seen(), 300);
    }

    #[test]
    fn burst_raises_exactly_one_warning() {
        let mut monitor = trained_monitor();
        for m in normal_messages(100, 0, 60) {
            monitor.observe(&m);
        }
        // A burst of 4 never-seen messages within seconds.
        let base = 100 * 60;
        let mut warnings = Vec::new();
        // Deliver the burst slightly out of order: the monitor must still
        // score every message (monotonicized) and raise one warning.
        for j in [0u64, 2, 1, 3] {
            let m = msg(base + j * 10, "chassis alarm unknown fault storm detected now");
            if let Some(w) = monitor.observe(&m) {
                warnings.push(w);
            }
        }
        assert_eq!(warnings.len(), 1, "cluster must be reported exactly once");
        let w = &warnings[0];
        assert_eq!(w.start, base);
        assert_eq!(w.anomalies, 2, "reported at the moment the cluster forms");
        assert!(w.peak_text.contains("chassis alarm"));
        assert!(monitor.anomalies_seen() >= 2);
    }

    #[test]
    fn isolated_anomaly_is_not_reported() {
        let mut monitor = trained_monitor();
        for m in normal_messages(100, 0, 60) {
            monitor.observe(&m);
        }
        // One odd message, then normal traffic again. The follow-up
        // messages arrive 2 minutes apart: even if the odd template in
        // their context windows inflates a score or two, nothing can
        // chain into a <1-minute cluster.
        let odd = msg(100 * 60, "completely unexpected solitary event occurred here");
        assert_eq!(monitor.observe(&odd), None);
        for m in normal_messages(50, 100 * 60 + 600, 120) {
            assert_eq!(monitor.observe(&m), None);
        }
    }

    #[test]
    fn two_separate_bursts_give_two_warnings() {
        let mut monitor = trained_monitor();
        for m in normal_messages(100, 0, 60) {
            monitor.observe(&m);
        }
        let mut count = 0;
        for (burst, base) in [(0u64, 6000u64), (1, 12_000)] {
            let _ = burst;
            for j in 0..3 {
                let m = msg(base + j * 10, "chassis alarm unknown fault storm detected now");
                if monitor.observe(&m).is_some() {
                    count += 1;
                }
            }
            // Re-establish normal context between bursts.
            for m in normal_messages(30, base + 300, 60) {
                monitor.observe(&m);
            }
        }
        assert_eq!(count, 2);
    }
}
