//! Streaming (online) detection: the paper envisions "a runtime
//! predictive analysis system running in parallel with existing
//! reactive monitoring" (§1). This module packages a trained bundle
//! into a monitor that consumes one raw syslog message at a time and
//! emits warning signatures incrementally, applying the same
//! >=`min_cluster`-anomalies-within-`cluster_gap` rule as the offline
//! > evaluation.
//!
//! The monitor keeps only O(window) state per feed, and the heavy
//! immutable pieces — codec table and LSTM weights — live behind
//! [`Arc`]s so a fleet of feeds shares one model allocation (see
//! [`crate::bundle::SharedModel`]). One process can track a whole
//! fleet.

use crate::codec::LogCodec;
use crate::lstm_detector::LstmDetector;
use crate::mapping::MappingConfig;
use crate::state::{
    array_field, bool_field, f32_from_bits, require, str_field, u64_field, usize_field,
};
use nfv_nn::checkpoint::CheckpointError;
use nfv_syslog::stream::{gap_feature, WindowSet};
use nfv_syslog::{LogRecord, SyslogMessage};
use serde_json::{json, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// A warning emitted by the monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    /// Time of the first anomaly in the cluster.
    pub start: u64,
    /// Number of anomalous messages in the cluster so far.
    pub anomalies: usize,
    /// Highest anomaly score inside the cluster.
    pub peak_score: f32,
    /// The raw text of the highest-scoring message (the candidate
    /// signature for the operator).
    pub peak_text: String,
}

/// Incremental anomaly monitor for one syslog feed.
///
/// The codec and detector are shared (`Arc`), so cloning-cost per feed
/// is O(window) mutable state, not O(model). Build many monitors over
/// one model via [`crate::bundle::SharedModel`] or
/// [`OnlineMonitor::new_shared`].
pub struct OnlineMonitor {
    codec: Arc<LogCodec>,
    detector: Arc<LstmDetector>,
    threshold: f32,
    mapping: MappingConfig,
    /// Trailing context records, `window + 1` long at most (every scored
    /// window then starts at least one record into the stream, so its
    /// first element has a real predecessor and gets a true gap feature,
    /// matching how the offline calibration scored).
    recent: VecDeque<LogRecord>,
    /// Open anomaly cluster, if any: (start, last, count, peak score,
    /// peak text).
    open: Option<(u64, u64, usize, f32, String)>,
    /// Whether the open cluster was already reported.
    reported: bool,
    /// Largest timestamp observed so far (for monotonicizing slightly
    /// out-of-order arrivals).
    last_time: u64,
    /// Score every `stride`-th eligible window (1 = every window). The
    /// serving runtime widens this in degraded mode to shed LSTM work
    /// while every message still updates context and counters.
    stride: usize,
    /// Eligible-window counter driving the stride phase.
    stride_phase: u64,
    messages_seen: u64,
    anomalies_seen: u64,
    windows_scored: u64,
    windows_stride_skipped: u64,
}

impl OnlineMonitor {
    /// Builds a monitor from the pieces of a trained bundle, taking
    /// sole ownership of the model. For a fleet of feeds over one
    /// model, prefer [`OnlineMonitor::new_shared`] (or
    /// [`crate::bundle::SharedModel::monitor`]) so the weights are
    /// allocated once, not per feed.
    pub fn new(
        codec: LogCodec,
        detector: LstmDetector,
        threshold: f32,
        mapping: MappingConfig,
    ) -> OnlineMonitor {
        OnlineMonitor::new_shared(Arc::new(codec), Arc::new(detector), threshold, mapping)
    }

    /// Builds a monitor over an already-shared codec and detector.
    /// Behaviourally identical to [`OnlineMonitor::new`]; only the
    /// ownership of the immutable model differs.
    pub fn new_shared(
        codec: Arc<LogCodec>,
        detector: Arc<LstmDetector>,
        threshold: f32,
        mapping: MappingConfig,
    ) -> OnlineMonitor {
        OnlineMonitor {
            codec,
            detector,
            threshold,
            mapping,
            recent: VecDeque::new(),
            open: None,
            reported: false,
            last_time: 0,
            stride: 1,
            stride_phase: 0,
            messages_seen: 0,
            anomalies_seen: 0,
            windows_scored: 0,
            windows_stride_skipped: 0,
        }
    }

    /// Number of messages consumed.
    pub fn messages_seen(&self) -> u64 {
        self.messages_seen
    }

    /// Number of above-threshold anomalies seen.
    pub fn anomalies_seen(&self) -> u64 {
        self.anomalies_seen
    }

    /// Windows actually run through the LSTM.
    pub fn windows_scored(&self) -> u64 {
        self.windows_scored
    }

    /// Windows skipped by a stride > 1 (degraded-mode shedding).
    pub fn windows_stride_skipped(&self) -> u64 {
        self.windows_stride_skipped
    }

    /// Current scoring stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Sets the scoring stride: every `stride`-th eligible window is
    /// scored, the rest only update context. `stride` is clamped to at
    /// least 1. This is the serving runtime's graceful-degradation knob:
    /// at stride *s* the LSTM cost per line drops by ~*s*× while parse,
    /// dedup, and cluster bookkeeping stay exact. Skipped windows cannot
    /// open or extend warning clusters, so sensitivity degrades
    /// proportionally — which is the documented trade, not an accident.
    pub fn set_stride(&mut self, stride: usize) {
        self.stride = stride.max(1);
    }

    /// The shared detector this monitor scores with.
    pub fn detector(&self) -> &Arc<LstmDetector> {
        &self.detector
    }

    /// Feeds one message; returns a [`Warning`] when an anomaly cluster
    /// crosses the reporting rule with this message.
    ///
    /// A cluster is reported exactly once — at the moment its size first
    /// reaches `min_cluster` — and subsequent members extend the stats
    /// silently.
    pub fn observe(&mut self, message: &SyslogMessage) -> Option<Warning> {
        let mut warnings = Vec::new();
        self.observe_batch(std::slice::from_ref(message), &mut warnings);
        warnings.pop()
    }

    /// Feeds a batch of messages, scoring their windows in one chunked
    /// LSTM pass, and appends any warnings raised.
    ///
    /// Behaviourally identical to calling [`OnlineMonitor::observe`] per
    /// message — same monotonicization, same cluster rule, same warm-up
    /// — but the forward passes for the whole batch run as one batched
    /// GEMM stream instead of one tiny matmul chain per line, which is
    /// what makes the serving runtime's throughput target reachable.
    pub fn observe_batch(&mut self, messages: &[SyslogMessage], warnings: &mut Vec<Warning>) {
        if messages.is_empty() {
            return;
        }
        self.messages_seen += messages.len() as u64;
        let window = self.detector.window();

        // Monotonicize and encode the batch. A late message is treated
        // as happening "now" (retransmits and multi-process interleaving
        // are normal for syslog), so it is still scored and can still
        // extend a cluster.
        let mut batch: Vec<LogRecord> = Vec::with_capacity(messages.len());
        for m in messages {
            let time = m.timestamp.max(self.last_time);
            self.last_time = time;
            batch.push(LogRecord { time, template: self.codec.encode_text(&m.text) });
        }

        // Select the batch records to score: each needs `window + 1`
        // predecessors (context + batch prefix), thinned by the stride.
        let ctx = self.recent.len();
        let recent = &self.recent;
        let at = |i: usize| -> LogRecord {
            if i < ctx {
                recent[i]
            } else {
                batch[i - ctx]
            }
        };
        let stride = self.stride as u64;
        let mut phase = self.stride_phase;
        let mut stride_skipped = 0u64;
        let mut ws = WindowSet::default();
        // Batch index of each scored window's target, for peak_text.
        let mut scored_pos: Vec<usize> = Vec::new();
        for (pos, record) in batch.iter().enumerate() {
            let g = ctx + pos; // combined index of the target record
            if g < window + 1 {
                continue; // warm-up: not enough context yet
            }
            let turn = phase.is_multiple_of(stride);
            phase += 1;
            if !turn {
                stride_skipped += 1;
                continue;
            }
            let mut ids = Vec::with_capacity(window);
            let mut gaps = Vec::with_capacity(window);
            for j in 0..window {
                let i = g - window + j;
                let r = at(i);
                ids.push(r.template);
                gaps.push(gap_feature(r.time - at(i - 1).time));
            }
            ws.ids.push(ids);
            ws.gaps.push(gaps);
            ws.targets.push(record.template);
            ws.times.push(record.time);
            scored_pos.push(pos);
        }
        self.stride_phase = phase;
        self.windows_stride_skipped += stride_skipped;

        if !ws.is_empty() {
            self.windows_scored += ws.len() as u64;
            let events = self.detector.score_events(&ws);
            for (e, &pos) in events.iter().zip(&scored_pos) {
                if e.score < self.threshold {
                    continue;
                }
                self.anomalies_seen += 1;
                if let Some(w) = self.note_anomaly(e.time, e.score, &messages[pos].text) {
                    warnings.push(w);
                }
            }
        }

        // Retain the last `window + 1` records as context for the next
        // batch.
        for r in batch {
            self.recent.push_back(r);
        }
        while self.recent.len() > window + 1 {
            self.recent.pop_front();
        }
    }

    /// Serializes the monitor's mutable streaming state: trailing
    /// context, open cluster, stride position, and counters. The
    /// immutable model (codec, detector, threshold, mapping) is *not*
    /// included — a warm restart rebuilds the monitor from the same
    /// bundle and then calls [`OnlineMonitor::load_state`], after which
    /// scoring continues bit-identically.
    pub fn state_value(&self) -> Value {
        json!({
            "recent": self
                .recent
                .iter()
                .map(|r| json!([r.time, r.template]))
                .collect::<Vec<Value>>(),
            "open": match &self.open {
                Some((start, last, count, peak, peak_text)) => json!({
                    "start": start,
                    "last": last,
                    "count": count,
                    "peak_bits": peak.to_bits(),
                    "peak_text": peak_text,
                }),
                None => Value::Null,
            },
            "reported": self.reported,
            "last_time": self.last_time,
            "stride": self.stride,
            "stride_phase": self.stride_phase,
            "messages_seen": self.messages_seen,
            "anomalies_seen": self.anomalies_seen,
            "windows_scored": self.windows_scored,
            "windows_stride_skipped": self.windows_stride_skipped,
        })
    }

    /// Restores [`OnlineMonitor::state_value`] output into a monitor
    /// rebuilt over the same model.
    pub fn load_state(&mut self, v: &Value) -> Result<(), CheckpointError> {
        let mut recent = VecDeque::new();
        for r in array_field(v, "recent")? {
            let pair = r
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| CheckpointError::Invalid("recent entry is not a pair".into()))?;
            let num = |x: &Value| {
                x.as_u64().ok_or_else(|| CheckpointError::MissingField("recent".into()))
            };
            recent.push_back(LogRecord { time: num(&pair[0])?, template: num(&pair[1])? as usize });
        }
        let open = require(v, "open")?;
        let open = if open.is_null() {
            None
        } else {
            Some((
                u64_field(open, "start")?,
                u64_field(open, "last")?,
                usize_field(open, "count")?,
                f32_from_bits(require(open, "peak_bits")?, "peak_bits")?,
                str_field(open, "peak_text")?.to_string(),
            ))
        };
        self.recent = recent;
        self.open = open;
        self.reported = bool_field(v, "reported")?;
        self.last_time = u64_field(v, "last_time")?;
        self.stride = usize_field(v, "stride")?.max(1);
        self.stride_phase = u64_field(v, "stride_phase")?;
        self.messages_seen = u64_field(v, "messages_seen")?;
        self.anomalies_seen = u64_field(v, "anomalies_seen")?;
        self.windows_scored = u64_field(v, "windows_scored")?;
        self.windows_stride_skipped = u64_field(v, "windows_stride_skipped")?;
        Ok(())
    }

    /// Extends or opens the anomaly cluster with one above-threshold
    /// event, returning a [`Warning`] the moment the cluster first
    /// reaches `min_cluster`.
    fn note_anomaly(&mut self, time: u64, score: f32, text: &str) -> Option<Warning> {
        match &mut self.open {
            Some((_, last, count, peak, peak_text))
                if time.saturating_sub(*last) <= self.mapping.cluster_gap =>
            {
                *last = time;
                *count += 1;
                if score > *peak {
                    *peak = score;
                    *peak_text = text.to_string();
                }
            }
            _ => {
                self.open = Some((time, time, 1, score, text.to_string()));
                self.reported = false;
            }
        }
        let (start, _, count, peak, peak_text) = self.open.as_ref().expect("just set");
        if *count >= self.mapping.min_cluster && !self.reported {
            self.reported = true;
            return Some(Warning {
                start: *start,
                anomalies: *count,
                peak_score: *peak,
                peak_text: peak_text.clone(),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::AnomalyDetector;
    use crate::lstm_detector::LstmDetectorConfig;
    use nfv_syslog::message::Severity;

    fn msg(time: u64, text: &str) -> SyslogMessage {
        SyslogMessage {
            timestamp: time,
            host: "vpe00".into(),
            process: "rpd".into(),
            severity: Severity::Info,
            text: text.into(),
        }
    }

    /// Cyclic normal traffic the LSTM can learn, plus a burst generator.
    fn normal_messages(n: usize, start: u64, gap: u64) -> Vec<SyslogMessage> {
        (0..n)
            .map(|i| {
                let phase = i % 4;
                msg(
                    start + i as u64 * gap,
                    &format!("heartbeat stage{} counter {} status ok", phase, i),
                )
            })
            .collect()
    }

    fn trained_monitor() -> OnlineMonitor {
        let train = normal_messages(1200, 0, 60);
        let codec = LogCodec::train(&train, 4);
        let mut det = LstmDetector::new(LstmDetectorConfig {
            vocab: codec.vocab_size(),
            window: 4,
            embed_dim: 6,
            hidden: 10,
            epochs: 3,
            max_train_windows: 2000,
            ..Default::default()
        });
        let stream = codec.encode_stream(&train);
        det.fit(&[&stream]);
        // Threshold: above all training scores.
        let max_score =
            det.score(&stream, 0, u64::MAX).iter().map(|e| e.score).fold(0.0f32, f32::max);
        OnlineMonitor::new(codec, det, max_score * 1.05, MappingConfig::default())
    }

    #[test]
    fn quiet_on_normal_traffic() {
        let mut monitor = trained_monitor();
        for m in normal_messages(300, 1_000_000, 60) {
            assert_eq!(monitor.observe(&m), None, "false warning at {}", m.timestamp);
        }
        assert_eq!(monitor.messages_seen(), 300);
    }

    #[test]
    fn burst_raises_exactly_one_warning() {
        let mut monitor = trained_monitor();
        for m in normal_messages(100, 0, 60) {
            monitor.observe(&m);
        }
        // A burst of 4 never-seen messages within seconds.
        let base = 100 * 60;
        let mut warnings = Vec::new();
        // Deliver the burst slightly out of order: the monitor must still
        // score every message (monotonicized) and raise one warning.
        for j in [0u64, 2, 1, 3] {
            let m = msg(base + j * 10, "chassis alarm unknown fault storm detected now");
            if let Some(w) = monitor.observe(&m) {
                warnings.push(w);
            }
        }
        assert_eq!(warnings.len(), 1, "cluster must be reported exactly once");
        let w = &warnings[0];
        assert_eq!(w.start, base);
        assert_eq!(w.anomalies, 2, "reported at the moment the cluster forms");
        assert!(w.peak_text.contains("chassis alarm"));
        assert!(monitor.anomalies_seen() >= 2);
    }

    #[test]
    fn isolated_anomaly_is_not_reported() {
        let mut monitor = trained_monitor();
        for m in normal_messages(100, 0, 60) {
            monitor.observe(&m);
        }
        // One odd message, then normal traffic again. The follow-up
        // messages arrive 2 minutes apart: even if the odd template in
        // their context windows inflates a score or two, nothing can
        // chain into a <1-minute cluster.
        let odd = msg(100 * 60, "completely unexpected solitary event occurred here");
        assert_eq!(monitor.observe(&odd), None);
        for m in normal_messages(50, 100 * 60 + 600, 120) {
            assert_eq!(monitor.observe(&m), None);
        }
    }

    /// The batched path must be behaviourally identical to per-message
    /// observe: same warnings, same counters, for any batch split.
    #[test]
    fn observe_batch_matches_sequential_observe() {
        let mut traffic = normal_messages(120, 0, 60);
        for j in 0..4u64 {
            traffic.push(msg(120 * 60 + j * 10, "chassis alarm unknown fault storm detected now"));
        }
        traffic.extend(normal_messages(40, 121 * 60, 60));

        let mut sequential = trained_monitor();
        let mut seq_warnings = Vec::new();
        for m in &traffic {
            seq_warnings.extend(sequential.observe(m));
        }

        for chunk in [1usize, 3, 7, 64, 1000] {
            let mut batched = trained_monitor();
            let mut warnings = Vec::new();
            for c in traffic.chunks(chunk) {
                batched.observe_batch(c, &mut warnings);
            }
            assert_eq!(warnings, seq_warnings, "chunk size {} diverged", chunk);
            assert_eq!(batched.messages_seen(), sequential.messages_seen());
            assert_eq!(batched.anomalies_seen(), sequential.anomalies_seen());
            assert_eq!(batched.windows_scored(), sequential.windows_scored());
        }
    }

    /// A stride > 1 sheds LSTM work proportionally while every message
    /// still updates context and counters.
    #[test]
    fn stride_sheds_windows_proportionally() {
        let mut monitor = trained_monitor();
        monitor.set_stride(4);
        assert_eq!(monitor.stride(), 4);
        let traffic = normal_messages(205, 0, 60);
        let mut warnings = Vec::new();
        monitor.observe_batch(&traffic, &mut warnings);
        assert_eq!(monitor.messages_seen(), 205);
        // 5 warm-up messages (window 4 + 1), then every 4th window scored.
        let eligible = monitor.windows_scored() + monitor.windows_stride_skipped();
        assert_eq!(eligible, 200);
        assert_eq!(monitor.windows_scored(), 50);
        assert_eq!(monitor.windows_stride_skipped(), 150);
        // Back to stride 1, everything is scored again.
        monitor.set_stride(1);
        monitor.observe_batch(&normal_messages(50, 100_000, 60), &mut warnings);
        assert_eq!(eligible + 50, monitor.windows_scored() + monitor.windows_stride_skipped());
        assert_eq!(monitor.windows_stride_skipped(), 150);
    }

    /// Splitting a stream at an arbitrary point, snapshotting, and
    /// resuming on a freshly built monitor must be indistinguishable
    /// from one uninterrupted run — including mid-cluster state.
    #[test]
    fn state_roundtrip_resumes_bit_identically() {
        let mut traffic = normal_messages(120, 0, 60);
        for j in 0..4u64 {
            traffic.push(msg(120 * 60 + j * 10, "chassis alarm unknown fault storm detected now"));
        }
        traffic.extend(normal_messages(60, 121 * 60, 60));

        let mut full = trained_monitor();
        let mut full_warnings = Vec::new();
        full.observe_batch(&traffic, &mut full_warnings);

        // Split right inside the anomaly burst so the open cluster is
        // part of the snapshotted state.
        let (head, tail) = traffic.split_at(122);
        let mut first = trained_monitor();
        let mut warnings = Vec::new();
        first.observe_batch(head, &mut warnings);
        let text = first.state_value().to_string();
        let mut resumed = trained_monitor();
        resumed.load_state(&serde_json::from_str(&text).unwrap()).unwrap();
        resumed.observe_batch(tail, &mut warnings);

        assert_eq!(warnings, full_warnings);
        assert_eq!(resumed.messages_seen(), full.messages_seen());
        assert_eq!(resumed.anomalies_seen(), full.anomalies_seen());
        assert_eq!(resumed.windows_scored(), full.windows_scored());
        assert_eq!(resumed.windows_stride_skipped(), full.windows_stride_skipped());
    }

    #[test]
    fn two_separate_bursts_give_two_warnings() {
        let mut monitor = trained_monitor();
        for m in normal_messages(100, 0, 60) {
            monitor.observe(&m);
        }
        let mut count = 0;
        for (burst, base) in [(0u64, 6000u64), (1, 12_000)] {
            let _ = burst;
            for j in 0..3 {
                let m = msg(base + j * 10, "chassis alarm unknown fault storm detected now");
                if monitor.observe(&m).is_some() {
                    count += 1;
                }
            }
            // Re-establish normal context between bursts.
            for m in normal_messages(30, base + 300, 60) {
                monitor.observe(&m);
            }
        }
        assert_eq!(count, 2);
    }
}
