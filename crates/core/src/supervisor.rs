//! Supervised multi-feed monitoring: one hardened [`OnlineMonitor`] per
//! vPE feed, with per-feed fault isolation.
//!
//! The paper's runtime vision (§1) is a predictive monitor running
//! alongside reactive monitoring for a whole fleet. Production syslog
//! transport is lossy and messy, so the [`FleetMonitor`] wraps each
//! feed's monitor in a defensive runtime:
//!
//! * **duplicate suppression** — a ring of recently-seen raw lines
//!   absorbs transport double-delivery;
//! * **bounded reordering** — parsed messages sit in a small time-window
//!   buffer and are released to the monitor in timestamp order;
//! * **parse-error budget** — a feed whose recent lines keep failing to
//!   parse is *quarantined* (its lines are skipped, cheaply) and later
//!   given a *probation* trial; sustained clean parsing restores it to
//!   active duty;
//! * **panic isolation** — a monitor that panics mid-observe poisons
//!   only its own feed; the fleet keeps running;
//! * **staleness detection** — a feed that has gone quiet past a
//!   configurable timeout raises a [`FleetEvent::FeedSilent`].
//!
//! Every feed exposes a [`FeedHealth`] report with its counters and
//! lifecycle state.

use crate::online::{OnlineMonitor, Warning};
use crate::state::{
    array_field, bool_field, require, str_field, u32_field, u64_field, u64s_from_value,
};
use nfv_nn::checkpoint::CheckpointError;
use nfv_syslog::message::Severity;
use nfv_syslog::parse::parse_line;
use nfv_syslog::SyslogMessage;
use serde_json::{json, Value};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Anything that can consume parsed messages and emit warnings; the
/// fleet runtime is generic over this so fault isolation is testable
/// with deliberately-misbehaving observers.
pub trait FeedObserver {
    /// Feeds one message; may return a warning.
    fn observe(&mut self, message: &SyslogMessage) -> Option<Warning>;

    /// Feeds a batch of messages, appending any warnings. The default
    /// just loops [`FeedObserver::observe`]; observers with a cheaper
    /// batched path (the [`OnlineMonitor`]'s chunked LSTM scoring)
    /// override it. Implementations must be behaviourally identical to
    /// the per-message loop.
    fn observe_batch(&mut self, messages: &[SyslogMessage], warnings: &mut Vec<Warning>) {
        for m in messages {
            if let Some(w) = self.observe(m) {
                warnings.push(w);
            }
        }
    }

    /// Sets the observer's scoring stride (degraded-mode shedding).
    /// Observers without a stride knob ignore it.
    fn set_stride(&mut self, _stride: usize) {}
}

impl FeedObserver for OnlineMonitor {
    fn observe(&mut self, message: &SyslogMessage) -> Option<Warning> {
        OnlineMonitor::observe(self, message)
    }

    fn observe_batch(&mut self, messages: &[SyslogMessage], warnings: &mut Vec<Warning>) {
        OnlineMonitor::observe_batch(self, messages, warnings)
    }

    fn set_stride(&mut self, stride: usize) {
        OnlineMonitor::set_stride(self, stride)
    }
}

/// Tunables of the fleet runtime.
#[derive(Debug, Clone, Copy)]
pub struct FleetMonitorConfig {
    /// Quarantine triggers when a feed's parse-error score (errors minus
    /// successes, floored at zero) exceeds this.
    pub parse_error_budget: u32,
    /// Raw lines a quarantined feed skips before its probation trial.
    pub quarantine_backoff: u64,
    /// Consecutive cleanly-parsed lines required to leave probation.
    pub probation_lines: u64,
    /// Seconds of silence before a feed is reported stale.
    pub staleness_timeout: u64,
    /// Capacity of the duplicate-suppression ring (raw lines).
    pub dedup_window: usize,
    /// Seconds of buffering used to re-sort out-of-order arrivals.
    pub reorder_window: u64,
}

impl Default for FleetMonitorConfig {
    fn default() -> Self {
        FleetMonitorConfig {
            parse_error_budget: 8,
            quarantine_backoff: 50,
            probation_lines: 20,
            staleness_timeout: 3600,
            dedup_window: 32,
            reorder_window: 30,
        }
    }
}

/// Lifecycle state of one feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedState {
    /// Healthy: lines are parsed, buffered, and scored.
    Active,
    /// Too many recent parse failures: lines are skipped until the
    /// backoff elapses.
    Quarantined,
    /// Recovery trial after quarantine: lines are processed, but one
    /// parse failure sends the feed back to quarantine.
    Probation,
    /// The feed's monitor panicked; the feed is permanently offline
    /// (its lines are counted and dropped).
    Poisoned,
}

/// Health counters and state for one feed.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedHealth {
    /// Feed index.
    pub feed: usize,
    /// Current lifecycle state.
    pub state: FeedState,
    /// Lines successfully parsed and accepted for scoring.
    pub messages: u64,
    /// Lines that failed to parse.
    pub parse_errors: u64,
    /// Exact duplicate lines suppressed by the dedup ring.
    pub duplicates_dropped: u64,
    /// Messages that arrived with a timestamp behind the feed's newest
    /// (absorbed by the reorder buffer).
    pub reorders_absorbed: u64,
    /// Lines skipped while quarantined or poisoned.
    pub skipped: u64,
    /// Lines dropped by the serving runtime's overload policy before
    /// ever reaching this feed's monitor (ring overflow plus drop-oldest
    /// shedding), recorded via [`FleetMonitor::record_overload_drops`].
    pub overload_dropped: u64,
    /// Times the feed entered quarantine.
    pub quarantines: u32,
    /// Warnings raised by the feed's monitor.
    pub warnings: u64,
    /// Timestamp of the newest parsed message, if any.
    pub last_seen: Option<u64>,
}

/// Fleet-level happenings surfaced to the caller.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// A feed's monitor raised an anomaly warning.
    Warning {
        /// Feed index.
        feed: usize,
        /// The warning.
        warning: Warning,
    },
    /// A feed exhausted its parse-error budget.
    FeedQuarantined {
        /// Feed index.
        feed: usize,
        /// Total parse errors on the feed so far.
        parse_errors: u64,
    },
    /// A feed completed probation and is active again.
    FeedRecovered {
        /// Feed index.
        feed: usize,
    },
    /// A feed's monitor panicked and the feed was taken offline.
    FeedPoisoned {
        /// Feed index.
        feed: usize,
        /// Panic payload, when it was a string.
        reason: String,
    },
    /// A feed's producer outran the scorer and lines were dropped by the
    /// overload policy. Emitted once per overload episode; the episode
    /// ends when [`FleetMonitor::end_overload_episode`] is called after
    /// a drop-free interval.
    FeedOverloaded {
        /// Feed index.
        feed: usize,
        /// Total overload drops on the feed so far.
        dropped: u64,
    },
    /// A feed has been silent past the staleness timeout.
    FeedSilent {
        /// Feed index.
        feed: usize,
        /// Newest message timestamp (0 when the feed never spoke).
        last_seen: u64,
        /// The `now` passed to [`FleetMonitor::tick`].
        now: u64,
    },
}

/// A message held in the reorder buffer, ordered by (timestamp, seq).
struct Buffered {
    time: u64,
    seq: u64,
    msg: SyslogMessage,
}

impl PartialEq for Buffered {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Buffered {}
impl PartialOrd for Buffered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Buffered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct FeedRuntime<O> {
    monitor: Option<O>,
    health: FeedHealth,
    /// Parse-error score: +1 per error, -1 per success, floored at 0.
    error_score: u32,
    /// Lines skipped in the current quarantine episode.
    quarantine_skipped: u64,
    /// Clean lines in the current probation episode.
    probation_clean: u64,
    /// FNV hashes of recent raw lines, for duplicate suppression.
    dedup: VecDeque<u64>,
    /// Min-heap releasing messages in timestamp order.
    buffer: BinaryHeap<Reverse<Buffered>>,
    /// Newest parsed timestamp (drives reorder-buffer release).
    max_seen: u64,
    /// Monotone sequence for stable ordering of equal timestamps.
    next_seq: u64,
    /// Whether a FeedSilent was already emitted for the ongoing gap.
    silent_flagged: bool,
    /// Whether a FeedOverloaded was already emitted for the ongoing
    /// overload episode.
    overload_flagged: bool,
}

impl FeedState {
    fn as_str(self) -> &'static str {
        match self {
            FeedState::Active => "active",
            FeedState::Quarantined => "quarantined",
            FeedState::Probation => "probation",
            FeedState::Poisoned => "poisoned",
        }
    }

    fn from_str(s: &str) -> Result<FeedState, CheckpointError> {
        Ok(match s {
            "active" => FeedState::Active,
            "quarantined" => FeedState::Quarantined,
            "probation" => FeedState::Probation,
            "poisoned" => FeedState::Poisoned,
            other => {
                return Err(CheckpointError::Invalid(format!("unknown feed state {:?}", other)))
            }
        })
    }
}

fn line_hash(line: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in line.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Supervised monitor for a fleet of syslog feeds.
pub struct FleetMonitor<O: FeedObserver = OnlineMonitor> {
    cfg: FleetMonitorConfig,
    feeds: Vec<FeedRuntime<O>>,
}

impl<O: FeedObserver> FleetMonitor<O> {
    /// Builds a fleet runtime over one observer per feed.
    pub fn new(monitors: Vec<O>, cfg: FleetMonitorConfig) -> FleetMonitor<O> {
        let feeds = monitors
            .into_iter()
            .enumerate()
            .map(|(feed, monitor)| FeedRuntime {
                monitor: Some(monitor),
                health: FeedHealth {
                    feed,
                    state: FeedState::Active,
                    messages: 0,
                    parse_errors: 0,
                    duplicates_dropped: 0,
                    reorders_absorbed: 0,
                    skipped: 0,
                    overload_dropped: 0,
                    quarantines: 0,
                    warnings: 0,
                    last_seen: None,
                },
                error_score: 0,
                quarantine_skipped: 0,
                probation_clean: 0,
                dedup: VecDeque::new(),
                buffer: BinaryHeap::new(),
                max_seen: 0,
                next_seq: 0,
                silent_flagged: false,
                overload_flagged: false,
            })
            .collect();
        FleetMonitor { cfg, feeds }
    }

    /// Number of feeds under supervision.
    pub fn feed_count(&self) -> usize {
        self.feeds.len()
    }

    /// Health report for one feed.
    pub fn health(&self, feed: usize) -> &FeedHealth {
        &self.feeds[feed].health
    }

    /// Health reports for the whole fleet, in feed order.
    pub fn healths(&self) -> Vec<&FeedHealth> {
        self.feeds.iter().map(|f| &f.health).collect()
    }

    /// The observer behind one feed, when still live (poisoned feeds
    /// have dropped theirs). Lets callers read monitor-level counters
    /// such as windows scored or stride-skipped.
    pub fn observer(&self, feed: usize) -> Option<&O> {
        self.feeds[feed].monitor.as_ref()
    }

    /// Mutable access to a live feed's observer — warm restarts use
    /// this to load streaming state back into freshly built monitors.
    pub fn observer_mut(&mut self, feed: usize) -> Option<&mut O> {
        self.feeds[feed].monitor.as_mut()
    }

    /// Forcibly poisons a feed from outside the observe path — the
    /// containment hook for a feed whose producer/ingest thread died.
    /// The observer is dropped and further lines are cheap skips,
    /// exactly as for an in-observe panic. Returns the
    /// [`FleetEvent::FeedPoisoned`] event unless the feed was already
    /// poisoned (or doesn't exist).
    pub fn poison(&mut self, feed: usize, reason: &str) -> Option<FleetEvent> {
        let rt = self.feeds.get_mut(feed)?;
        if rt.health.state == FeedState::Poisoned {
            return None;
        }
        rt.monitor = None;
        rt.health.state = FeedState::Poisoned;
        Some(FleetEvent::FeedPoisoned { feed, reason: reason.to_string() })
    }

    /// Ingests one raw line for `feed`, returning whatever fleet events
    /// it caused. A panicking monitor is contained here: the feed is
    /// poisoned and the method returns normally.
    pub fn ingest_line(&mut self, feed: usize, line: &str) -> Vec<FleetEvent> {
        let mut events = Vec::new();
        let cfg = self.cfg;
        let rt = &mut self.feeds[feed];
        Self::admit_line(&cfg, rt, feed, line, &mut events);
        let release_before = rt.max_seen.saturating_sub(cfg.reorder_window);
        while rt.buffer.peek().is_some_and(|Reverse(b)| b.time <= release_before) {
            let Reverse(b) = rt.buffer.pop().expect("peeked");
            Self::observe_contained(rt, feed, &b.msg, &mut events);
        }
        events
    }

    /// Ingests a batch of raw lines for `feed`. Admission (dedup,
    /// parsing, lifecycle, reordering) runs per line exactly as in
    /// [`FleetMonitor::ingest_line`]; the messages released by the
    /// reorder buffer are then observed in one batched call, which is
    /// what lets the serving runtime amortize the LSTM forward passes.
    /// Events are appended to `events`.
    pub fn ingest_batch<'a>(
        &mut self,
        feed: usize,
        lines: impl IntoIterator<Item = &'a str>,
        events: &mut Vec<FleetEvent>,
    ) {
        let cfg = self.cfg;
        let rt = &mut self.feeds[feed];
        let mut released: Vec<SyslogMessage> = Vec::new();
        for line in lines {
            Self::admit_line(&cfg, rt, feed, line, events);
            let release_before = rt.max_seen.saturating_sub(cfg.reorder_window);
            while rt.buffer.peek().is_some_and(|Reverse(b)| b.time <= release_before) {
                released.push(rt.buffer.pop().expect("peeked").0.msg);
            }
        }
        Self::observe_batch_contained(rt, feed, &released, events);
    }

    /// Runs one line through dedup, parsing, and the lifecycle state
    /// machine, pushing any parsed message into the reorder buffer.
    fn admit_line(
        cfg: &FleetMonitorConfig,
        rt: &mut FeedRuntime<O>,
        feed: usize,
        line: &str,
        events: &mut Vec<FleetEvent>,
    ) {
        match rt.health.state {
            FeedState::Poisoned => {
                rt.health.skipped += 1;
                return;
            }
            FeedState::Quarantined => {
                rt.health.skipped += 1;
                rt.quarantine_skipped += 1;
                if rt.quarantine_skipped >= cfg.quarantine_backoff {
                    rt.health.state = FeedState::Probation;
                    rt.probation_clean = 0;
                    rt.error_score = 0;
                }
                return;
            }
            FeedState::Active | FeedState::Probation => {}
        }

        // Duplicate suppression on the raw line.
        let h = line_hash(line);
        if rt.dedup.contains(&h) {
            rt.health.duplicates_dropped += 1;
            return;
        }
        rt.dedup.push_back(h);
        while rt.dedup.len() > cfg.dedup_window {
            rt.dedup.pop_front();
        }

        // Parse, charging the error budget on failure.
        let not_before = rt.max_seen;
        let msg = match parse_line(line, not_before) {
            Ok(msg) => msg,
            Err(_) => {
                rt.health.parse_errors += 1;
                rt.error_score += 1;
                let over_budget = rt.error_score > cfg.parse_error_budget;
                if rt.health.state == FeedState::Probation || over_budget {
                    rt.health.state = FeedState::Quarantined;
                    rt.health.quarantines += 1;
                    rt.quarantine_skipped = 0;
                    events.push(FleetEvent::FeedQuarantined {
                        feed,
                        parse_errors: rt.health.parse_errors,
                    });
                }
                return;
            }
        };
        rt.error_score = rt.error_score.saturating_sub(1);
        if rt.health.state == FeedState::Probation {
            rt.probation_clean += 1;
            if rt.probation_clean >= cfg.probation_lines {
                rt.health.state = FeedState::Active;
                events.push(FleetEvent::FeedRecovered { feed });
            }
        }

        rt.health.messages += 1;
        rt.silent_flagged = false;
        if msg.timestamp < rt.max_seen {
            rt.health.reorders_absorbed += 1;
        }
        rt.max_seen = rt.max_seen.max(msg.timestamp);
        rt.health.last_seen = Some(rt.max_seen);

        // Buffer; the caller releases everything older than the reorder
        // window (per line, or once per batch).
        rt.buffer.push(Reverse(Buffered { time: msg.timestamp, seq: rt.next_seq, msg }));
        rt.next_seq += 1;
    }

    /// Runs one observation with panic containment; a panic poisons the
    /// feed and is reported as an event rather than propagated.
    fn observe_contained(
        rt: &mut FeedRuntime<O>,
        feed: usize,
        msg: &SyslogMessage,
        events: &mut Vec<FleetEvent>,
    ) {
        let Some(monitor) = rt.monitor.as_mut() else {
            rt.health.skipped += 1;
            return;
        };
        match catch_unwind(AssertUnwindSafe(|| monitor.observe(msg))) {
            Ok(Some(warning)) => {
                rt.health.warnings += 1;
                events.push(FleetEvent::Warning { feed, warning });
            }
            Ok(None) => {}
            Err(panic) => {
                // The monitor's invariants can no longer be trusted.
                rt.monitor = None;
                rt.health.state = FeedState::Poisoned;
                let reason = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                events.push(FleetEvent::FeedPoisoned { feed, reason });
            }
        }
    }

    /// Runs one batched observation with the same panic containment as
    /// [`FleetMonitor::observe_contained`]. Warnings raised before the
    /// panic are kept; the feed is then poisoned.
    fn observe_batch_contained(
        rt: &mut FeedRuntime<O>,
        feed: usize,
        msgs: &[SyslogMessage],
        events: &mut Vec<FleetEvent>,
    ) {
        if msgs.is_empty() {
            return;
        }
        let Some(monitor) = rt.monitor.as_mut() else {
            rt.health.skipped += msgs.len() as u64;
            return;
        };
        let mut warnings = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            monitor.observe_batch(msgs, &mut warnings);
        }));
        for warning in warnings {
            rt.health.warnings += 1;
            events.push(FleetEvent::Warning { feed, warning });
        }
        if let Err(panic) = outcome {
            rt.monitor = None;
            rt.health.state = FeedState::Poisoned;
            let reason = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            events.push(FleetEvent::FeedPoisoned { feed, reason });
        }
    }

    /// Records `n` lines dropped for `feed` by the serving runtime's
    /// overload policy. Returns a [`FleetEvent::FeedOverloaded`] the
    /// first time drops occur in an episode; subsequent calls only bump
    /// the counter until [`FleetMonitor::end_overload_episode`] re-arms
    /// the event.
    pub fn record_overload_drops(&mut self, feed: usize, n: u64) -> Option<FleetEvent> {
        if n == 0 {
            return None;
        }
        let rt = &mut self.feeds[feed];
        rt.health.overload_dropped += n;
        if rt.overload_flagged {
            return None;
        }
        rt.overload_flagged = true;
        Some(FleetEvent::FeedOverloaded { feed, dropped: rt.health.overload_dropped })
    }

    /// Marks the current overload episode on `feed` as over (called
    /// after a drop-free interval), re-arming the `FeedOverloaded` event.
    pub fn end_overload_episode(&mut self, feed: usize) {
        self.feeds[feed].overload_flagged = false;
    }

    /// Sets the scoring stride on every live feed observer (degraded-mode
    /// load shedding; 1 restores full scoring).
    pub fn set_stride(&mut self, stride: usize) {
        for rt in &mut self.feeds {
            if let Some(monitor) = rt.monitor.as_mut() {
                monitor.set_stride(stride);
            }
        }
    }

    /// Serializes every feed's runtime state — health ledger, lifecycle
    /// position, dedup ring, and reorder buffer — everything *except*
    /// the observers themselves (see [`crate::online::OnlineMonitor::state_value`]
    /// for those). The reorder heap is serialized sorted by
    /// `(time, seq)` so equal states always serialize identically.
    pub fn runtime_state_value(&self) -> Value {
        let feeds: Vec<Value> = self
            .feeds
            .iter()
            .map(|rt| {
                let mut buf: Vec<&Buffered> = rt.buffer.iter().map(|Reverse(b)| b).collect();
                buf.sort_by_key(|b| (b.time, b.seq));
                let buffer: Vec<Value> = buf
                    .iter()
                    .map(|b| {
                        json!({
                            "seq": b.seq,
                            "timestamp": b.msg.timestamp,
                            "host": b.msg.host.as_str(),
                            "process": b.msg.process.as_str(),
                            "severity": b.msg.severity.code(),
                            "text": b.msg.text.as_str(),
                        })
                    })
                    .collect();
                let h = &rt.health;
                json!({
                    "state": h.state.as_str(),
                    "messages": h.messages,
                    "parse_errors": h.parse_errors,
                    "duplicates_dropped": h.duplicates_dropped,
                    "reorders_absorbed": h.reorders_absorbed,
                    "skipped": h.skipped,
                    "overload_dropped": h.overload_dropped,
                    "quarantines": h.quarantines,
                    "warnings": h.warnings,
                    "last_seen": h.last_seen,
                    "error_score": rt.error_score,
                    "quarantine_skipped": rt.quarantine_skipped,
                    "probation_clean": rt.probation_clean,
                    "dedup": rt.dedup.iter().copied().collect::<Vec<u64>>(),
                    "buffer": buffer,
                    "max_seen": rt.max_seen,
                    "next_seq": rt.next_seq,
                    "silent_flagged": rt.silent_flagged,
                    "overload_flagged": rt.overload_flagged,
                })
            })
            .collect();
        Value::Array(feeds)
    }

    /// Restores [`FleetMonitor::runtime_state_value`] output into a
    /// fleet rebuilt with the same feed count. Poisoned feeds drop
    /// their observer, matching the live poisoning path.
    pub fn load_runtime_state(&mut self, v: &Value) -> Result<(), CheckpointError> {
        let feeds = v
            .as_array()
            .ok_or_else(|| CheckpointError::Invalid("fleet state is not an array".into()))?;
        if feeds.len() != self.feeds.len() {
            return Err(CheckpointError::Invalid(format!(
                "fleet state has {} feeds, runtime has {}",
                feeds.len(),
                self.feeds.len()
            )));
        }
        for (rt, f) in self.feeds.iter_mut().zip(feeds) {
            let state = FeedState::from_str(str_field(f, "state")?)?;
            let last_seen = match require(f, "last_seen")? {
                Value::Null => None,
                other => Some(
                    other
                        .as_u64()
                        .ok_or_else(|| CheckpointError::MissingField("last_seen".into()))?,
                ),
            };
            let mut buffer = BinaryHeap::new();
            for b in array_field(f, "buffer")? {
                let severity = u64_field(b, "severity")?;
                let msg = SyslogMessage {
                    timestamp: u64_field(b, "timestamp")?,
                    host: str_field(b, "host")?.to_string(),
                    process: str_field(b, "process")?.to_string(),
                    severity: Severity::from_code(severity as u8).ok_or_else(|| {
                        CheckpointError::Invalid(format!("bad severity code {}", severity))
                    })?,
                    text: str_field(b, "text")?.to_string(),
                };
                buffer.push(Reverse(Buffered {
                    time: msg.timestamp,
                    seq: u64_field(b, "seq")?,
                    msg,
                }));
            }
            rt.health.state = state;
            rt.health.messages = u64_field(f, "messages")?;
            rt.health.parse_errors = u64_field(f, "parse_errors")?;
            rt.health.duplicates_dropped = u64_field(f, "duplicates_dropped")?;
            rt.health.reorders_absorbed = u64_field(f, "reorders_absorbed")?;
            rt.health.skipped = u64_field(f, "skipped")?;
            rt.health.overload_dropped = u64_field(f, "overload_dropped")?;
            rt.health.quarantines = u32_field(f, "quarantines")?;
            rt.health.warnings = u64_field(f, "warnings")?;
            rt.health.last_seen = last_seen;
            rt.error_score = u32_field(f, "error_score")?;
            rt.quarantine_skipped = u64_field(f, "quarantine_skipped")?;
            rt.probation_clean = u64_field(f, "probation_clean")?;
            rt.dedup = u64s_from_value(require(f, "dedup")?, "dedup")?.into();
            rt.buffer = buffer;
            rt.max_seen = u64_field(f, "max_seen")?;
            rt.next_seq = u64_field(f, "next_seq")?;
            rt.silent_flagged = bool_field(f, "silent_flagged")?;
            rt.overload_flagged = bool_field(f, "overload_flagged")?;
            if state == FeedState::Poisoned {
                rt.monitor = None;
            }
        }
        Ok(())
    }

    /// Checks every feed for staleness against wall-clock `now` (stream
    /// time). Each silence episode is reported once.
    pub fn tick(&mut self, now: u64) -> Vec<FleetEvent> {
        let mut events = Vec::new();
        for rt in &mut self.feeds {
            if rt.health.state == FeedState::Poisoned || rt.silent_flagged {
                continue;
            }
            let last = rt.health.last_seen.unwrap_or(0);
            if now.saturating_sub(last) > self.cfg.staleness_timeout {
                rt.silent_flagged = true;
                events.push(FleetEvent::FeedSilent { feed: rt.health.feed, last_seen: last, now });
            }
        }
        events
    }

    /// Drains every reorder buffer (end of stream), returning any final
    /// warnings.
    pub fn flush(&mut self) -> Vec<FleetEvent> {
        let mut events = Vec::new();
        for i in 0..self.feeds.len() {
            let rt = &mut self.feeds[i];
            while let Some(Reverse(b)) = rt.buffer.pop() {
                Self::observe_contained(rt, i, &b.msg, &mut events);
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_syslog::message::Severity;

    /// Observer that records timestamps and panics on a trigger text.
    struct Probe {
        seen: Vec<u64>,
        panic_on: Option<String>,
    }

    impl FeedObserver for Probe {
        fn observe(&mut self, message: &SyslogMessage) -> Option<Warning> {
            if let Some(trigger) = &self.panic_on {
                if message.text.contains(trigger.as_str()) {
                    panic!("probe tripped on {:?}", message.text);
                }
            }
            self.seen.push(message.timestamp);
            if message.text.contains("alarm") {
                return Some(Warning {
                    start: message.timestamp,
                    anomalies: 1,
                    peak_score: 9.0,
                    peak_text: message.text.clone(),
                });
            }
            None
        }
    }

    fn probe_fleet(n: usize) -> FleetMonitor<Probe> {
        let monitors = (0..n).map(|_| Probe { seen: Vec::new(), panic_on: None }).collect();
        FleetMonitor::new(monitors, FleetMonitorConfig::default())
    }

    fn line(time: u64, text: &str) -> String {
        SyslogMessage {
            timestamp: time,
            host: "vpe00".into(),
            process: "rpd".into(),
            severity: Severity::Info,
            text: text.into(),
        }
        .to_line()
    }

    #[test]
    fn duplicates_are_suppressed_once_within_the_ring() {
        let mut fleet = probe_fleet(1);
        let l = line(100, "heartbeat ok 1");
        fleet.ingest_line(0, &l);
        fleet.ingest_line(0, &l);
        fleet.ingest_line(0, &line(110, "heartbeat ok 2"));
        fleet.ingest_line(0, &l);
        let h = fleet.health(0);
        assert_eq!(h.messages, 2);
        assert_eq!(h.duplicates_dropped, 2);
    }

    #[test]
    fn reorder_buffer_releases_in_timestamp_order() {
        let mut fleet = probe_fleet(1);
        // 30s window; deliver shuffled within the window.
        for t in [100u64, 130, 110, 120, 160, 140, 150, 200, 170] {
            fleet.ingest_line(0, &line(t, &format!("event at {}", t)));
        }
        fleet.flush();
        let seen = &fleet.feeds[0].monitor.as_ref().unwrap().seen;
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(*seen, sorted, "observer must see timestamps in order");
        assert_eq!(seen.len(), 9);
        assert!(fleet.health(0).reorders_absorbed >= 3);
    }

    #[test]
    fn parse_error_budget_quarantines_then_probation_recovers() {
        let cfg = FleetMonitorConfig {
            parse_error_budget: 3,
            quarantine_backoff: 5,
            probation_lines: 4,
            ..Default::default()
        };
        let mut fleet = FleetMonitor::new(vec![Probe { seen: Vec::new(), panic_on: None }], cfg);
        let mut events = Vec::new();
        // Garbage until quarantine trips.
        for i in 0..4 {
            events.extend(fleet.ingest_line(0, &format!("#### garbage {} ####", i)));
        }
        assert_eq!(fleet.health(0).state, FeedState::Quarantined);
        assert!(events.iter().any(|e| matches!(e, FleetEvent::FeedQuarantined { .. })));
        // Lines during backoff are skipped, even good ones.
        for i in 0..5 {
            events.extend(fleet.ingest_line(0, &line(1000 + i, "fine again")));
        }
        assert_eq!(fleet.health(0).state, FeedState::Probation);
        assert_eq!(fleet.health(0).skipped, 5);
        // Clean probation restores the feed.
        for i in 0..4 {
            events.extend(fleet.ingest_line(0, &line(2000 + i * 60, "fine again ok")));
        }
        assert_eq!(fleet.health(0).state, FeedState::Active);
        assert!(events.iter().any(|e| matches!(e, FleetEvent::FeedRecovered { feed: 0 })));
        assert_eq!(fleet.health(0).quarantines, 1);
    }

    #[test]
    fn probation_failure_returns_to_quarantine() {
        let cfg = FleetMonitorConfig {
            parse_error_budget: 2,
            quarantine_backoff: 2,
            probation_lines: 10,
            ..Default::default()
        };
        let mut fleet = FleetMonitor::new(vec![Probe { seen: Vec::new(), panic_on: None }], cfg);
        for i in 0..3 {
            fleet.ingest_line(0, &format!("junk {}", i));
        }
        assert_eq!(fleet.health(0).state, FeedState::Quarantined);
        fleet.ingest_line(0, "skip1");
        fleet.ingest_line(0, "skip2");
        assert_eq!(fleet.health(0).state, FeedState::Probation);
        // One bad line during probation is enough.
        let events = fleet.ingest_line(0, "more junk");
        assert_eq!(fleet.health(0).state, FeedState::Quarantined);
        assert!(events.iter().any(|e| matches!(e, FleetEvent::FeedQuarantined { .. })));
        assert_eq!(fleet.health(0).quarantines, 2);
    }

    #[test]
    fn poisoned_feed_is_contained_and_others_keep_working() {
        let monitors = vec![
            Probe { seen: Vec::new(), panic_on: Some("kaboom".into()) },
            Probe { seen: Vec::new(), panic_on: None },
        ];
        let mut fleet = FleetMonitor::new(monitors, FleetMonitorConfig::default());
        let mut events = Vec::new();
        // Feed the trigger, then push it past the reorder window so the
        // poisoned observation actually runs.
        events.extend(fleet.ingest_line(0, &line(100, "kaboom now")));
        events.extend(fleet.ingest_line(0, &line(500, "later")));
        assert_eq!(fleet.health(0).state, FeedState::Poisoned);
        assert!(events
            .iter()
            .any(|e| matches!(e, FleetEvent::FeedPoisoned { feed: 0, reason } if reason.contains("kaboom"))));
        // Feed 1 still scores and warns.
        events.extend(fleet.ingest_line(1, &line(100, "alarm condition")));
        events.extend(fleet.ingest_line(1, &line(500, "calm")));
        assert!(events.iter().any(|e| matches!(e, FleetEvent::Warning { feed: 1, .. })));
        assert_eq!(fleet.health(1).state, FeedState::Active);
        // Further lines to the poisoned feed are cheap no-ops.
        let quiet = fleet.ingest_line(0, &line(600, "anything"));
        assert!(quiet.is_empty());
        assert!(fleet.health(0).skipped >= 1);
    }

    #[test]
    fn staleness_is_reported_once_per_episode() {
        let mut fleet = probe_fleet(2);
        fleet.ingest_line(0, &line(1000, "hello"));
        fleet.ingest_line(1, &line(1000, "hello"));
        // Feed 1 keeps talking; feed 0 goes quiet.
        fleet.ingest_line(1, &line(9000, "still here"));
        let events = fleet.tick(9000);
        assert_eq!(events, vec![FleetEvent::FeedSilent { feed: 0, last_seen: 1000, now: 9000 }]);
        // Second tick within the same episode is silent.
        assert!(fleet.tick(9500).is_empty());
        // Speaking again re-arms the detector.
        fleet.ingest_line(0, &line(9600, "back"));
        assert!(fleet.tick(9700).is_empty());
        let events = fleet.tick(20_000);
        assert!(matches!(events[0], FleetEvent::FeedSilent { feed: 0, .. }));
    }

    #[test]
    fn ingest_batch_matches_per_line_ingest() {
        let mixed: Vec<String> = (0..60)
            .map(|i| {
                let t = 100 + i * 40;
                match i % 7 {
                    3 => format!("%% not a syslog line {} %%", i),
                    5 => line(t, "alarm condition"),
                    _ => line(t, &format!("event {}", i)),
                }
            })
            .collect();
        // Duplicate a few lines to exercise dedup inside the batch.
        let mut lines: Vec<&str> = mixed.iter().map(|s| s.as_str()).collect();
        lines.insert(10, &mixed[9]);
        lines.insert(30, &mixed[28]);

        let mut seq = probe_fleet(1);
        let mut seq_events = Vec::new();
        for l in &lines {
            seq_events.extend(seq.ingest_line(0, l));
        }
        seq_events.extend(seq.flush());

        let mut bat = probe_fleet(1);
        let mut bat_events = Vec::new();
        for chunk in lines.chunks(9) {
            bat.ingest_batch(0, chunk.iter().copied(), &mut bat_events);
        }
        bat_events.extend(bat.flush());

        assert_eq!(seq.health(0), bat.health(0));
        assert_eq!(seq_events, bat_events);
        assert_eq!(
            seq.feeds[0].monitor.as_ref().unwrap().seen,
            bat.feeds[0].monitor.as_ref().unwrap().seen
        );
    }

    #[test]
    fn overload_drops_are_counted_and_reported_once_per_episode() {
        let mut fleet = probe_fleet(2);
        let ev = fleet.record_overload_drops(0, 7);
        assert_eq!(ev, Some(FleetEvent::FeedOverloaded { feed: 0, dropped: 7 }));
        // Same episode: counter grows, no second event.
        assert_eq!(fleet.record_overload_drops(0, 3), None);
        assert_eq!(fleet.health(0).overload_dropped, 10);
        assert_eq!(fleet.health(1).overload_dropped, 0);
        // Zero drops never report.
        assert_eq!(fleet.record_overload_drops(1, 0), None);
        // After the episode ends the event re-arms.
        fleet.end_overload_episode(0);
        let ev = fleet.record_overload_drops(0, 1);
        assert_eq!(ev, Some(FleetEvent::FeedOverloaded { feed: 0, dropped: 11 }));
    }

    #[test]
    fn external_poison_matches_in_observe_poisoning() {
        let mut fleet = probe_fleet(2);
        fleet.ingest_line(0, &line(100, "hello"));
        let ev = fleet.poison(0, "producer thread panicked");
        assert!(matches!(ev, Some(FleetEvent::FeedPoisoned { feed: 0, .. })));
        assert_eq!(fleet.health(0).state, FeedState::Poisoned);
        assert!(fleet.observer(0).is_none());
        // Idempotent, and a bad index is a no-op rather than a panic.
        assert_eq!(fleet.poison(0, "again"), None);
        assert_eq!(fleet.poison(99, "no such feed"), None);
        // Lines to the poisoned feed are cheap skips; feed 1 unaffected.
        assert!(fleet.ingest_line(0, &line(200, "anything")).is_empty());
        assert!(fleet.health(0).skipped >= 1);
        assert_eq!(fleet.health(1).state, FeedState::Active);
    }

    /// Snapshotting the runtime mid-stream (with lines still sitting in
    /// the reorder buffer and a feed mid-quarantine) and restoring into
    /// a fresh fleet must continue exactly like the uninterrupted run.
    #[test]
    fn runtime_state_roundtrip_resumes_identically() {
        let mixed: Vec<String> = (0..50)
            .map(|i| {
                let t = 100 + i * 40;
                match i % 6 {
                    2 => format!("@@ garbage line {} @@", i),
                    4 => line(t, "alarm condition"),
                    _ => line(t, &format!("event {}", i)),
                }
            })
            .collect();
        let (head, tail) = mixed.split_at(31);

        let mut full = probe_fleet(1);
        let mut full_events = Vec::new();
        for l in &mixed {
            full_events.extend(full.ingest_line(0, l));
        }
        full_events.extend(full.flush());

        let mut first = probe_fleet(1);
        let mut events = Vec::new();
        for l in head {
            events.extend(first.ingest_line(0, l));
        }
        let text = first.runtime_state_value().to_string();
        let mut resumed = probe_fleet(1);
        resumed.load_runtime_state(&serde_json::from_str(&text).unwrap()).unwrap();
        for l in tail {
            events.extend(resumed.ingest_line(0, l));
        }
        events.extend(resumed.flush());

        assert_eq!(resumed.health(0), full.health(0));
        assert_eq!(events, full_events);
    }

    #[test]
    fn feed_count_mismatch_is_a_typed_restore_error() {
        let fleet = probe_fleet(2);
        let state = fleet.runtime_state_value();
        let mut other = probe_fleet(3);
        assert!(matches!(other.load_runtime_state(&state), Err(CheckpointError::Invalid(_))));
    }

    #[test]
    fn warnings_are_counted_per_feed() {
        let mut fleet = probe_fleet(1);
        let mut events = Vec::new();
        events.extend(fleet.ingest_line(0, &line(100, "alarm one")));
        events.extend(fleet.ingest_line(0, &line(200, "alarm two")));
        events.extend(fleet.flush());
        let warnings = events.iter().filter(|e| matches!(e, FleetEvent::Warning { .. })).count();
        assert_eq!(warnings, 2);
        assert_eq!(fleet.health(0).warnings, 2);
    }
}
