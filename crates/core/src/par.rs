//! Deterministic fan-out helpers for the fleet's inference hot paths.
//!
//! Scoring is embarrassingly parallel — every vPE (and every chunk of
//! windows inside a detector) is independent — but the pipeline's outputs
//! must not depend on how the work was scheduled. These helpers therefore
//! partition work into *contiguous, index-ordered* blocks, one per
//! worker, and stitch the per-block results back together in block order:
//! the result vector is exactly what a serial loop would produce, for any
//! thread count. (Training-side determinism is handled separately by the
//! `nfv_nn` trainer's shard-ordered gradient reduction.)
//!
//! Execution runs on the persistent [`nfv_pool`] worker pool — fixed
//! worker identities, index-ordered assignment, no work stealing — so a
//! fan-out costs a queue handoff instead of an OS thread spawn per
//! batch, and nested regions (a fan-out issued from inside a pool task)
//! degrade to serial automatically.

/// Resolves a requested thread count: `0` means "auto" (one worker per
/// host core). This is [`nfv_pool::resolve_workers`] — the single
/// worker-cap policy for the whole workspace: explicit requests are
/// capped at the host's core count (oversubscription only adds context
/// switches), and the result is further capped by `cap` (typically the
/// number of independent work items, e.g. a group's size).
pub fn effective_threads(requested: usize, cap: usize) -> usize {
    nfv_pool::resolve_workers(requested, cap)
}

/// Maps `f` over contiguous blocks of `items` on up to `threads` pool
/// workers and concatenates the per-block outputs in block order.
///
/// `f` receives the block's starting offset into `items` plus the block
/// slice, and returns one output per item (in item order). Because block
/// boundaries depend only on `items.len()` and `threads`-many workers
/// each own a contiguous range, the concatenated result is identical to
/// `f(0, items)` run serially. A worker panic propagates to the caller —
/// scoring has no partial-result semantics to preserve.
pub fn par_blocks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let n = items.len();
    let workers = effective_threads(threads, n);
    if workers <= 1 || nfv_pool::in_worker() {
        return f(0, items);
    }
    let block = n.div_ceil(workers);
    let mut slots: Vec<Vec<R>> = Vec::with_capacity(n.div_ceil(block));
    slots.resize_with(n.div_ceil(block), Vec::new);
    nfv_pool::global().scope(|scope| {
        for ((w, chunk), slot) in items.chunks(block).enumerate().zip(slots.iter_mut()) {
            let f = &f;
            scope.spawn(move || *slot = f(w * block, chunk));
        }
    });
    let mut out = Vec::with_capacity(n);
    for s in slots {
        out.extend(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_blocks_matches_serial_for_every_thread_count() {
        let items: Vec<usize> = (0..23).collect();
        let serial = par_blocks(&items, 1, |off, block| {
            block.iter().enumerate().map(|(i, &x)| x * 3 + off + i).collect::<Vec<_>>()
        });
        for threads in [2, 3, 4, 8, 64] {
            let par = par_blocks(&items, threads, |off, block| {
                block.iter().enumerate().map(|(i, &x)| x * 3 + off + i).collect::<Vec<_>>()
            });
            assert_eq!(par, serial, "diverged at {threads} threads");
        }
    }

    #[test]
    fn par_blocks_offsets_are_global_indices() {
        let items = vec![(); 10];
        let idx = par_blocks(&items, 3, |off, block| (off..off + block.len()).collect::<Vec<_>>());
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn par_blocks_handles_empty_input() {
        let out: Vec<u32> = par_blocks(&[] as &[u8], 4, |_, _| Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn par_blocks_propagates_worker_panics() {
        let items: Vec<usize> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            par_blocks(&items, 4, |off, block| {
                if off == 0 {
                    panic!("scoring has no partial-result semantics");
                }
                block.to_vec()
            })
        });
        assert!(caught.is_err(), "a block panic must reach the caller");
    }

    #[test]
    fn effective_threads_is_the_pool_cap_policy() {
        let cores = nfv_pool::host_cores();
        assert_eq!(effective_threads(0, 1), 1);
        assert!(effective_threads(0, 1024) >= 1);
        // Unified policy: explicit requests are capped at host cores and
        // at the item count — oversubscription is never honored.
        assert_eq!(effective_threads(64, usize::MAX), cores.min(64));
        assert_eq!(effective_threads(3, 1), 1, "item cap applies to explicit requests");
        assert_eq!(effective_threads(0, 0), 1);
    }
}
