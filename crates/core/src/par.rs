//! Deterministic fan-out helpers for the fleet's inference hot paths.
//!
//! Scoring is embarrassingly parallel — every vPE (and every chunk of
//! windows inside a detector) is independent — but the pipeline's outputs
//! must not depend on how the work was scheduled. These helpers therefore
//! partition work into *contiguous, index-ordered* blocks, one per
//! worker, and stitch the per-block results back together in block order:
//! the result vector is exactly what a serial loop would produce, for any
//! thread count. (Training-side determinism is handled separately by the
//! `nfv_nn` trainer's shard-ordered gradient reduction.)

use std::num::NonZeroUsize;
use std::thread;

/// Resolves a requested thread count: `0` means "auto" —
/// `std::thread::available_parallelism()` capped by `cap` (typically the
/// number of independent work items, e.g. a group's size). Any explicit
/// request is honored as-is, clamped to at least 1.
pub fn effective_threads(requested: usize, cap: usize) -> usize {
    if requested == 0 {
        let cores = thread::available_parallelism().map_or(1, NonZeroUsize::get);
        cores.clamp(1, cap.max(1))
    } else {
        requested.max(1)
    }
}

/// Maps `f` over contiguous blocks of `items` on up to `threads` workers
/// and concatenates the per-block outputs in block order.
///
/// `f` receives the block's starting offset into `items` plus the block
/// slice, and returns one output per item (in item order). Because block
/// boundaries depend only on `items.len()` and `threads`-many workers
/// each own a contiguous range, the concatenated result is identical to
/// `f(0, items)` run serially. A worker panic propagates to the caller —
/// scoring has no partial-result semantics to preserve.
///
/// Requests beyond the host's core count are capped: with the output
/// independent of the worker count, oversubscribing a small box only
/// adds context-switch overhead (a `--threads 4` run on one core used
/// to be ~20% *slower* than serial).
pub fn par_blocks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let n = items.len();
    let cores = thread::available_parallelism().map_or(usize::MAX, NonZeroUsize::get);
    let workers = threads.min(cores).clamp(1, n.max(1));
    if workers <= 1 {
        return f(0, items);
    }
    let block = n.div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(block)
            .enumerate()
            .map(|(w, chunk)| {
                scope.spawn({
                    let f = &f;
                    move || f(w * block, chunk)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("par_blocks worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_blocks_matches_serial_for_every_thread_count() {
        let items: Vec<usize> = (0..23).collect();
        let serial = par_blocks(&items, 1, |off, block| {
            block.iter().enumerate().map(|(i, &x)| x * 3 + off + i).collect::<Vec<_>>()
        });
        for threads in [2, 3, 4, 8, 64] {
            let par = par_blocks(&items, threads, |off, block| {
                block.iter().enumerate().map(|(i, &x)| x * 3 + off + i).collect::<Vec<_>>()
            });
            assert_eq!(par, serial, "diverged at {threads} threads");
        }
    }

    #[test]
    fn par_blocks_offsets_are_global_indices() {
        let items = vec![(); 10];
        let idx = par_blocks(&items, 3, |off, block| (off..off + block.len()).collect::<Vec<_>>());
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn par_blocks_handles_empty_input() {
        let out: Vec<u32> = par_blocks(&[] as &[u8], 4, |_, _| Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_auto_respects_cap() {
        assert_eq!(effective_threads(0, 1), 1);
        assert!(effective_threads(0, 1024) >= 1);
        assert_eq!(effective_threads(3, 1), 3, "explicit requests are honored");
        assert_eq!(effective_threads(0, 0), 1);
    }
}
