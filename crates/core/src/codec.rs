//! The raw-log codec: raw syslog text -> signature -> dense vocabulary id.
//!
//! This is the production entry point of the pipeline: a signature tree
//! is mined from a training sample of raw message bodies (Qiu et al.'s
//! approach, §2 of the paper), and every subsequent message is matched
//! to a signature and encoded into the dense id space the models are
//! built over. Dense ids are keyed by signature *pattern* (not tree
//! index) so the tree can be re-mined after a software update without
//! invalidating the ids of already-known templates — new patterns take
//! the vocabulary's spare slots instead.

use nfv_nn::checkpoint::CheckpointError;
use nfv_syslog::vocab::UNKNOWN_ID;
use nfv_syslog::{LogRecord, LogStream, SignatureTree, SignatureTreeConfig, SyslogMessage};
use serde_json::{json, Value};
use std::collections::HashMap;

/// Serializable form of a [`LogCodec`]: the signature patterns with
/// their dense ids. The matching tree is rebuilt on load.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedCodec {
    /// `(signature pattern, dense id)` pairs.
    pub patterns: Vec<(String, usize)>,
    /// Total dense-id capacity (spare slots included).
    pub capacity: usize,
}

impl SavedCodec {
    /// JSON value form (embedded in a [`crate::bundle::ModelBundle`]).
    pub fn to_value(&self) -> Value {
        json!({
            "patterns": self
                .patterns
                .iter()
                .map(|(p, d)| (p.clone(), *d))
                .collect::<Vec<_>>(),
            "capacity": self.capacity,
        })
    }

    /// Parses the JSON value form.
    pub fn from_value(v: &Value) -> Result<Self, CheckpointError> {
        let capacity = v
            .get("capacity")
            .and_then(|c| c.as_u64())
            .ok_or_else(|| CheckpointError::MissingField("capacity".into()))?
            as usize;
        let patterns = v
            .get("patterns")
            .and_then(|p| p.as_array())
            .ok_or_else(|| CheckpointError::MissingField("patterns".into()))?
            .iter()
            .map(|pair| {
                let items = pair.as_array()?;
                if items.len() != 2 {
                    return None;
                }
                let pattern = items[0].as_str()?.to_string();
                let dense = items[1].as_u64()? as usize;
                Some((pattern, dense))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| CheckpointError::MissingField("patterns".into()))?;
        Ok(SavedCodec { patterns, capacity })
    }
}

/// Encodes raw syslog messages into dense template ids.
#[derive(Debug, Clone)]
pub struct LogCodec {
    tree: SignatureTree,
    /// signature pattern -> dense id (0 reserved for unknown).
    dense_of: HashMap<String, usize>,
    /// Tree signature id -> dense id, rebuilt with the tree so the
    /// per-message hot path avoids rendering pattern strings.
    dense_by_sig: Vec<usize>,
    capacity: usize,
}

/// Builds the signature-id -> dense-id index for a tree.
fn index_tree(tree: &SignatureTree, dense_of: &HashMap<String, usize>) -> Vec<usize> {
    tree.signatures()
        .iter()
        .map(|sig| dense_of.get(&sig.pattern()).copied().unwrap_or(UNKNOWN_ID))
        .collect()
}

impl LogCodec {
    /// Mines signatures from a training sample of messages and assigns
    /// dense ids, reserving `spare` slots for templates discovered later
    /// (e.g. after a software update).
    pub fn train(sample: &[SyslogMessage], spare: usize) -> LogCodec {
        let texts: Vec<&str> = sample.iter().map(|m| m.text.as_str()).collect();
        let tree = SignatureTree::build(&texts, &SignatureTreeConfig::default());
        let mut dense_of = HashMap::new();
        for sig in tree.signatures() {
            let next = dense_of.len() + 1; // 0 = unknown
            dense_of.insert(sig.pattern(), next);
        }
        let capacity = dense_of.len() + 1 + spare;
        let dense_by_sig = index_tree(&tree, &dense_of);
        LogCodec { tree, dense_of, dense_by_sig, capacity }
    }

    /// Total dense-id space (model vocabulary width), spare included.
    pub fn vocab_size(&self) -> usize {
        self.capacity
    }

    /// Number of dense ids assigned so far (unknown included).
    pub fn assigned(&self) -> usize {
        self.dense_of.len() + 1
    }

    /// Encodes one message body; unknown structures map to
    /// [`UNKNOWN_ID`].
    pub fn encode_text(&self, text: &str) -> usize {
        match self.tree.match_message(text) {
            Some(sig) => self.dense_by_sig.get(sig).copied().unwrap_or(UNKNOWN_ID),
            None => UNKNOWN_ID,
        }
    }

    /// Encodes a message batch into a time-sorted stream.
    pub fn encode_stream(&self, messages: &[SyslogMessage]) -> LogStream {
        LogStream::from_records(
            messages
                .iter()
                .map(|m| LogRecord { time: m.timestamp, template: self.encode_text(&m.text) })
                .collect(),
        )
    }

    /// Re-mines the signature tree over a fresh sample and assigns dense
    /// ids to *new* patterns from the spare capacity. Existing pattern
    /// ids never change. Returns the number of newly assigned patterns.
    ///
    /// This is the codec half of post-update adaptation: after a
    /// software update introduces renamed/reshaped messages, `refresh`
    /// makes them first-class template ids so the fine-tuned model can
    /// learn them instead of seeing a wall of `UNKNOWN`.
    pub fn refresh(&mut self, sample: &[SyslogMessage]) -> usize {
        let texts: Vec<&str> = sample.iter().map(|m| m.text.as_str()).collect();
        let new_tree = SignatureTree::build(&texts, &SignatureTreeConfig::default());
        let mut assigned = 0usize;
        for sig in new_tree.signatures() {
            let pattern = sig.pattern();
            if self.dense_of.contains_key(&pattern) {
                continue;
            }
            // A small sample can re-mine a *narrower* variant of a known
            // template (a wildcard position that happened to be constant
            // that week). Assigning it a fresh id would silently split a
            // known template across two dense ids, so skip any pattern
            // whose instances the existing tree already matches.
            if self.tree.match_message(&pattern).is_some() {
                continue;
            }
            if self.assigned() < self.capacity {
                let next = self.dense_of.len() + 1;
                self.dense_of.insert(pattern, next);
                assigned += 1;
            }
        }
        // Merge: keep every old signature the tree knew (patterns with
        // dense ids must stay matchable) plus the fresh ones. Rebuilding
        // from the union of pattern corpora keeps matching consistent.
        let mut corpus: Vec<String> = self.dense_of.keys().cloned().collect();
        corpus.sort(); // deterministic tree construction
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        // Patterns contain `*` wildcards as literal tokens; the tree
        // treats them as ordinary words, and `encode_text` resolves via
        // pattern lookup, so matching stays exact for known structures.
        self.tree = SignatureTree::build(
            &refs,
            &SignatureTreeConfig { min_group: 1, ..Default::default() },
        );
        self.dense_by_sig = index_tree(&self.tree, &self.dense_of);
        assigned
    }

    /// Returns the signature pattern behind a dense id (`None` for the
    /// unknown id or unused slots).
    pub fn pattern_of(&self, dense: usize) -> Option<&str> {
        self.dense_of.iter().find(|(_, &d)| d == dense).map(|(p, _)| p.as_str())
    }

    /// Serializes the codec (patterns + dense-id assignment).
    pub fn to_saved(&self) -> SavedCodec {
        let mut patterns: Vec<(String, usize)> =
            self.dense_of.iter().map(|(p, &d)| (p.clone(), d)).collect();
        patterns.sort_by_key(|(_, d)| *d);
        SavedCodec { patterns, capacity: self.capacity }
    }

    /// Restores a codec from its serialized form, rebuilding the
    /// matching tree from the stored patterns.
    pub fn from_saved(saved: &SavedCodec) -> LogCodec {
        let dense_of: HashMap<String, usize> = saved.patterns.iter().cloned().collect();
        let mut corpus: Vec<&str> = saved.patterns.iter().map(|(p, _)| p.as_str()).collect();
        corpus.sort_unstable();
        let tree = SignatureTree::build(
            &corpus,
            &SignatureTreeConfig { min_group: 1, ..Default::default() },
        );
        let dense_by_sig = index_tree(&tree, &dense_of);
        LogCodec { tree, dense_of, dense_by_sig, capacity: saved.capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_syslog::message::Severity;

    fn msg(text: &str, time: u64) -> SyslogMessage {
        SyslogMessage {
            timestamp: time,
            host: "vpe00".to_string(),
            process: "rpd".to_string(),
            severity: Severity::Info,
            text: text.to_string(),
        }
    }

    fn sample() -> Vec<SyslogMessage> {
        let mut msgs = Vec::new();
        for i in 0..30 {
            msgs.push(msg(&format!("BGP peer 10.0.{}.1 session established", i), i));
            msgs.push(msg(&format!("interface xe-0/0/{} carrier up", i % 8), i + 100));
        }
        msgs
    }

    #[test]
    fn encode_is_consistent_per_template() {
        let codec = LogCodec::train(&sample(), 4);
        let a = codec.encode_text("BGP peer 99.99.99.99 session established");
        let b = codec.encode_text("BGP peer 1.2.3.4 session established");
        let c = codec.encode_text("interface xe-3/1/7 carrier up");
        assert_ne!(a, UNKNOWN_ID);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_text_maps_to_unknown_id() {
        let codec = LogCodec::train(&sample(), 0);
        assert_eq!(codec.encode_text("totally novel words that never appeared"), UNKNOWN_ID);
    }

    #[test]
    fn encode_stream_preserves_times() {
        let codec = LogCodec::train(&sample(), 0);
        let stream = codec.encode_stream(&sample());
        assert_eq!(stream.len(), 60);
        assert!(stream.records().windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn refresh_assigns_spare_slots_to_new_patterns() {
        let mut codec = LogCodec::train(&sample(), 8);
        let before = codec.assigned();
        let old_id = codec.encode_text("BGP peer 1.2.3.4 session established");

        // A software update introduces a new message shape.
        let new_msgs: Vec<SyslogMessage> = (0..20)
            .map(|i| msg(&format!("telemetry sensor group {} export started", i), i))
            .collect();
        let assigned = codec.refresh(&new_msgs);
        assert!(assigned >= 1, "new pattern should claim a spare slot");
        assert_eq!(codec.assigned(), before + assigned);

        // Old templates keep their ids; the new one now encodes.
        assert_eq!(codec.encode_text("BGP peer 9.9.9.9 session established"), old_id);
        let new_id = codec.encode_text("telemetry sensor group 7 export started");
        assert_ne!(new_id, UNKNOWN_ID);
        assert_ne!(new_id, old_id);
    }

    #[test]
    fn saved_codec_roundtrip_preserves_encoding() {
        let codec = LogCodec::train(&sample(), 4);
        let restored = LogCodec::from_saved(&codec.to_saved());
        assert_eq!(restored.vocab_size(), codec.vocab_size());
        assert_eq!(restored.assigned(), codec.assigned());
        for text in [
            "BGP peer 172.16.0.9 session established",
            "interface xe-1/0/2 carrier up",
            "never seen words at all here",
        ] {
            assert_eq!(restored.encode_text(text), codec.encode_text(text), "{}", text);
        }
        // JSON serializable both ways.
        let json = codec.to_saved().to_value().to_string();
        let back = SavedCodec::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, codec.to_saved());
    }

    #[test]
    fn refresh_ignores_narrower_variants_of_known_templates() {
        let mut codec = LogCodec::train(&sample(), 4);
        let before = codec.assigned();
        let old_id = codec.encode_text("interface xe-0/0/1 carrier up");
        assert_ne!(old_id, UNKNOWN_ID);

        // A week where only interface 'xe-0/0/3' appears: the re-mined
        // pattern is narrower but structurally known.
        let week: Vec<SyslogMessage> =
            (0..20).map(|i| msg("interface xe-0/0/3 carrier up", i)).collect();
        let assigned = codec.refresh(&week);
        assert_eq!(assigned, 0, "narrower variant must not take a spare slot");
        assert_eq!(codec.assigned(), before);
        assert_eq!(codec.encode_text("interface xe-0/0/7 carrier up"), old_id);
    }

    #[test]
    fn refresh_without_capacity_leaves_new_patterns_unknown() {
        let mut codec = LogCodec::train(&sample(), 0);
        let new_msgs: Vec<SyslogMessage> =
            (0..20).map(|i| msg(&format!("brand new shape number {}", i), i)).collect();
        let assigned = codec.refresh(&new_msgs);
        assert_eq!(assigned, 0);
        assert_eq!(codec.encode_text("brand new shape number 5"), UNKNOWN_ID);
    }
}
