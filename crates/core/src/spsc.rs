//! Bounded single-producer/single-consumer ring buffers.
//!
//! The serving runtime ([`crate::serve`]) moves raw syslog lines from
//! ingest threads to the scorer through one of these per feed. The
//! design goals are the runtime's robustness invariants:
//!
//! * **bounded** — capacity is fixed at construction and all slot
//!   storage is allocated up front; the ring can never grow, so a
//!   misbehaving producer cannot exhaust memory;
//! * **non-blocking** — [`Producer::push`] fails fast with the rejected
//!   item when the ring is full and [`Consumer::pop`] returns `None`
//!   when it is empty; neither side ever waits on the other;
//! * **allocation-free steady state** — pushing and popping move values
//!   in and out of preallocated slots; the ring itself performs no
//!   allocation after construction.
//!
//! This is the classic Lamport queue: a power-of-two slot array indexed
//! by two monotonically increasing counters. The producer owns `head`
//! (write position), the consumer owns `tail` (read position), and each
//! side only ever *reads* the other's counter, so a single Acquire /
//! Release pair per operation is enough — no locks, no CAS loops.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads an atomic counter to its own cache line so the producer's and
/// consumer's counters never false-share.
#[repr(align(64))]
struct CacheLine(AtomicUsize);

struct Ring<T> {
    /// `capacity - 1`; capacity is a power of two so masking replaces
    /// modulo.
    mask: usize,
    /// Next slot the producer will write (monotonic, wraps via masking).
    head: CacheLine,
    /// Next slot the consumer will read (monotonic, wraps via masking).
    tail: CacheLine,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// Safety: the producer side only writes slots in `[tail, head)`'s
// complement and the consumer only reads `[tail, head)`; the Release
// store on each counter publishes the slot contents to the other side
// before the index that makes them visible.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drop any items still queued. Both handles are gone (the Arc
        // reached zero), so plain loads are sufficient.
        let head = self.head.0.load(Ordering::Relaxed);
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        while tail != head {
            unsafe { (*self.slots[tail & self.mask].get()).assume_init_drop() };
            tail = tail.wrapping_add(1);
        }
    }
}

/// The producer half of a bounded SPSC ring. Not clonable; exactly one
/// thread may push.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

/// The consumer half of a bounded SPSC ring. Not clonable; exactly one
/// thread may pop.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

/// Creates a bounded SPSC ring holding at least `capacity` items
/// (rounded up to the next power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        mask: cap - 1,
        head: CacheLine(AtomicUsize::new(0)),
        tail: CacheLine(AtomicUsize::new(0)),
        slots,
    });
    (Producer { ring: Arc::clone(&ring) }, Consumer { ring })
}

impl<T> Producer<T> {
    /// Capacity of the ring (fixed at construction).
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Attempts to enqueue `item` without blocking. On a full ring the
    /// item is handed back so the caller can apply its overload policy
    /// (count and drop, typically) instead of waiting.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        let tail = ring.tail.0.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > ring.mask {
            return Err(item);
        }
        unsafe { (*ring.slots[head & ring.mask].get()).write(item) };
        ring.head.0.store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items currently queued, from the producer's view (may lag the
    /// consumer by the time the caller acts on it).
    pub fn occupancy(&self) -> usize {
        let head = self.ring.head.0.load(Ordering::Relaxed);
        let tail = self.ring.tail.0.load(Ordering::Acquire);
        head.wrapping_sub(tail)
    }
}

impl<T> Consumer<T> {
    /// Capacity of the ring (fixed at construction).
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Dequeues the oldest item, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let tail = ring.tail.0.load(Ordering::Relaxed);
        let head = ring.head.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let item = unsafe { (*ring.slots[tail & ring.mask].get()).assume_init_read() };
        ring.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Items currently queued, from the consumer's view (a concurrent
    /// producer may have pushed more by the time the caller acts on it).
    pub fn occupancy(&self) -> usize {
        let tail = self.ring.tail.0.load(Ordering::Relaxed);
        let head = self.ring.head.0.load(Ordering::Acquire);
        head.wrapping_sub(tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_rounding() {
        let (mut tx, mut rx) = ring::<u32>(3);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "5th push must be rejected, not queued");
        assert_eq!(rx.occupancy(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wraps_around_many_times_without_corruption() {
        let (mut tx, mut rx) = ring::<usize>(8);
        let mut next_out = 0usize;
        for i in 0..10_000 {
            tx.push(i).unwrap();
            if i % 3 == 0 {
                // Drain a couple to keep the ring partially full while
                // the indices wrap the slot array over and over.
                for _ in 0..2 {
                    if let Some(v) = rx.pop() {
                        assert_eq!(v, next_out);
                        next_out += 1;
                    }
                }
            } else {
                assert_eq!(rx.pop(), Some(next_out));
                next_out += 1;
            }
        }
        while let Some(v) = rx.pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, 10_000);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let (mut tx, mut rx) = ring::<String>(2);
        tx.push("a".into()).unwrap();
        tx.push("b".into()).unwrap();
        let back = tx.push("c".into());
        assert_eq!(back, Err("c".to_string()));
        assert_eq!(rx.pop().as_deref(), Some("a"));
        tx.push("d".into()).unwrap();
        assert_eq!(rx.pop().as_deref(), Some("b"));
        assert_eq!(rx.pop().as_deref(), Some("d"));
    }

    #[test]
    fn queued_items_are_dropped_with_the_ring() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, mut rx) = ring::<Counted>(4);
            for _ in 0..3 {
                tx.push(Counted).unwrap();
            }
            drop(rx.pop()); // one dropped by the consumer
        }
        // ... and the two still queued dropped with the ring itself.
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn two_thread_stress_preserves_every_item_in_order() {
        let (mut tx, mut rx) = ring::<u64>(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut rejected = 0u64;
            let mut i = 0;
            while i < N {
                match tx.push(i) {
                    Ok(()) => i += 1,
                    Err(_) => {
                        rejected += 1;
                        std::hint::spin_loop();
                    }
                }
            }
            rejected
        });
        let mut expect = 0u64;
        while expect < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expect, "items must arrive in push order");
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert_eq!(rx.pop(), None);
        let rejected = producer.join().unwrap();
        // The test is only meaningful if the ring actually filled at
        // some point; with a 64-slot ring and 200k items it always does.
        assert!(rejected > 0, "stress run never exercised the full-ring path");
    }
}
