//! The end-to-end runtime pipeline and the paper's monthly evaluation
//! protocol (§5.1):
//!
//! 1. mine the template codec from the first month of raw logs;
//! 2. optionally group vPEs by syslog-distribution similarity
//!    (customization, §4.3) and pool each group's data;
//! 3. train one detector per group on ticket-free month-0 data;
//! 4. for every following month: score that month, then update the
//!    model with the month's (ticket-free) data;
//! 5. when the false-alarm rate surges (software update!), refresh the
//!    codec and run transfer-learning adaptation on one week of fresh
//!    data (when adaptation is enabled).
//!
//! The pipeline emits raw scored events per vPE per month;
//! [`crate::eval`] turns them into PR curves, monthly F-measures and
//! per-ticket-type detection rates.
//!
//! ## Crash safety
//!
//! With [`CheckpointConfig::dir`] set, the pipeline atomically writes a
//! generation-numbered checkpoint after the initial fit (generation 0)
//! and after each completed month `m` (generation `m`), and
//! [`CheckpointConfig::resume`] continues an interrupted run from the
//! newest intact generation. Resume is **bit-identical**: detector
//! parameters and RNG positions are restored exactly, and the codec and
//! encoded streams are rebuilt by replaying the recorded adaptation
//! schedule against the trace, then verified against the checkpoint.
//! See [`crate::pipeline_ckpt`] for the on-disk format.
//!
//! [`CheckpointConfig::crash`] injects deterministic crashes at month
//! boundaries (including torn mid-save writes) so the recovery path is
//! testable without killing the process.

use crate::baselines::{
    AutoencoderConfig, AutoencoderDetector, OcsvmDetector, OcsvmDetectorConfig, PcaDetector,
    PcaDetectorConfig,
};
use crate::codec::LogCodec;
use crate::detector::{AnomalyDetector, ScoredEvent};
use crate::group_store::{GroupModelStore, VpeCursor};
use crate::grouping::Grouping;
use crate::gru_detector::{GruDetector, GruDetectorConfig};
use crate::hmm_detector::{HmmDetector, HmmDetectorConfig};
use crate::lstm_detector::{LstmDetector, LstmDetectorConfig};
use crate::mapping::{map_clusters, warning_clusters, MappingConfig};
use crate::par;
use crate::pipeline_ckpt;
use nfv_nn::checkpoint::CheckpointError;
use nfv_simnet::{FleetTrace, Ticket, TicketCause};
use nfv_syslog::time::{month_start, DAY};
use nfv_syslog::{LogRecord, LogStream, SyslogMessage};
use std::fmt;
use std::path::PathBuf;

/// Which detector family the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// The paper's LSTM detector.
    Lstm,
    /// GRU next-template detector (detector-zoo extension).
    Gru,
    /// Autoencoder baseline.
    Autoencoder,
    /// One-Class SVM baseline.
    Ocsvm,
    /// PCA residual detector (extension).
    Pca,
    /// Discrete-HMM detector (related-work extension).
    Hmm,
}

/// A deterministic crash-injection point for the recovery test harness.
///
/// Injected crashes surface as [`PipelineError::CrashInjected`] instead
/// of killing the process, so tests (and the CI smoke script) observe
/// exactly the on-disk state a real crash at that point would leave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash immediately after month `m`'s boundary work — including its
    /// checkpoint — completes. `AfterMonth(0)` crashes right after the
    /// initial fit and its generation-0 checkpoint.
    AfterMonth(usize),
    /// Crash *during* the checkpoint save at month `m`'s boundary,
    /// leaving a torn (truncated) file in place of generation `m` — the
    /// non-atomic failure mode resume must fall back from.
    MidSave(usize),
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashPoint::AfterMonth(m) => write!(f, "after month {} boundary", m),
            CrashPoint::MidSave(m) => write!(f, "mid-save at month {} boundary", m),
        }
    }
}

/// Typed failure modes of [`run_pipeline`].
#[derive(Debug)]
pub enum PipelineError {
    /// The trace has fewer than two months (train + test).
    TooFewMonths {
        /// Months the trace actually covers.
        months: usize,
    },
    /// Checkpoint persistence failed (i/o, malformed state).
    Checkpoint(CheckpointError),
    /// A checkpoint was found but cannot continue this run: it was
    /// written under a different configuration or trace, or its replayed
    /// state failed verification.
    ResumeMismatch(String),
    /// An injected [`CrashPoint`] fired (test harness only).
    CrashInjected(CrashPoint),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::TooFewMonths { months } => {
                write!(f, "need at least two months (train + test), trace has {}", months)
            }
            PipelineError::Checkpoint(e) => write!(f, "pipeline checkpoint failed: {}", e),
            PipelineError::ResumeMismatch(msg) => write!(f, "cannot resume: {}", msg),
            PipelineError::CrashInjected(p) => write!(f, "injected crash fired {}", p),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for PipelineError {
    fn from(e: CheckpointError) -> Self {
        PipelineError::Checkpoint(e)
    }
}

/// Crash-safety knobs of the monthly pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Checkpoint directory. `None` disables checkpointing entirely.
    pub dir: Option<PathBuf>,
    /// Write a checkpoint every N completed months (generation 0, after
    /// the initial fit, is always written). Values below 1 behave as 1.
    pub every: usize,
    /// Checkpoint generations retained on disk; older ones are pruned.
    /// At least 2 are needed for torn-write fallback; 0 behaves as the
    /// default.
    pub keep: usize,
    /// Resume from the newest intact generation in `dir` when present
    /// (a fresh run otherwise).
    pub resume: bool,
    /// Deterministic crash injection for the recovery test harness.
    pub crash: Option<CrashPoint>,
    /// Save attempts per boundary before the checkpoint is skipped
    /// (warn-and-continue). Values below 1 behave as 1.
    pub retry_attempts: u32,
    /// Backoff before the first retry, doubling per attempt.
    pub retry_backoff_ms: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            dir: None,
            every: 1,
            keep: 3,
            resume: false,
            crash: None,
            retry_attempts: 3,
            retry_backoff_ms: 10,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Detector family.
    pub detector: DetectorKind,
    /// Enable vPE grouping (customization). Disabled = one global model.
    pub customize: bool,
    /// Enable post-update transfer-learning adaptation.
    pub adapt: bool,
    /// Anomaly-to-ticket mapping parameters.
    pub mapping: MappingConfig,
    /// Spare vocabulary slots reserved for post-update templates.
    pub spare_vocab: usize,
    /// Messages sampled for codec mining.
    pub codec_sample: usize,
    /// Exclusion margin around tickets for training data (§4.2: 3 days).
    pub train_exclusion: u64,
    /// Amount of fresh data used by one adaptation (1 week).
    pub adapt_span: u64,
    /// False-alarm surge factor that triggers adaptation.
    pub fa_surge_factor: f32,
    /// Quantile of training scores used as the online trigger threshold.
    pub trigger_quantile: f32,
    /// LSTM hyper-parameters (vocab is overwritten from the codec).
    pub lstm: LstmDetectorConfig,
    /// GRU hyper-parameters (vocab overwritten).
    pub gru: GruDetectorConfig,
    /// Autoencoder hyper-parameters (vocab overwritten).
    pub autoencoder: AutoencoderConfig,
    /// OC-SVM hyper-parameters (vocab overwritten).
    pub ocsvm: OcsvmDetectorConfig,
    /// PCA hyper-parameters (vocab overwritten).
    pub pca: PcaDetectorConfig,
    /// HMM hyper-parameters (vocab overwritten).
    pub hmm: HmmDetectorConfig,
    /// Crash-safe checkpointing and resume.
    pub checkpoint: CheckpointConfig,
    /// Full [`MonthScores`] kept in memory (and in checkpoints): `0`
    /// retains every month (the default, what the paper's evaluation
    /// needs), `n > 0` retains only the trailing `n` months while
    /// [`MonthRollup`]s keep a bounded per-month summary for all of
    /// them. Retention is operational — it never changes scores,
    /// adaptation decisions or detector trajectories, which depend only
    /// on the current month.
    pub retain_months: usize,
    /// Worker threads for training shards and per-vPE scoring fan-out.
    /// `0` = auto (`available_parallelism` capped by the fleet size).
    /// Every value produces bit-identical results — threads are pure
    /// scheduling, never part of the trajectory.
    pub threads: usize,
    /// Grouping seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            detector: DetectorKind::Lstm,
            customize: true,
            adapt: true,
            mapping: MappingConfig::default(),
            spare_vocab: 24,
            codec_sample: 30_000,
            train_exclusion: 3 * DAY,
            adapt_span: 7 * DAY,
            fa_surge_factor: 4.0,
            trigger_quantile: 0.995,
            lstm: LstmDetectorConfig::default(),
            gru: GruDetectorConfig::default(),
            autoencoder: AutoencoderConfig::default(),
            ocsvm: OcsvmDetectorConfig::default(),
            pca: PcaDetectorConfig::default(),
            hmm: HmmDetectorConfig::default(),
            checkpoint: CheckpointConfig::default(),
            retain_months: 0,
            threads: 0,
            seed: 1,
        }
    }
}

/// Scored events for one tested month.
#[derive(Debug, Clone)]
pub struct MonthScores {
    /// Zero-based month index.
    pub month: usize,
    /// Scored events per vPE.
    pub per_vpe: Vec<Vec<ScoredEvent>>,
}

/// Bounded per-month summary kept for *every* tested month, even when
/// [`PipelineConfig::retain_months`] drops the full per-vPE score
/// vectors: a fixed handful of scalars per month instead of O(events).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonthRollup {
    /// Zero-based month index.
    pub month: usize,
    /// Scored events across the fleet this month.
    pub events: u64,
    /// Highest anomaly score this month (0 when no events).
    pub max_score: f32,
    /// Mean anomaly score this month (0 when no events).
    pub mean_score: f32,
}

impl MonthRollup {
    /// Summarizes one month's per-vPE score vectors.
    pub fn summarize(month: usize, per_vpe: &[Vec<ScoredEvent>]) -> MonthRollup {
        let mut events = 0u64;
        let mut max_score = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        for e in per_vpe.iter().flatten() {
            events += 1;
            max_score = max_score.max(e.score);
            sum += e.score as f64;
        }
        MonthRollup {
            month,
            events,
            max_score: if events == 0 { 0.0 } else { max_score },
            mean_score: if events == 0 { 0.0 } else { (sum / events as f64) as f32 },
        }
    }
}

/// A noteworthy condition the pipeline surfaced while running (carried
/// in [`PipelineRun::events`] and persisted across resume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineEvent {
    /// A group produced *no* scores during trigger calibration, so its
    /// adaptation trigger was set to `+inf` — the false-alarm surge
    /// check cannot fire for that group until a later recalibration
    /// succeeds. Month 0 is the initial calibration.
    EmptyCalibration {
        /// Month whose scores were used for the calibration.
        month: usize,
        /// Group whose calibration was empty.
        group: usize,
    },
    /// A month boundary's checkpoint save failed every retry attempt
    /// and was skipped: the run continued, but a crash before the next
    /// successful save resumes from an older generation (replaying the
    /// months in between). The retry ledger for a run is the set of
    /// these events in [`PipelineRun::events`].
    CheckpointSkipped {
        /// Month whose boundary checkpoint was skipped.
        month: usize,
        /// Save attempts made (the configured retry budget).
        attempts: u32,
    },
}

/// The pipeline's output: everything the evaluation needs.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Full scores for the retained tested months — every month when
    /// [`PipelineConfig::retain_months`] is 0 (the default), otherwise
    /// only the trailing window.
    pub months: Vec<MonthScores>,
    /// Bounded summary of *every* tested month, retained or not.
    pub rollups: Vec<MonthRollup>,
    /// Copy of the evaluated (non-maintenance) tickets.
    pub tickets: Vec<Ticket>,
    /// Months at which adaptation fired, per group.
    pub adaptations: Vec<(usize, usize)>,
    /// The grouping used.
    pub grouping: Grouping,
    /// Vocabulary width of the codec.
    pub vocab: usize,
    /// Per-vPE scheduled-maintenance windows `[report, repair]`.
    /// Warning clusters inside these windows are suppressed by the
    /// evaluation: maintenance is pre-scheduled, expected work (§3.2),
    /// so its chatter is mapped to the maintenance ticket rather than
    /// counted as a false alarm.
    pub suppression: Vec<Vec<(u64, u64)>>,
    /// Conditions surfaced during the run (empty calibrations, ...).
    pub events: Vec<PipelineEvent>,
}

impl PipelineRun {
    /// All scored events of one vPE across *retained* tested months,
    /// time-ordered.
    pub fn events_for(&self, vpe: usize) -> Vec<ScoredEvent> {
        let mut out: Vec<ScoredEvent> =
            self.months.iter().flat_map(|m| m.per_vpe[vpe].iter().copied()).collect();
        out.sort_by_key(|e| e.time);
        out
    }

    /// Number of vPEs.
    pub fn n_vpes(&self) -> usize {
        self.months.first().map_or(0, |m| m.per_vpe.len())
    }
}

/// Removes records inside `[report - exclusion, repair]` of any ticket
/// of the vPE (used to build "normal" training data). This follows the
/// paper's §4.2 rule — "we do not use any syslog data that is generated
/// within 3 days from a ticket generation to the time that the ticket is
/// marked as resolved" — i.e. the margin extends *before* the report;
/// the window closes at repair time. Both boundaries are inclusive.
pub fn ticket_free(
    stream: &LogStream,
    tickets: &[&Ticket],
    exclusion: u64,
    start: u64,
    end: u64,
) -> LogStream {
    let intervals: Vec<(u64, u64)> =
        tickets.iter().map(|t| (t.report_time.saturating_sub(exclusion), t.repair_time)).collect();
    let records: Vec<LogRecord> = stream
        .slice_time(start, end)
        .iter()
        .filter(|r| !intervals.iter().any(|&(lo, hi)| r.time >= lo && r.time <= hi))
        .copied()
        .collect();
    LogStream::from_records(records)
}

pub(crate) fn build_detector(
    cfg: &PipelineConfig,
    vocab: usize,
    group: usize,
    threads: usize,
) -> Box<dyn AnomalyDetector> {
    match cfg.detector {
        DetectorKind::Lstm => {
            let mut c = cfg.lstm.clone();
            c.vocab = vocab;
            c.threads = threads;
            c.seed ^= (group as u64) << 17;
            Box::new(LstmDetector::new(c))
        }
        DetectorKind::Gru => {
            let mut c = cfg.gru.clone();
            c.vocab = vocab;
            c.threads = threads;
            c.seed ^= (group as u64) << 17;
            Box::new(GruDetector::new(c))
        }
        DetectorKind::Autoencoder => {
            let mut c = cfg.autoencoder.clone();
            c.vocab = vocab;
            c.threads = threads;
            c.seed ^= (group as u64) << 17;
            Box::new(AutoencoderDetector::new(c))
        }
        DetectorKind::Ocsvm => {
            let mut c = cfg.ocsvm.clone();
            c.vocab = vocab;
            c.seed ^= (group as u64) << 17;
            Box::new(OcsvmDetector::new(c))
        }
        DetectorKind::Pca => {
            let mut c = cfg.pca.clone();
            c.vocab = vocab;
            c.seed ^= (group as u64) << 17;
            Box::new(PcaDetector::new(c))
        }
        DetectorKind::Hmm => {
            let mut c = cfg.hmm.clone();
            c.vocab = vocab;
            c.seed ^= (group as u64) << 17;
            Box::new(HmmDetector::new(c))
        }
    }
}

/// Quantile of the score distribution (used for the adaptation trigger).
/// `None` when there are no scores at all.
fn score_quantile(events: &[Vec<ScoredEvent>], q: f32) -> Option<f32> {
    let scores: Vec<f32> = events.iter().flat_map(|v| v.iter().map(|e| e.score)).collect();
    nfv_tensor::stats::quantile(&scores, q)
}

/// Trigger calibration that *surfaces* the empty-scores case instead of
/// silently disabling adaptation: an empty calibration still yields
/// `+inf` (there is no meaningful threshold), but the condition is
/// logged and recorded as a [`PipelineEvent::EmptyCalibration`].
fn calibrate_trigger(
    scores: &[Vec<ScoredEvent>],
    q: f32,
    month: usize,
    group: usize,
    events: &mut Vec<PipelineEvent>,
) -> f32 {
    match score_quantile(scores, q) {
        Some(t) => t,
        None => {
            eprintln!(
                "pipeline: warning: group {} produced no scores for trigger calibration \
                 at month {}; its adaptation trigger is disabled (+inf) until a later \
                 recalibration succeeds",
                group, month
            );
            events.push(PipelineEvent::EmptyCalibration { month, group });
            f32::INFINITY
        }
    }
}

/// Everything the monthly loop mutates: the live state of a run between
/// month boundaries. Checkpoints capture it; resume reconstructs it.
///
/// Ownership split (the fleet-scale memory model, see DESIGN.md): the
/// interned template codec is stored once, all per-*group* learned
/// state lives in the [`GroupModelStore`], and each vPE owns only its
/// trimmed encoded stream plus a compact [`VpeCursor`].
pub(crate) struct PipelineState {
    pub codec: LogCodec,
    pub cursor: Vec<VpeCursor>,
    pub streams: Vec<LogStream>,
    pub store: GroupModelStore,
    pub months: Vec<MonthScores>,
    pub rollups: Vec<MonthRollup>,
    pub adaptations: Vec<(usize, usize)>,
    pub events: Vec<PipelineEvent>,
    /// First month the loop still has to run (`completed + 1`).
    pub next_month: usize,
}

/// Mines the template codec from a month-0 sample. The sample
/// interleaves across vPEs (up to an equal share each) so that every
/// behaviour group's templates are mined; a plain prefix would fill the
/// cap from the first few vPEs only and leave other groups' templates
/// unmined (encoding to UNKNOWN fleet-wide).
pub(crate) fn mine_codec(trace: &FleetTrace, cfg: &PipelineConfig) -> LogCodec {
    let n_vpes = trace.config.n_vpes;
    let month1_end = month_start(1);
    let per_vpe_budget = (cfg.codec_sample / n_vpes).max(1);
    let mut sample = Vec::new();
    for vpe in 0..n_vpes {
        sample.extend(
            trace
                .messages(vpe)
                .iter()
                .take_while(|m| m.timestamp < month1_end)
                .take(per_vpe_budget)
                .cloned(),
        );
    }
    LogCodec::train(&sample, cfg.spare_vocab)
}

/// Encodes every vPE's month 0 and returns the per-vPE cursors.
/// Streams are encoded incrementally (month by month) because the codec
/// can gain templates at adaptation time; `trace.messages(vpe)` is
/// time-sorted, so each vPE keeps a cursor of how far it has been
/// encoded and month boundaries are found by binary search.
pub(crate) fn encode_month0(
    trace: &FleetTrace,
    codec: &LogCodec,
) -> (Vec<VpeCursor>, Vec<LogStream>) {
    let n_vpes = trace.config.n_vpes;
    let month1_end = month_start(1);
    let mut cursor = vec![VpeCursor::default(); n_vpes];
    let streams = (0..n_vpes)
        .map(|vpe| {
            let msgs = trace.messages(vpe);
            cursor[vpe].consumed = msgs.partition_point(|m| m.timestamp < month1_end);
            codec.encode_stream(&msgs[..cursor[vpe].consumed])
        })
        .collect();
    (cursor, streams)
}

/// Appends the raw messages up to `m_end` to every stream, encoded with
/// the current codec. The cursor already sits at the previous boundary,
/// so the new slice is found by one binary search and appended in place.
pub(crate) fn append_month(
    trace: &FleetTrace,
    codec: &LogCodec,
    streams: &mut [LogStream],
    cursor: &mut [VpeCursor],
    m_end: u64,
) {
    for (vpe, stream) in streams.iter_mut().enumerate() {
        let msgs = trace.messages(vpe);
        let hi = msgs.partition_point(|msg| msg.timestamp < m_end);
        stream.append(codec.encode_stream(&msgs[cursor[vpe].consumed..hi]));
        cursor[vpe].consumed = hi;
    }
}

/// The number of trailing records a trimmed stream must keep before a
/// month boundary so scoring the next month is bit-identical to scoring
/// against full history: the detector family's window length (the k
/// records preceding an in-month target / the width ending at it) plus
/// one more record, because [`LogStream::windows_in`] reads a window's
/// *predecessor* for the first element's gap feature — a record that
/// lands at index 0 would silently switch to the self-gap-0 rule.
pub(crate) fn scoring_context(cfg: &PipelineConfig) -> usize {
    let window = match cfg.detector {
        DetectorKind::Lstm => cfg.lstm.window,
        DetectorKind::Gru => cfg.gru.window,
        DetectorKind::Autoencoder => cfg.autoencoder.windowing.width,
        DetectorKind::Ocsvm => cfg.ocsvm.windowing.width,
        DetectorKind::Pca => cfg.pca.windowing.width,
        DetectorKind::Hmm => cfg.hmm.window,
    };
    window + 1
}

/// Trims every stream to its last `margin` records, advancing the
/// cursors' trimmed offsets. Run at each month boundary before the new
/// month is appended: everything older than the scoring context has
/// already been scored and trained on, and every later consumer (month
/// scoring, adaptation's in-month slices, monthly update) reads only
/// in-month data plus that context — so per-vPE memory stays O(month),
/// not O(history), with bit-identical results.
pub(crate) fn trim_streams(streams: &mut [LogStream], cursor: &mut [VpeCursor], margin: usize) {
    for (stream, cur) in streams.iter_mut().zip(cursor.iter_mut()) {
        let len = stream.len();
        if len > margin {
            let drop = len - margin;
            stream.drop_front(drop);
            cur.trimmed += drop;
        }
    }
}

/// Pools one group's raw messages over `[m_start, week_end)` — the fresh
/// sample an adaptation refreshes the codec with.
pub(crate) fn collect_week(
    trace: &FleetTrace,
    members_g: &[usize],
    m_start: u64,
    week_end: u64,
) -> Vec<SyslogMessage> {
    let mut week_msgs = Vec::new();
    for &v in members_g {
        let msgs = trace.messages(v);
        let lo = msgs.partition_point(|msg| msg.timestamp < m_start);
        let wk = msgs.partition_point(|msg| msg.timestamp < week_end);
        week_msgs.extend_from_slice(&msgs[lo..wk]);
    }
    week_msgs
}

/// Re-encodes one group's *retained* history up to `m_end` after a
/// codec refresh (ids of known templates are stable; only new ones
/// change). The codec maps each message to one record, so re-encoding
/// `msgs[trimmed..hi]` equals re-encoding the full history and dropping
/// the trimmed prefix — the trim offset is untouched and the cursor is
/// re-anchored to the boundary.
pub(crate) fn reencode_members(
    trace: &FleetTrace,
    codec: &LogCodec,
    streams: &mut [LogStream],
    cursor: &mut [VpeCursor],
    members_g: &[usize],
    m_end: u64,
) {
    for &v in members_g {
        let msgs = trace.messages(v);
        let hi = msgs.partition_point(|msg| msg.timestamp < m_end);
        streams[v] = codec.encode_stream(&msgs[cursor[v].trimmed..hi]);
        cursor[v].consumed = hi;
    }
}

/// Fingerprint binding a checkpoint to its configuration and trace.
/// Thread counts and the checkpoint knobs themselves are zeroed out
/// first: they are pure scheduling/operational settings that never
/// change the trajectory, so resuming with a different thread count or
/// checkpoint cadence is sound (and tested).
pub(crate) fn fingerprint(trace: &FleetTrace, cfg: &PipelineConfig) -> u64 {
    let mut c = cfg.clone();
    c.threads = 0;
    c.lstm.threads = 0;
    c.gru.threads = 0;
    c.autoencoder.threads = 0;
    c.checkpoint = CheckpointConfig::default();
    // Retention is operational too: it bounds what is *kept*, never
    // what is computed, so a resumed run may change it freely.
    c.retain_months = 0;
    let total_msgs: usize = (0..trace.config.n_vpes).map(|v| trace.messages(v).len()).sum();
    let desc = format!(
        "{:?}|vpes={} months={} msgs={} tickets={}",
        c,
        trace.config.n_vpes,
        trace.config.months,
        total_msgs,
        trace.tickets.len()
    );
    nfv_nn::checkpoint::fnv1a64(desc.as_bytes())
}

/// Builds the run's initial state: codec, month-0 streams, grouping,
/// per-group initial fits and trigger calibration.
fn init_state(trace: &FleetTrace, cfg: &PipelineConfig, threads: usize) -> PipelineState {
    let n_vpes = trace.config.n_vpes;
    let month1_end = month_start(1);

    let codec = mine_codec(trace, cfg);
    let vocab = codec.vocab_size();
    let (cursor, streams) = encode_month0(trace, &codec);

    let grouping = if cfg.customize {
        Grouping::cluster(&streams, vocab, 0, month1_end, 2..=6, cfg.seed)
    } else {
        Grouping::single(n_vpes)
    };
    let members = grouping.members();

    let all_tickets: Vec<Vec<&Ticket>> = (0..n_vpes).map(|v| trace.tickets_for(v)).collect();

    // Initial fit per group (parallel).
    let mut detectors: Vec<Box<dyn AnomalyDetector>> =
        (0..grouping.k).map(|g| build_detector(cfg, vocab, g, threads)).collect();
    {
        let streams_ref = &streams;
        let tickets_ref = &all_tickets;
        let members_ref = &members;
        std::thread::scope(|scope| {
            for (g, det) in detectors.iter_mut().enumerate() {
                let exclusion = cfg.train_exclusion;
                scope.spawn(move || {
                    let pooled: Vec<LogStream> = members_ref[g]
                        .iter()
                        .map(|&v| {
                            ticket_free(&streams_ref[v], &tickets_ref[v], exclusion, 0, month1_end)
                        })
                        .collect();
                    let refs: Vec<&LogStream> = pooled.iter().collect();
                    det.fit(&refs);
                });
            }
        });
    }

    // Trigger thresholds per group: month-0 scores from one batched
    // pass per group (bit-identical to per-vPE scoring).
    let mut events = Vec::new();
    let mut store = GroupModelStore::new(grouping, detectors);
    for g in 0..store.k() {
        let scores = store.score_group(g, &streams, 0, month1_end, threads);
        store.trigger[g] = calibrate_trigger(&scores, cfg.trigger_quantile, 0, g, &mut events);
    }

    PipelineState {
        codec,
        cursor,
        streams,
        store,
        months: Vec::new(),
        rollups: Vec::new(),
        adaptations: Vec::new(),
        events,
        next_month: 1,
    }
}

/// Runs one month of the protocol: encode, score, false-alarm check
/// (with adaptation when it surges), record scores, monthly update.
fn run_month(
    trace: &FleetTrace,
    cfg: &PipelineConfig,
    threads: usize,
    state: &mut PipelineState,
    m: usize,
) {
    let n_vpes = trace.config.n_vpes;
    let m_start = month_start(m);
    let m_end = month_start(m + 1);
    let all_tickets: Vec<Vec<&Ticket>> = (0..n_vpes).map(|v| trace.tickets_for(v)).collect();

    // Everything before this month except the scoring context has been
    // consumed — drop it, then append the new month.
    trim_streams(&mut state.streams, &mut state.cursor, scoring_context(cfg));
    append_month(trace, &state.codec, &mut state.streams, &mut state.cursor, m_end);

    // Score the month: one batched pass per group over all its member
    // streams (bit-identical to the per-vPE loop, see group_store docs).
    let mut per_vpe: Vec<Vec<ScoredEvent>> =
        state.store.score_fleet(&state.streams, m_start, m_end, threads);

    // False-alarm-rate check per group -> adaptation.
    for g in 0..state.store.k() {
        let mut fa = 0usize;
        for &v in &state.store.members[g] {
            let clusters = warning_clusters(&per_vpe[v], state.store.trigger[g], &cfg.mapping);
            let result = map_clusters(
                &clusters,
                &all_tickets[v].iter().map(|&&t| t).collect::<Vec<_>>(),
                &cfg.mapping,
            );
            fa += result.false_alarms;
        }
        let days = (m_end - m_start) as f32 / DAY as f32;
        let fa_rate = fa as f32 / days / state.store.members[g].len().max(1) as f32;
        let surged = match state.store.fa_baseline[g] {
            Some(base) => fa_rate > cfg.fa_surge_factor * (base + 0.02),
            None => false,
        };
        if surged && cfg.adapt {
            state.adaptations.push((m, g));
            // Refresh the codec with the first week of the month so new
            // templates earn dense ids, re-encode that week, and
            // fine-tune on it.
            let week_end = m_start + cfg.adapt_span;
            let week_msgs = collect_week(trace, &state.store.members[g], m_start, week_end);
            state.codec.refresh(&week_msgs);
            reencode_members(
                trace,
                &state.codec,
                &mut state.streams,
                &mut state.cursor,
                &state.store.members[g],
                m_end,
            );
            let adapt_streams: Vec<LogStream> = state.store.members[g]
                .iter()
                .map(|&v| {
                    ticket_free(
                        &state.streams[v],
                        &all_tickets[v],
                        cfg.train_exclusion,
                        m_start,
                        week_end,
                    )
                })
                .collect();
            let refs: Vec<&LogStream> = adapt_streams.iter().collect();
            state.store.detectors[g].adapt(&refs);

            // Re-score the month after the adaptation point (batched).
            let rescored = state.store.score_group(g, &state.streams, week_end, m_end, threads);
            for (&v, scored) in state.store.members[g].iter().zip(rescored) {
                per_vpe[v].retain(|e| e.time < week_end);
                per_vpe[v].extend(scored);
            }
            // Reset the trigger calibration on the adapted model.
            let scores = state.store.score_group(g, &state.streams, m_start, week_end, threads);
            state.store.trigger[g] =
                calibrate_trigger(&scores, cfg.trigger_quantile, m, g, &mut state.events);
            state.store.fa_baseline[g] = None;
        } else {
            state.store.fa_baseline[g] = Some(match state.store.fa_baseline[g] {
                Some(base) => 0.7 * base + 0.3 * fa_rate,
                None => fa_rate,
            });
        }
    }

    state.rollups.push(MonthRollup::summarize(m, &per_vpe));
    state.months.push(MonthScores { month: m, per_vpe });
    if cfg.retain_months > 0 {
        while state.months.len() > cfg.retain_months {
            state.months.remove(0);
        }
    }

    // Incremental monthly update on this month's ticket-free data.
    let streams_ref = &state.streams;
    let tickets_ref = &all_tickets;
    let GroupModelStore { members, detectors, .. } = &mut state.store;
    let members_ref: &Vec<Vec<usize>> = members;
    std::thread::scope(|scope| {
        for (g, det) in detectors.iter_mut().enumerate() {
            let exclusion = cfg.train_exclusion;
            scope.spawn(move || {
                let pooled: Vec<LogStream> = members_ref[g]
                    .iter()
                    .map(|&v| {
                        ticket_free(&streams_ref[v], &tickets_ref[v], exclusion, m_start, m_end)
                    })
                    .collect();
                let refs: Vec<&LogStream> = pooled.iter().collect();
                det.update(&refs);
            });
        }
    });
}

/// Checkpoint + crash-injection hook, called at every month boundary
/// (`m = 0` right after the initial fit). A checkpoint is written when
/// the boundary is on the `every` cadence — or unconditionally when an
/// injected crash fires here, so the recovery test observes the exact
/// state a real crash at this point would leave.
///
/// A failed save is retried with doubling backoff up to
/// [`CheckpointConfig::retry_attempts`]; past the budget the checkpoint
/// is *skipped* — a warning plus a [`PipelineEvent::CheckpointSkipped`]
/// entry — rather than aborting a multi-month run over one bad write.
/// The newest intact generation on disk stays the resume point.
fn checkpoint_boundary(
    cfg: &PipelineConfig,
    fp: u64,
    state: &mut PipelineState,
    m: usize,
) -> Result<(), PipelineError> {
    let ck = &cfg.checkpoint;
    let crash_after = matches!(ck.crash, Some(CrashPoint::AfterMonth(c)) if c == m);
    let torn_here = matches!(ck.crash, Some(CrashPoint::MidSave(c)) if c == m);
    if let Some(dir) = &ck.dir {
        if torn_here {
            pipeline_ckpt::write_torn(dir, fp, state, m)?;
            return Err(PipelineError::CrashInjected(CrashPoint::MidSave(m)));
        }
        if m.is_multiple_of(ck.every.max(1)) || crash_after {
            let keep = if ck.keep == 0 { CheckpointConfig::default().keep } else { ck.keep };
            let attempts = ck.retry_attempts.max(1);
            let mut backoff = std::time::Duration::from_millis(ck.retry_backoff_ms);
            let mut outcome = Ok(());
            for attempt in 0..attempts {
                if attempt > 0 {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                outcome = pipeline_ckpt::save(dir, fp, state, m, keep);
                if outcome.is_ok() {
                    break;
                }
            }
            if let Err(e) = outcome {
                eprintln!(
                    "pipeline: warning: checkpoint at month {} failed after {} attempt(s) \
                     ({}); continuing without it — the newest intact generation remains \
                     the resume point",
                    m, attempts, e
                );
                state.events.push(PipelineEvent::CheckpointSkipped { month: m, attempts });
            }
        }
    }
    if crash_after {
        return Err(PipelineError::CrashInjected(CrashPoint::AfterMonth(m)));
    }
    Ok(())
}

/// Per-vPE expected-work windows the evaluation suppresses: scheduled
/// maintenance tickets and planned migrations. Both get the same
/// treatment — the window plus the preceding predictive period, because
/// the preparatory work (drains, config pushes, pre-copy) starts before
/// the event proper.
fn suppression_windows(trace: &FleetTrace, cfg: &PipelineConfig) -> Vec<Vec<(u64, u64)>> {
    (0..trace.config.n_vpes)
        .map(|v| {
            let mut windows: Vec<(u64, u64)> = trace
                .tickets_for(v)
                .iter()
                .filter(|t| t.cause == TicketCause::Maintenance)
                .map(|t| {
                    (t.report_time.saturating_sub(cfg.mapping.predictive_period), t.repair_time)
                })
                .collect();
            // Planned migrations are expected work too: hypervisor
            // chatter, no ticket, no false alarm.
            windows.extend(
                trace
                    .migrations
                    .iter()
                    .filter(|m| m.vpe == v)
                    .map(|m| (m.start.saturating_sub(cfg.mapping.predictive_period), m.end)),
            );
            windows
        })
        .collect()
}

/// Assembles the run output from the final state.
fn finish(trace: &FleetTrace, cfg: &PipelineConfig, state: PipelineState) -> PipelineRun {
    let tickets = trace
        .tickets
        .iter()
        .filter(|t| t.cause != TicketCause::Maintenance && t.report_time >= month_start(1))
        .copied()
        .collect();
    let suppression = suppression_windows(trace, cfg);
    PipelineRun {
        months: state.months,
        rollups: state.rollups,
        tickets,
        adaptations: state.adaptations,
        grouping: state.store.grouping,
        vocab: state.codec.vocab_size(),
        suppression,
        events: state.events,
    }
}

/// Runs the full monthly protocol over a simulated trace.
///
/// With [`CheckpointConfig::dir`] set the run is crash-safe: each month
/// boundary atomically persists a generation-numbered checkpoint, and
/// [`CheckpointConfig::resume`] continues from the newest intact one
/// with bit-identical results (falling back past torn or corrupt
/// generations).
pub fn run_pipeline(
    trace: &FleetTrace,
    cfg: &PipelineConfig,
) -> Result<PipelineRun, PipelineError> {
    let n_months = trace.config.months;
    if n_months < 2 {
        return Err(PipelineError::TooFewMonths { months: n_months });
    }
    let threads = par::effective_threads(cfg.threads, trace.config.n_vpes);
    // One knob: the GEMM row-panel fan-out follows the pipeline's
    // `threads` setting (`0` = auto). Purely scheduling — parallel GEMM
    // is bit-identical to serial at every worker count — so resumed,
    // re-threaded, and single-core runs all produce the same bits.
    nfv_tensor::gemm::set_threads(cfg.threads);
    let fp = fingerprint(trace, cfg);

    let resumed = if cfg.checkpoint.resume && cfg.checkpoint.dir.is_some() {
        pipeline_ckpt::try_resume(trace, cfg, threads, fp)?
    } else {
        None
    };

    let mut state = match resumed {
        Some(state) => state,
        None => {
            let mut state = init_state(trace, cfg, threads);
            checkpoint_boundary(cfg, fp, &mut state, 0)?;
            state
        }
    };

    for m in state.next_month..n_months {
        run_month(trace, cfg, threads, &mut state, m);
        state.next_month = m + 1;
        checkpoint_boundary(cfg, fp, &mut state, m)?;
    }
    Ok(finish(trace, cfg, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Regression for the silent-disable bug: an empty score set used to
    // calibrate the trigger to +inf without a trace, permanently (and
    // invisibly) disabling adaptation for the group. The condition must
    // now surface as a typed event.
    #[test]
    fn empty_calibration_yields_inf_and_a_typed_event() {
        let mut events = Vec::new();
        let t = calibrate_trigger(&[Vec::new(), Vec::new()], 0.995, 3, 1, &mut events);
        assert!(t.is_infinite() && t > 0.0, "empty calibration must disable the trigger");
        assert_eq!(events, vec![PipelineEvent::EmptyCalibration { month: 3, group: 1 }]);
    }

    #[test]
    fn nonempty_calibration_emits_no_event() {
        let mut events = Vec::new();
        let scores =
            vec![vec![ScoredEvent { time: 10, score: 1.0 }, ScoredEvent { time: 20, score: 3.0 }]];
        let t = calibrate_trigger(&scores, 0.5, 0, 0, &mut events);
        assert!(t.is_finite());
        assert!(events.is_empty());
    }

    #[test]
    fn migration_windows_join_maintenance_in_the_suppression_set() {
        let mut sim = nfv_simnet::SimConfig::preset(nfv_simnet::SimPreset::Fast, 13);
        sim.migrations = 4;
        let trace = FleetTrace::simulate(sim);
        let cfg = PipelineConfig::default();
        let windows = suppression_windows(&trace, &cfg);
        assert_eq!(windows.len(), trace.config.n_vpes);
        for m in &trace.migrations {
            let expected = (m.start.saturating_sub(cfg.mapping.predictive_period), m.end);
            assert!(
                windows[m.vpe].contains(&expected),
                "migration {:?} missing from suppression",
                m
            );
        }
        // Maintenance windows are still present alongside.
        let maint = trace.tickets.iter().filter(|t| t.cause == TicketCause::Maintenance).count();
        let total: usize = windows.iter().map(|w| w.len()).sum();
        assert_eq!(total, maint + trace.migrations.len());
    }

    #[test]
    fn too_few_months_is_a_typed_error() {
        let mut sim = nfv_simnet::SimConfig::preset(nfv_simnet::SimPreset::Fast, 1);
        sim.n_vpes = 2;
        sim.months = 1;
        let trace = FleetTrace::simulate(sim);
        match run_pipeline(&trace, &PipelineConfig::default()) {
            Err(PipelineError::TooFewMonths { months: 1 }) => {}
            other => panic!("expected TooFewMonths, got {:?}", other.err().map(|e| e.to_string())),
        }
    }
}
