//! The end-to-end runtime pipeline and the paper's monthly evaluation
//! protocol (§5.1):
//!
//! 1. mine the template codec from the first month of raw logs;
//! 2. optionally group vPEs by syslog-distribution similarity
//!    (customization, §4.3) and pool each group's data;
//! 3. train one detector per group on ticket-free month-0 data;
//! 4. for every following month: score that month, then update the
//!    model with the month's (ticket-free) data;
//! 5. when the false-alarm rate surges (software update!), refresh the
//!    codec and run transfer-learning adaptation on one week of fresh
//!    data (when adaptation is enabled).
//!
//! The pipeline emits raw scored events per vPE per month;
//! [`crate::eval`] turns them into PR curves, monthly F-measures and
//! per-ticket-type detection rates.

use crate::baselines::{
    AutoencoderConfig, AutoencoderDetector, OcsvmDetector, OcsvmDetectorConfig, PcaDetector,
    PcaDetectorConfig,
};
use crate::codec::LogCodec;
use crate::detector::{AnomalyDetector, ScoredEvent};
use crate::grouping::Grouping;
use crate::hmm_detector::{HmmDetector, HmmDetectorConfig};
use crate::lstm_detector::{LstmDetector, LstmDetectorConfig};
use crate::mapping::{map_clusters, warning_clusters, MappingConfig};
use crate::par;
use nfv_simnet::{FleetTrace, Ticket, TicketCause};
use nfv_syslog::time::{month_start, DAY};
use nfv_syslog::{LogRecord, LogStream};

/// Which detector family the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// The paper's LSTM detector.
    Lstm,
    /// Autoencoder baseline.
    Autoencoder,
    /// One-Class SVM baseline.
    Ocsvm,
    /// PCA residual detector (extension).
    Pca,
    /// Discrete-HMM detector (related-work extension).
    Hmm,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Detector family.
    pub detector: DetectorKind,
    /// Enable vPE grouping (customization). Disabled = one global model.
    pub customize: bool,
    /// Enable post-update transfer-learning adaptation.
    pub adapt: bool,
    /// Anomaly-to-ticket mapping parameters.
    pub mapping: MappingConfig,
    /// Spare vocabulary slots reserved for post-update templates.
    pub spare_vocab: usize,
    /// Messages sampled for codec mining.
    pub codec_sample: usize,
    /// Exclusion margin around tickets for training data (§4.2: 3 days).
    pub train_exclusion: u64,
    /// Amount of fresh data used by one adaptation (1 week).
    pub adapt_span: u64,
    /// False-alarm surge factor that triggers adaptation.
    pub fa_surge_factor: f32,
    /// Quantile of training scores used as the online trigger threshold.
    pub trigger_quantile: f32,
    /// LSTM hyper-parameters (vocab is overwritten from the codec).
    pub lstm: LstmDetectorConfig,
    /// Autoencoder hyper-parameters (vocab overwritten).
    pub autoencoder: AutoencoderConfig,
    /// OC-SVM hyper-parameters (vocab overwritten).
    pub ocsvm: OcsvmDetectorConfig,
    /// PCA hyper-parameters (vocab overwritten).
    pub pca: PcaDetectorConfig,
    /// HMM hyper-parameters (vocab overwritten).
    pub hmm: HmmDetectorConfig,
    /// Worker threads for training shards and per-vPE scoring fan-out.
    /// `0` = auto (`available_parallelism` capped by the fleet size).
    /// Every value produces bit-identical results — threads are pure
    /// scheduling, never part of the trajectory.
    pub threads: usize,
    /// Grouping seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            detector: DetectorKind::Lstm,
            customize: true,
            adapt: true,
            mapping: MappingConfig::default(),
            spare_vocab: 24,
            codec_sample: 30_000,
            train_exclusion: 3 * DAY,
            adapt_span: 7 * DAY,
            fa_surge_factor: 4.0,
            trigger_quantile: 0.995,
            lstm: LstmDetectorConfig::default(),
            autoencoder: AutoencoderConfig::default(),
            ocsvm: OcsvmDetectorConfig::default(),
            pca: PcaDetectorConfig::default(),
            hmm: HmmDetectorConfig::default(),
            threads: 0,
            seed: 1,
        }
    }
}

/// Scored events for one tested month.
#[derive(Debug, Clone)]
pub struct MonthScores {
    /// Zero-based month index.
    pub month: usize,
    /// Scored events per vPE.
    pub per_vpe: Vec<Vec<ScoredEvent>>,
}

/// The pipeline's output: everything the evaluation needs.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// One entry per tested month (months 1..M).
    pub months: Vec<MonthScores>,
    /// Copy of the evaluated (non-maintenance) tickets.
    pub tickets: Vec<Ticket>,
    /// Months at which adaptation fired, per group.
    pub adaptations: Vec<(usize, usize)>,
    /// The grouping used.
    pub grouping: Grouping,
    /// Vocabulary width of the codec.
    pub vocab: usize,
    /// Per-vPE scheduled-maintenance windows `[report, repair]`.
    /// Warning clusters inside these windows are suppressed by the
    /// evaluation: maintenance is pre-scheduled, expected work (§3.2),
    /// so its chatter is mapped to the maintenance ticket rather than
    /// counted as a false alarm.
    pub suppression: Vec<Vec<(u64, u64)>>,
}

impl PipelineRun {
    /// All scored events of one vPE across tested months, time-ordered.
    pub fn events_for(&self, vpe: usize) -> Vec<ScoredEvent> {
        let mut out: Vec<ScoredEvent> =
            self.months.iter().flat_map(|m| m.per_vpe[vpe].iter().copied()).collect();
        out.sort_by_key(|e| e.time);
        out
    }

    /// Number of vPEs.
    pub fn n_vpes(&self) -> usize {
        self.months.first().map_or(0, |m| m.per_vpe.len())
    }
}

/// Removes records inside `[report - exclusion, repair]` of any ticket
/// of the vPE (used to build "normal" training data). This follows the
/// paper's §4.2 rule — "we do not use any syslog data that is generated
/// within 3 days from a ticket generation to the time that the ticket is
/// marked as resolved" — i.e. the margin extends *before* the report;
/// the window closes at repair time.
pub fn ticket_free(
    stream: &LogStream,
    tickets: &[&Ticket],
    exclusion: u64,
    start: u64,
    end: u64,
) -> LogStream {
    let intervals: Vec<(u64, u64)> =
        tickets.iter().map(|t| (t.report_time.saturating_sub(exclusion), t.repair_time)).collect();
    let records: Vec<LogRecord> = stream
        .slice_time(start, end)
        .iter()
        .filter(|r| !intervals.iter().any(|&(lo, hi)| r.time >= lo && r.time <= hi))
        .copied()
        .collect();
    LogStream::from_records(records)
}

fn build_detector(
    cfg: &PipelineConfig,
    vocab: usize,
    group: usize,
    threads: usize,
) -> Box<dyn AnomalyDetector> {
    match cfg.detector {
        DetectorKind::Lstm => {
            let mut c = cfg.lstm.clone();
            c.vocab = vocab;
            c.threads = threads;
            c.seed ^= (group as u64) << 17;
            Box::new(LstmDetector::new(c))
        }
        DetectorKind::Autoencoder => {
            let mut c = cfg.autoencoder.clone();
            c.vocab = vocab;
            c.threads = threads;
            c.seed ^= (group as u64) << 17;
            Box::new(AutoencoderDetector::new(c))
        }
        DetectorKind::Ocsvm => {
            let mut c = cfg.ocsvm.clone();
            c.vocab = vocab;
            c.seed ^= (group as u64) << 17;
            Box::new(OcsvmDetector::new(c))
        }
        DetectorKind::Pca => {
            let mut c = cfg.pca.clone();
            c.vocab = vocab;
            c.seed ^= (group as u64) << 17;
            Box::new(PcaDetector::new(c))
        }
        DetectorKind::Hmm => {
            let mut c = cfg.hmm.clone();
            c.vocab = vocab;
            c.seed ^= (group as u64) << 17;
            Box::new(HmmDetector::new(c))
        }
    }
}

/// Quantile of the score distribution (used for the adaptation trigger).
fn score_quantile(events: &[Vec<ScoredEvent>], q: f32) -> f32 {
    let scores: Vec<f32> = events.iter().flat_map(|v| v.iter().map(|e| e.score)).collect();
    nfv_tensor::stats::quantile(&scores, q).unwrap_or(f32::INFINITY)
}

/// Runs the full monthly protocol over a simulated trace.
pub fn run_pipeline(trace: &FleetTrace, cfg: &PipelineConfig) -> PipelineRun {
    let n_vpes = trace.config.n_vpes;
    let n_months = trace.config.months;
    assert!(n_months >= 2, "need at least two months (train + test)");
    let threads = par::effective_threads(cfg.threads, n_vpes);

    // --- Codec from month-0 raw text. ---
    // The sample interleaves across vPEs (up to an equal share each) so
    // that every behaviour group's templates are mined; a plain prefix
    // would fill the cap from the first few vPEs only and leave other
    // groups' templates unmined (encoding to UNKNOWN fleet-wide).
    let month1_end = month_start(1);
    let per_vpe_budget = (cfg.codec_sample / n_vpes).max(1);
    let mut sample = Vec::new();
    for vpe in 0..n_vpes {
        sample.extend(
            trace
                .messages(vpe)
                .iter()
                .take_while(|m| m.timestamp < month1_end)
                .take(per_vpe_budget)
                .cloned(),
        );
    }
    let mut codec = LogCodec::train(&sample, cfg.spare_vocab);
    let vocab = codec.vocab_size();

    // --- Encode month 0 and set up grouping. ---
    // Streams are encoded incrementally (month by month) because the
    // codec can gain templates at adaptation time. `trace.messages(vpe)`
    // is time-sorted, so each vPE keeps a cursor of how far it has been
    // encoded and month boundaries are found by binary search — no
    // rescan of the whole history every month.
    let mut cursor: Vec<usize> = vec![0; n_vpes];
    let mut streams: Vec<LogStream> = (0..n_vpes)
        .map(|vpe| {
            let msgs = trace.messages(vpe);
            cursor[vpe] = msgs.partition_point(|m| m.timestamp < month1_end);
            codec.encode_stream(&msgs[..cursor[vpe]])
        })
        .collect();

    let grouping = if cfg.customize {
        Grouping::cluster(&streams, vocab, 0, month1_end, 2..=6, cfg.seed)
    } else {
        Grouping::single(n_vpes)
    };
    let members = grouping.members();

    let all_tickets: Vec<Vec<&Ticket>> = (0..n_vpes).map(|v| trace.tickets_for(v)).collect();

    // --- Initial fit per group (parallel). ---
    let mut detectors: Vec<Box<dyn AnomalyDetector>> =
        (0..grouping.k).map(|g| build_detector(cfg, vocab, g, threads)).collect();
    {
        let streams_ref = &streams;
        let tickets_ref = &all_tickets;
        let members_ref = &members;
        std::thread::scope(|scope| {
            for (g, det) in detectors.iter_mut().enumerate() {
                let exclusion = cfg.train_exclusion;
                scope.spawn(move || {
                    let pooled: Vec<LogStream> = members_ref[g]
                        .iter()
                        .map(|&v| {
                            ticket_free(&streams_ref[v], &tickets_ref[v], exclusion, 0, month1_end)
                        })
                        .collect();
                    let refs: Vec<&LogStream> = pooled.iter().collect();
                    det.fit(&refs);
                });
            }
        });
    }

    // --- Trigger thresholds per group (from month-0 scores). ---
    let mut trigger: Vec<f32> = (0..grouping.k)
        .map(|g| {
            let scores = par::par_blocks(&members[g], threads, |_, block| {
                block
                    .iter()
                    .map(|&v| detectors[g].score(&streams[v], 0, month1_end))
                    .collect::<Vec<_>>()
            });
            score_quantile(&scores, cfg.trigger_quantile)
        })
        .collect();
    let mut fa_baseline: Vec<Option<f32>> = vec![None; grouping.k];

    // --- Monthly loop. ---
    let mut months = Vec::new();
    let mut adaptations = Vec::new();
    for m in 1..n_months {
        let m_start = month_start(m);
        let m_end = month_start(m + 1);

        // Encode this month's raw messages with the current codec. The
        // cursor already sits at the month boundary, so the new slice is
        // found by one binary search and appended in place — the encoded
        // prefix is never rebuilt.
        for (vpe, stream) in streams.iter_mut().enumerate() {
            let msgs = trace.messages(vpe);
            let hi = msgs.partition_point(|msg| msg.timestamp < m_end);
            stream.append(codec.encode_stream(&msgs[cursor[vpe]..hi]));
            cursor[vpe] = hi;
        }

        // Score the month: vPEs fan out across the worker pool in fixed
        // index-ordered blocks, so the result is identical to a serial
        // loop for any thread count.
        let vpe_ids: Vec<usize> = (0..n_vpes).collect();
        let mut per_vpe: Vec<Vec<ScoredEvent>> = par::par_blocks(&vpe_ids, threads, |_, block| {
            block
                .iter()
                .map(|&v| detectors[grouping.group_of(v)].score(&streams[v], m_start, m_end))
                .collect::<Vec<_>>()
        });

        // False-alarm-rate check per group -> adaptation.
        for g in 0..grouping.k {
            let mut fa = 0usize;
            for &v in &members[g] {
                let clusters = warning_clusters(&per_vpe[v], trigger[g], &cfg.mapping);
                let result = map_clusters(
                    &clusters,
                    &all_tickets[v].iter().map(|&&t| t).collect::<Vec<_>>(),
                    &cfg.mapping,
                );
                fa += result.false_alarms;
            }
            let days = (m_end - m_start) as f32 / DAY as f32;
            let fa_rate = fa as f32 / days / members[g].len().max(1) as f32;
            let surged = match fa_baseline[g] {
                Some(base) => fa_rate > cfg.fa_surge_factor * (base + 0.02),
                None => false,
            };
            if surged && cfg.adapt {
                adaptations.push((m, g));
                // Refresh the codec with the first week of the month so
                // new templates earn dense ids, re-encode that week, and
                // fine-tune on it.
                let week_end = m_start + cfg.adapt_span;
                let mut week_msgs = Vec::new();
                for &v in &members[g] {
                    let msgs = trace.messages(v);
                    let lo = msgs.partition_point(|msg| msg.timestamp < m_start);
                    let wk = msgs.partition_point(|msg| msg.timestamp < week_end);
                    week_msgs.extend_from_slice(&msgs[lo..wk]);
                }
                codec.refresh(&week_msgs);
                // Re-encode the month for this group's members (ids of
                // known templates are stable; only new ones change). This
                // is the one place the whole history is re-encoded, and
                // the cursor is re-anchored to the same boundary.
                for &v in &members[g] {
                    let msgs = trace.messages(v);
                    let hi = msgs.partition_point(|msg| msg.timestamp < m_end);
                    streams[v] = codec.encode_stream(&msgs[..hi]);
                    cursor[v] = hi;
                }
                let adapt_streams: Vec<LogStream> = members[g]
                    .iter()
                    .map(|&v| {
                        ticket_free(
                            &streams[v],
                            &all_tickets[v],
                            cfg.train_exclusion,
                            m_start,
                            week_end,
                        )
                    })
                    .collect();
                let refs: Vec<&LogStream> = adapt_streams.iter().collect();
                detectors[g].adapt(&refs);

                // Re-score the month after the adaptation point.
                let rescored = par::par_blocks(&members[g], threads, |_, block| {
                    block
                        .iter()
                        .map(|&v| detectors[g].score(&streams[v], week_end, m_end))
                        .collect::<Vec<_>>()
                });
                for (&v, scored) in members[g].iter().zip(rescored) {
                    per_vpe[v].retain(|e| e.time < week_end);
                    per_vpe[v].extend(scored);
                }
                // Reset the trigger calibration on the adapted model.
                let scores = par::par_blocks(&members[g], threads, |_, block| {
                    block
                        .iter()
                        .map(|&v| detectors[g].score(&streams[v], m_start, week_end))
                        .collect::<Vec<_>>()
                });
                trigger[g] = score_quantile(&scores, cfg.trigger_quantile);
                fa_baseline[g] = None;
            } else {
                fa_baseline[g] = Some(match fa_baseline[g] {
                    Some(base) => 0.7 * base + 0.3 * fa_rate,
                    None => fa_rate,
                });
            }
        }

        months.push(MonthScores { month: m, per_vpe });

        // Incremental monthly update on this month's ticket-free data.
        let streams_ref = &streams;
        let tickets_ref = &all_tickets;
        let members_ref = &members;
        std::thread::scope(|scope| {
            for (g, det) in detectors.iter_mut().enumerate() {
                let exclusion = cfg.train_exclusion;
                scope.spawn(move || {
                    let pooled: Vec<LogStream> = members_ref[g]
                        .iter()
                        .map(|&v| {
                            ticket_free(&streams_ref[v], &tickets_ref[v], exclusion, m_start, m_end)
                        })
                        .collect();
                    let refs: Vec<&LogStream> = pooled.iter().collect();
                    det.update(&refs);
                });
            }
        });
    }

    let tickets = trace
        .tickets
        .iter()
        .filter(|t| t.cause != TicketCause::Maintenance && t.report_time >= month_start(1))
        .copied()
        .collect();
    let suppression = (0..n_vpes)
        .map(|v| {
            trace
                .tickets_for(v)
                .iter()
                .filter(|t| t.cause == TicketCause::Maintenance)
                // Pre-maintenance work (drains, config pushes) starts
                // before the ticket's report time; suppress the whole
                // predictive window, mirroring how fault tickets absorb
                // their own predictive-period anomalies.
                .map(|t| {
                    (t.report_time.saturating_sub(cfg.mapping.predictive_period), t.repair_time)
                })
                .collect()
        })
        .collect();
    PipelineRun { months, tickets, adaptations, grouping, vocab, suppression }
}
