//! Plain-text table formatting for the figure/table harnesses.

use nfv_ml::PrCurve;
use nfv_simnet::TicketCause;

/// Formats a PR curve as a TSV table (threshold, precision, recall, F).
pub fn format_prc(name: &str, curve: &PrCurve) -> String {
    let mut out = String::new();
    out.push_str(&format!("# PRC: {}\n", name));
    out.push_str("threshold\tprecision\trecall\tf_measure\n");
    for p in &curve.points {
        out.push_str(&format!(
            "{:.4}\t{:.3}\t{:.3}\t{:.3}\n",
            p.threshold, p.precision, p.recall, p.f_measure
        ));
    }
    if let Some(best) = curve.best_f_point() {
        out.push_str(&format!(
            "# operating point: precision={:.2} recall={:.2} f={:.2} (threshold {:.4})\n",
            best.precision, best.recall, best.f_measure, best.threshold
        ));
    }
    out
}

/// Formats the Fig 8 per-type detection-rate table.
pub fn format_detection_table(
    rows: &[(Option<TicketCause>, Vec<f32>, usize)],
    offsets: &[i64],
) -> String {
    let mut out = String::new();
    out.push_str("ticket_type\tn");
    for off in offsets {
        let mins = *off as f64 / 60.0;
        out.push_str(&format!("\t{}{}min", if *off >= 0 { "+" } else { "" }, mins));
    }
    out.push('\n');
    for (cause, rates, n) in rows {
        let label = cause.map_or("All", |c| c.label());
        out.push_str(&format!("{}\t{}", label, n));
        for r in rates {
            out.push_str(&format!("\t{:.2}", r));
        }
        out.push('\n');
    }
    out
}

/// Formats a simple aligned two-column table.
pub fn format_kv(title: &str, rows: &[(String, String)]) -> String {
    let key_width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = format!("# {}\n", title);
    for (k, v) in rows {
        out.push_str(&format!("{:<width$}  {}\n", k, v, width = key_width));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_ml::PrPoint;

    #[test]
    fn prc_table_contains_operating_point() {
        let curve = PrCurve {
            points: vec![
                PrPoint { threshold: 0.5, precision: 0.6, recall: 0.9, f_measure: 0.72 },
                PrPoint { threshold: 1.0, precision: 0.8, recall: 0.8, f_measure: 0.8 },
            ],
        };
        let s = format_prc("lstm", &curve);
        assert!(s.contains("# PRC: lstm"));
        assert!(s.contains("operating point: precision=0.80 recall=0.80"));
        assert_eq!(s.lines().count(), 2 + 2 + 1);
    }

    #[test]
    fn detection_table_has_header_and_all_row() {
        let rows =
            vec![(Some(TicketCause::Circuit), vec![0.3, 0.7], 10), (None, vec![0.2, 0.6], 30)];
        let s = format_detection_table(&rows, &[-900, 900]);
        assert!(s.starts_with("ticket_type\tn\t-15min\t+15min"));
        assert!(s.contains("Circuit\t10\t0.30\t0.70"));
        assert!(s.contains("All\t30\t0.20\t0.60"));
    }

    #[test]
    fn kv_table_aligns_keys() {
        let s = format_kv("t", &[("a".into(), "1".into()), ("long-key".into(), "2".into())]);
        assert!(s.contains("a         1"));
        assert!(s.contains("long-key  2"));
    }
}
