//! Shared feature extraction for the window-based baselines
//! (Autoencoder, OC-SVM, PCA): template-count windows turned into TF-IDF
//! vectors, following the Zhang et al. representation the paper cites
//! for its Autoencoder baseline (§5.2).

use nfv_ml::TfIdf;
use nfv_syslog::LogStream;

/// Sliding count-window extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct WindowingConfig {
    /// Messages per window.
    pub width: usize,
    /// Step between window starts, in messages.
    pub step: usize,
}

impl Default for WindowingConfig {
    fn default() -> Self {
        WindowingConfig { width: 32, step: 8 }
    }
}

/// A batch of count windows plus the timestamp of each window's last
/// message (the moment the window's score becomes observable).
#[derive(Debug, Clone, Default)]
pub struct CountWindows {
    /// Dense template-count vector per window.
    pub counts: Vec<Vec<f32>>,
    /// Timestamp of the final record of each window.
    pub times: Vec<u64>,
}

/// Extracts sliding count windows over `vocab` template ids, keeping
/// windows whose *end* falls in `[start, end)`.
pub fn count_windows(
    stream: &LogStream,
    vocab: usize,
    cfg: &WindowingConfig,
    start: u64,
    end: u64,
) -> CountWindows {
    assert!(cfg.width >= 1 && cfg.step >= 1, "degenerate windowing config");
    let records = stream.records();
    let mut out = CountWindows::default();
    if records.len() < cfg.width {
        return out;
    }
    let mut begin = 0usize;
    while begin + cfg.width <= records.len() {
        let window = &records[begin..begin + cfg.width];
        let t_end = window[cfg.width - 1].time;
        if t_end >= start && t_end < end {
            let mut counts = vec![0.0f32; vocab];
            for r in window {
                if r.template < vocab {
                    counts[r.template] += 1.0;
                }
            }
            out.counts.push(counts);
            out.times.push(t_end);
        }
        begin += cfg.step;
    }
    out
}

/// Fits TF-IDF on training windows and returns the transformer together
/// with the transformed training features.
pub fn fit_tfidf(train: &CountWindows) -> (TfIdf, Vec<Vec<f32>>) {
    let tfidf = TfIdf::fit(&train.counts);
    let features = tfidf.transform_all(&train.counts);
    (tfidf, features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_syslog::LogRecord;

    fn stream(n: usize) -> LogStream {
        LogStream::from_records(
            (0..n).map(|i| LogRecord { time: i as u64 * 10, template: i % 5 }).collect(),
        )
    }

    #[test]
    fn window_counts_sum_to_width() {
        let s = stream(100);
        let cfg = WindowingConfig { width: 20, step: 5 };
        let ws = count_windows(&s, 5, &cfg, 0, u64::MAX);
        assert!(!ws.counts.is_empty());
        for c in &ws.counts {
            assert_eq!(c.iter().sum::<f32>(), 20.0);
        }
    }

    #[test]
    fn expected_number_of_windows() {
        let s = stream(100);
        let cfg = WindowingConfig { width: 32, step: 8 };
        let ws = count_windows(&s, 5, &cfg, 0, u64::MAX);
        assert_eq!(ws.counts.len(), (100 - 32) / 8 + 1);
        assert_eq!(ws.counts.len(), ws.times.len());
    }

    #[test]
    fn time_bounds_filter_on_window_end() {
        let s = stream(100); // times 0..990
        let cfg = WindowingConfig { width: 10, step: 10 };
        let ws = count_windows(&s, 5, &cfg, 500, 800);
        assert!(ws.times.iter().all(|&t| (500..800).contains(&t)));
        assert!(!ws.times.is_empty());
    }

    #[test]
    fn short_stream_gives_no_windows() {
        let s = stream(5);
        let ws = count_windows(&s, 5, &WindowingConfig::default(), 0, u64::MAX);
        assert!(ws.counts.is_empty());
    }

    #[test]
    fn tfidf_features_have_vocab_width() {
        let s = stream(100);
        let cfg = WindowingConfig { width: 16, step: 4 };
        let ws = count_windows(&s, 5, &cfg, 0, u64::MAX);
        let (tfidf, features) = fit_tfidf(&ws);
        assert_eq!(tfidf.dim(), 5);
        assert!(features.iter().all(|f| f.len() == 5));
    }
}
