//! vPE customization by grouping (§4.3): k-means over per-vPE syslog
//! distributions with modularity-based selection of K, then pooling each
//! group's training data into one model.

use nfv_ml::kmeans::fit_best_k;
use nfv_syslog::LogStream;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The result of vPE grouping.
#[derive(Debug, Clone)]
pub struct Grouping {
    /// Group index per vPE.
    pub assignment: Vec<usize>,
    /// Number of groups.
    pub k: usize,
    /// Modularity of the chosen partition.
    pub modularity: f32,
}

impl Grouping {
    /// Puts every vPE in one group (the paper's non-customized baseline).
    pub fn single(n: usize) -> Grouping {
        Grouping { assignment: vec![0; n], k: 1, modularity: 0.0 }
    }

    /// Builds a grouping from an explicit per-vPE assignment (group
    /// ids need not be contiguous; `k` is `max + 1`). Used when the
    /// partition comes from outside the clustering pipeline — e.g. a
    /// mega-fleet scale run grouping by the simulator's latent roles
    /// instead of re-clustering 10k distribution vectors.
    pub fn from_assignment(assignment: Vec<usize>) -> Grouping {
        let k = assignment.iter().copied().max().map_or(1, |m| m + 1);
        Grouping { assignment, k, modularity: 0.0 }
    }

    /// Clusters vPEs by the cosine structure of their template
    /// distributions over `[start, end)`, choosing K in `k_range` by
    /// modularity.
    pub fn cluster(
        streams: &[LogStream],
        vocab: usize,
        start: u64,
        end: u64,
        k_range: std::ops::RangeInclusive<usize>,
        seed: u64,
    ) -> Grouping {
        assert!(!streams.is_empty(), "Grouping::cluster: no streams");
        let mut points: Vec<Vec<f32>> =
            streams.iter().map(|s| s.template_distribution(vocab, start, end)).collect();
        // Remove the fleet-mean distribution: every vPE shares a large
        // base-template component that would otherwise dominate cosine
        // similarity and wash out the group structure the modularity
        // criterion needs. Centering makes same-group correlation stand
        // out (and leaves k-means assignments unchanged up to the shift).
        let dim = points[0].len();
        let mut mean = vec![0.0f32; dim];
        for p in &points {
            for (m, v) in mean.iter_mut().zip(p.iter()) {
                *m += v / streams.len() as f32;
            }
        }
        for p in &mut points {
            for (v, m) in p.iter_mut().zip(mean.iter()) {
                *v -= m;
            }
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let (fit, modularity) = fit_best_k(&points, k_range, &mut rng);
        let k = fit.k();
        Grouping { assignment: fit.assignments, k, modularity }
    }

    /// vPE ids in each group.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k];
        for (vpe, &g) in self.assignment.iter().enumerate() {
            out[g].push(vpe);
        }
        out
    }

    /// The group of one vPE.
    pub fn group_of(&self, vpe: usize) -> usize {
        self.assignment[vpe]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_simnet::{FleetTrace, SimConfig, SimPreset};

    #[test]
    fn single_grouping_pools_everything() {
        let g = Grouping::single(5);
        assert_eq!(g.k, 1);
        assert_eq!(g.members(), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn clustering_recovers_simulated_groups() {
        // Ground-truth streams from the simulator: vPEs in the same
        // latent group share template distributions, so clustering
        // should reunite at least most same-group pairs.
        let cfg = SimConfig::preset(SimPreset::Fast, 31);
        let trace = FleetTrace::simulate(cfg.clone());
        let streams: Vec<_> = (0..cfg.n_vpes).map(|v| trace.ground_truth_stream(v)).collect();
        let vocab = trace.catalog.set.len();
        let end = cfg.end_time();
        let g = Grouping::cluster(&streams, vocab, 0, end, 2..=6, 7);

        assert!(g.k >= 2, "expected multiple groups, got {}", g.k);
        assert!(g.modularity > 0.0);

        // Pairs in the same latent group should usually co-cluster.
        let mut agree = 0usize;
        let mut total = 0usize;
        for a in 0..cfg.n_vpes {
            for b in (a + 1)..cfg.n_vpes {
                let same_latent = trace.topology.vpes[a].group == trace.topology.vpes[b].group;
                // Outlier vPEs legitimately drift away from their group.
                let outlier = trace.topology.vpes[a].outlier || trace.topology.vpes[b].outlier;
                if !same_latent || outlier {
                    continue;
                }
                total += 1;
                if g.group_of(a) == g.group_of(b) {
                    agree += 1;
                }
            }
        }
        assert!(total > 0);
        let frac = agree as f64 / total as f64;
        assert!(frac > 0.7, "same-group pairs co-clustered: {}", frac);
    }

    #[test]
    fn members_partition_the_fleet() {
        let cfg = SimConfig::preset(SimPreset::Fast, 33);
        let trace = FleetTrace::simulate(cfg.clone());
        let streams: Vec<_> = (0..cfg.n_vpes).map(|v| trace.ground_truth_stream(v)).collect();
        let g = Grouping::cluster(&streams, trace.catalog.set.len(), 0, cfg.end_time(), 2..=5, 1);
        let members = g.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, cfg.n_vpes);
    }
}
