//! Operational triage of detected conditions (§5.3 of the paper).
//!
//! The paper's operational findings sort detected anomalies into four
//! scenarios: (1) true predictive signals for near-term problems,
//! (2) conditions convertible into fast detection signatures,
//! (3) conditions that are part of the events that triggered the ticket
//! (the ticketing flow's own verification delay), and (4) coincidental
//! anomalies. This module maps per-ticket outcomes into those buckets
//! and also answers the paper's Q4: whether one warning cluster ever
//! serves several tickets (it never did on the paper's data, because
//! tickets are rare and well separated).

use crate::codec::LogCodec;
use crate::mapping::{MappingConfig, TicketOutcome};
use nfv_simnet::Ticket;
use nfv_syslog::time::MINUTE;
use nfv_syslog::SyslogMessage;
use std::collections::HashMap;

/// The paper's operational categories for a ticket's syslog evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriageCategory {
    /// A warning preceded the ticket by at least 5 minutes: a candidate
    /// predictive signature.
    PredictiveSignal,
    /// A warning appeared within 5 minutes before the ticket: a
    /// candidate fast-detection signature (beats the ticketing flow's
    /// verification latency).
    EarlyDetection,
    /// Anomalies only showed up within 15 minutes after the ticket: the
    /// fault is NFV-visible but not predictive.
    VisibleAftermath,
    /// Anomalies appeared later than 15 minutes after the ticket.
    LateVisibility,
    /// No anomaly mapped to the ticket at all.
    SyslogSilent,
}

impl TriageCategory {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TriageCategory::PredictiveSignal => "predictive signal (>=5 min early)",
            TriageCategory::EarlyDetection => "early detection (<5 min before ticket)",
            TriageCategory::VisibleAftermath => "visible aftermath (<=15 min after)",
            TriageCategory::LateVisibility => "late visibility (>15 min after)",
            TriageCategory::SyslogSilent => "syslog-silent",
        }
    }
}

/// Categorizes one ticket outcome.
pub fn categorize(outcome: &TicketOutcome) -> TriageCategory {
    match outcome.earliest_offset {
        Some(o) if o <= -(5 * MINUTE as i64) => TriageCategory::PredictiveSignal,
        Some(o) if o <= 0 => TriageCategory::EarlyDetection,
        Some(o) if o <= 15 * MINUTE as i64 => TriageCategory::VisibleAftermath,
        Some(_) => TriageCategory::LateVisibility,
        None => TriageCategory::SyslogSilent,
    }
}

/// Counts outcomes per category, in a stable display order.
pub fn triage_histogram(outcomes: &[TicketOutcome]) -> Vec<(TriageCategory, usize)> {
    let order = [
        TriageCategory::PredictiveSignal,
        TriageCategory::EarlyDetection,
        TriageCategory::VisibleAftermath,
        TriageCategory::LateVisibility,
        TriageCategory::SyslogSilent,
    ];
    order
        .iter()
        .map(|&cat| (cat, outcomes.iter().filter(|o| categorize(o) == cat).count()))
        .collect()
}

/// Q4 of the paper: counts warning clusters whose window membership
/// spans more than one ticket. On rare, well-separated tickets this
/// should be zero (or nearly so).
pub fn clusters_spanning_multiple_tickets(
    clusters: &[u64],
    tickets: &[Ticket],
    cfg: &MappingConfig,
) -> usize {
    clusters
        .iter()
        .filter(|&&c| {
            let matched = tickets
                .iter()
                .filter(|t| {
                    c >= t.report_time.saturating_sub(cfg.predictive_period) && c <= t.repair_time
                })
                .count();
            matched > 1
        })
        .count()
}

/// One row of the operator's signature report: a message pattern that
/// dominates warning clusters, with its operational track record.
///
/// This is the machinery behind the paper's §5.3 findings — e.g.
/// discovering that the `invalid response from peer chassis-control`
/// condition is typically followed by a ticket (a predictive signal),
/// while a `BGP UNUSABLE ASPATH` storm makes a fast detection signature
/// with minimum false positives.
#[derive(Debug, Clone)]
pub struct SignatureFinding {
    /// The mined signature pattern (wildcards as `*`).
    pub pattern: String,
    /// Warning clusters dominated by this pattern.
    pub clusters: usize,
    /// Clusters that preceded a ticket (early warnings).
    pub early_warnings: usize,
    /// Clusters inside a ticket's infected period.
    pub errors: usize,
    /// Clusters tied to no ticket.
    pub false_alarms: usize,
    /// One raw example message.
    pub example: String,
}

impl SignatureFinding {
    /// Fraction of this signature's clusters tied to real trouble.
    pub fn hit_rate(&self) -> f32 {
        let tied = self.early_warnings + self.errors;
        if self.clusters == 0 {
            0.0
        } else {
            tied as f32 / self.clusters as f32
        }
    }
}

/// Builds the signature report for one vPE's feed: each warning cluster
/// is attributed to its dominant message pattern and classified against
/// the ticket windows; rows aggregate per pattern, sorted by cluster
/// count.
pub fn signature_report(
    messages: &[SyslogMessage],
    codec: &LogCodec,
    clusters: &[u64],
    tickets: &[Ticket],
    cfg: &MappingConfig,
) -> Vec<SignatureFinding> {
    let mut by_pattern: HashMap<String, SignatureFinding> = HashMap::new();
    for &c in clusters {
        // Messages inside the cluster neighbourhood.
        let span_end = c + 5 * cfg.cluster_gap;
        let members: Vec<&SyslogMessage> =
            messages.iter().filter(|m| m.timestamp >= c && m.timestamp <= span_end).collect();
        if members.is_empty() {
            continue;
        }
        // Dominant encoded template among the members.
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for m in &members {
            *counts.entry(codec.encode_text(&m.text)).or_insert(0) += 1;
        }
        let (&dominant, _) = counts.iter().max_by_key(|(_, &n)| n).expect("non-empty members");
        let pattern = codec.pattern_of(dominant).unwrap_or("<unknown template>").to_string();
        let example = members
            .iter()
            .find(|m| codec.encode_text(&m.text) == dominant)
            .map(|m| m.text.clone())
            .unwrap_or_default();

        // Classify the cluster against the ticket windows.
        let mut early = false;
        let mut error = false;
        for t in tickets {
            let window_start = t.report_time.saturating_sub(cfg.predictive_period);
            if c >= window_start && c < t.report_time {
                early = true;
            } else if c >= t.report_time && c <= t.repair_time {
                error = true;
            }
        }

        let entry = by_pattern.entry(pattern.clone()).or_insert_with(|| SignatureFinding {
            pattern,
            clusters: 0,
            early_warnings: 0,
            errors: 0,
            false_alarms: 0,
            example,
        });
        entry.clusters += 1;
        if early {
            entry.early_warnings += 1;
        } else if error {
            entry.errors += 1;
        } else {
            entry.false_alarms += 1;
        }
    }
    let mut rows: Vec<SignatureFinding> = by_pattern.into_values().collect();
    rows.sort_by(|a, b| b.clusters.cmp(&a.clusters).then(a.pattern.cmp(&b.pattern)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_simnet::TicketCause;

    fn outcome(offset: Option<i64>) -> TicketOutcome {
        TicketOutcome {
            ticket: 0,
            cause: TicketCause::Circuit,
            report_time: 100_000,
            earliest_offset: offset,
        }
    }

    #[test]
    fn category_boundaries() {
        assert_eq!(categorize(&outcome(Some(-600))), TriageCategory::PredictiveSignal);
        assert_eq!(categorize(&outcome(Some(-300))), TriageCategory::PredictiveSignal);
        assert_eq!(categorize(&outcome(Some(-299))), TriageCategory::EarlyDetection);
        assert_eq!(categorize(&outcome(Some(0))), TriageCategory::EarlyDetection);
        assert_eq!(categorize(&outcome(Some(1))), TriageCategory::VisibleAftermath);
        assert_eq!(categorize(&outcome(Some(900))), TriageCategory::VisibleAftermath);
        assert_eq!(categorize(&outcome(Some(901))), TriageCategory::LateVisibility);
        assert_eq!(categorize(&outcome(None)), TriageCategory::SyslogSilent);
    }

    #[test]
    fn histogram_covers_all_outcomes() {
        let outcomes =
            vec![outcome(Some(-600)), outcome(Some(-600)), outcome(Some(100)), outcome(None)];
        let hist = triage_histogram(&outcomes);
        let total: usize = hist.iter().map(|(_, n)| n).sum();
        assert_eq!(total, outcomes.len());
        assert_eq!(hist[0], (TriageCategory::PredictiveSignal, 2));
        assert_eq!(hist[4], (TriageCategory::SyslogSilent, 1));
    }

    #[test]
    fn signature_report_attributes_and_classifies_clusters() {
        use nfv_syslog::message::Severity;

        // Codec trained on two message shapes.
        let mk = |time: u64, text: &str| SyslogMessage {
            timestamp: time,
            host: "vpe00".into(),
            process: "rpd".into(),
            severity: Severity::Error,
            text: text.into(),
        };
        let mut train = Vec::new();
        for i in 0..20 {
            train.push(mk(
                i,
                &format!("BGP UNUSABLE ASPATH: bgp reject path from peer 10.0.0.{}", i),
            ));
            train.push(mk(i, &format!("fan tray {} failure detected on slot {}", i, i)));
        }
        let codec = LogCodec::train(&train, 2);

        // Feed: an ASPATH storm before a ticket, a fan burst far away.
        let ticket = Ticket {
            id: 0,
            vpe: 0,
            cause: TicketCause::Circuit,
            report_time: 10_000,
            repair_time: 12_000,
            core_incident: false,
        };
        let messages = vec![
            mk(9_400, "BGP UNUSABLE ASPATH: bgp reject path from peer 9.9.9.9"),
            mk(9_420, "BGP UNUSABLE ASPATH: bgp reject path from peer 8.8.8.8"),
            mk(50_000, "fan tray 2 failure detected on slot 4"),
            mk(50_030, "fan tray 3 failure detected on slot 1"),
        ];
        let clusters = vec![9_400u64, 50_000];
        let cfg = MappingConfig { predictive_period: 3_600, ..Default::default() };
        let report = signature_report(&messages, &codec, &clusters, &[ticket], &cfg);

        assert_eq!(report.len(), 2);
        let aspath = report.iter().find(|r| r.pattern.contains("UNUSABLE")).unwrap();
        assert_eq!(aspath.clusters, 1);
        assert_eq!(aspath.early_warnings, 1);
        assert_eq!(aspath.false_alarms, 0);
        assert!((aspath.hit_rate() - 1.0).abs() < 1e-6);
        assert!(aspath.example.contains("9.9.9.9") || aspath.example.contains("8.8.8.8"));

        let fan = report.iter().find(|r| r.pattern.contains("fan")).unwrap();
        assert_eq!(fan.false_alarms, 1);
        assert_eq!(fan.hit_rate(), 0.0);
    }

    #[test]
    fn q4_counts_multi_ticket_clusters() {
        let cfg = MappingConfig { predictive_period: 3600, ..Default::default() };
        let mk = |id: usize, report: u64, repair: u64| Ticket {
            id,
            vpe: 0,
            cause: TicketCause::Circuit,
            report_time: report,
            repair_time: repair,
            core_incident: false,
        };
        // Well-separated tickets: no cluster can span both.
        let separated = [mk(0, 10_000, 12_000), mk(1, 500_000, 502_000)];
        assert_eq!(clusters_spanning_multiple_tickets(&[9_500, 501_000], &separated, &cfg), 0);
        // Overlapping tickets: a cluster in the overlap spans two.
        let overlapping = [mk(0, 10_000, 20_000), mk(1, 13_000, 22_000)];
        assert_eq!(clusters_spanning_multiple_tickets(&[14_000], &overlapping, &cfg), 1);
    }
}
