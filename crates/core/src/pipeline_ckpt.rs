//! Crash-safe pipeline checkpoints: the on-disk format and the resume
//! path behind [`crate::pipeline::CheckpointConfig`].
//!
//! ## On-disk format
//!
//! Each checkpoint is one checksummed JSON envelope (same layout as
//! model checkpoints: `format` / `version` / `checksum` / `payload`,
//! sealed by [`nfv_nn::checkpoint::seal_envelope`]) written atomically
//! (temp file + rename) to `pipeline-ckpt-NNNNNN.json`, where `NNNNNN`
//! is the **generation** — the number of completed months it captures.
//! Generation 0 is written right after the initial fit + trigger
//! calibration; generation `m` after month `m`'s update. The payload
//! records:
//!
//! * a `fingerprint` binding the checkpoint to its config + trace
//!   (thread counts and checkpoint knobs excluded — they never change
//!   the trajectory);
//! * the mined codec ([`SavedCodec`]), per-vPE cursors and encoded
//!   stream lengths (for replay verification);
//! * the grouping, per-group detector state (exact parameters + RNG
//!   positions via [`AnomalyDetector::to_state`]), trigger thresholds
//!   and false-alarm baselines (f32 **bit patterns**, so `+inf`
//!   triggers survive JSON), the adaptation log, surfaced events and
//!   all accumulated month scores (times + score bit patterns).
//!
//! ## Retention and corruption fallback
//!
//! The last `keep` generations are retained; older files are pruned
//! after each successful save. On resume, generations are tried newest
//! first: a torn or checksum-corrupt file is skipped with a warning and
//! the previous generation is used instead. Only when *no* generation
//! is readable does the run start fresh. A readable checkpoint whose
//! fingerprint disagrees with the current run is a hard
//! [`PipelineError::ResumeMismatch`] — silently recomputing under a
//! different config would not be a resume.
//!
//! ## Resume invariants (bit-identical recovery)
//!
//! Detector parameters and RNG positions come verbatim from the
//! checkpoint. The codec and the encoded streams are **replayed**, not
//! loaded: re-mining the month-0 sample and re-applying the recorded
//! adaptation schedule (refresh + group re-encode, in order) is fully
//! deterministic given the trace, and the result is verified against
//! the checkpointed codec, cursors and stream lengths — any
//! disagreement is a [`PipelineError::ResumeMismatch`]. A resumed run
//! therefore continues the exact trajectory: the final
//! [`PipelineRun`](crate::pipeline::PipelineRun) is bitwise identical
//! to an uninterrupted run at any thread count.

use crate::codec::SavedCodec;
use crate::detector::ScoredEvent;
use crate::group_store::{GroupModelStore, VpeCursor};
use crate::grouping::Grouping;
use crate::pipeline::{
    self, MonthRollup, MonthScores, PipelineConfig, PipelineError, PipelineEvent, PipelineState,
};
use crate::state;
use nfv_nn::checkpoint::{atomic_write_tagged, open_envelope, seal_envelope, CheckpointError};
use nfv_simnet::FleetTrace;
use nfv_syslog::time::month_start;
use serde_json::{json, Value};
use std::fs;
use std::path::{Path, PathBuf};

/// Envelope `format` tag of pipeline checkpoints.
pub const PIPELINE_CKPT_FORMAT: &str = "nfv-pipeline-checkpoint";

/// Payload layout version. Layout 2 introduced the compact per-vPE
/// cursors (`cursor` = messages consumed, plus a parallel `trimmed`
/// array of messages dropped from each stream's front by history
/// trimming) and per-month rollups. Layout-1 checkpoints (no `layout`
/// field) predate stream trimming and cannot be resumed by this build —
/// they are rejected with a clear error instead of silently replaying a
/// different stream shape.
pub const PIPELINE_CKPT_LAYOUT: u64 = 2;

/// Path of generation `g` inside `dir`.
pub fn generation_path(dir: &Path, generation: usize) -> PathBuf {
    dir.join(format!("pipeline-ckpt-{:06}.json", generation))
}

fn parse_generation(name: &str) -> Option<usize> {
    name.strip_prefix("pipeline-ckpt-")?.strip_suffix(".json")?.parse().ok()
}

/// Checkpoint generations present in `dir`, ascending. Missing or
/// unreadable directories yield an empty list.
pub fn list_generations(dir: &Path) -> Vec<usize> {
    let mut gens: Vec<usize> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_generation(&e.file_name().to_string_lossy()))
            .collect(),
        Err(_) => Vec::new(),
    };
    gens.sort_unstable();
    gens
}

fn events_value(events: &[PipelineEvent]) -> Value {
    Value::Array(
        events
            .iter()
            .map(|e| match e {
                PipelineEvent::EmptyCalibration { month, group } => json!({
                    "kind": "empty_calibration",
                    "month": *month,
                    "group": *group,
                }),
                PipelineEvent::CheckpointSkipped { month, attempts } => json!({
                    "kind": "checkpoint_skipped",
                    "month": *month,
                    "attempts": *attempts,
                }),
            })
            .collect(),
    )
}

fn events_from_value(v: &Value) -> Result<Vec<PipelineEvent>, CheckpointError> {
    let arr =
        v.as_array().ok_or_else(|| CheckpointError::Invalid("events must be an array".into()))?;
    arr.iter()
        .map(|e| {
            let kind = state::require(e, "kind")?
                .as_str()
                .ok_or_else(|| CheckpointError::Invalid("event kind must be a string".into()))?;
            match kind {
                "empty_calibration" => Ok(PipelineEvent::EmptyCalibration {
                    month: usize_field(e, "month")?,
                    group: usize_field(e, "group")?,
                }),
                "checkpoint_skipped" => Ok(PipelineEvent::CheckpointSkipped {
                    month: usize_field(e, "month")?,
                    attempts: usize_field(e, "attempts")? as u32,
                }),
                other => Err(CheckpointError::Invalid(format!("unknown event kind '{}'", other))),
            }
        })
        .collect()
}

fn months_value(months: &[MonthScores]) -> Value {
    Value::Array(
        months
            .iter()
            .map(|m| {
                json!({
                    "month": m.month,
                    "per_vpe": Value::Array(
                        m.per_vpe
                            .iter()
                            .map(|events| {
                                json!({
                                    "t": events.iter().map(|e| e.time).collect::<Vec<u64>>(),
                                    "s": Value::Array(
                                        events
                                            .iter()
                                            .map(|e| Value::from(e.score.to_bits() as u64))
                                            .collect(),
                                    ),
                                })
                            })
                            .collect(),
                    ),
                })
            })
            .collect(),
    )
}

fn months_from_value(v: &Value) -> Result<Vec<MonthScores>, CheckpointError> {
    let arr =
        v.as_array().ok_or_else(|| CheckpointError::Invalid("months must be an array".into()))?;
    arr.iter()
        .map(|m| {
            let month = usize_field(m, "month")?;
            let vpes = state::require(m, "per_vpe")?
                .as_array()
                .ok_or_else(|| CheckpointError::Invalid("per_vpe must be an array".into()))?;
            let per_vpe = vpes
                .iter()
                .map(|entry| {
                    let times = state::u64s_from_value(state::require(entry, "t")?, "month times")?;
                    let bits = state::u64s_from_value(state::require(entry, "s")?, "month scores")?;
                    if times.len() != bits.len() {
                        return Err(CheckpointError::Invalid(format!(
                            "month {}: {} times vs {} scores",
                            month,
                            times.len(),
                            bits.len()
                        )));
                    }
                    Ok(times
                        .iter()
                        .zip(bits.iter())
                        .map(|(&time, &b)| ScoredEvent { time, score: f32::from_bits(b as u32) })
                        .collect::<Vec<ScoredEvent>>())
                })
                .collect::<Result<Vec<_>, CheckpointError>>()?;
            Ok(MonthScores { month, per_vpe })
        })
        .collect()
}

fn usize_field(v: &Value, field: &str) -> Result<usize, CheckpointError> {
    state::require(v, field)?
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| CheckpointError::Invalid(format!("field '{}' must be an integer", field)))
}

/// Serializes the live state at `month` completed months into the
/// checkpoint payload.
fn capture(state: &PipelineState, fp: u64, month: usize) -> Value {
    let store = &state.store;
    let grouping = json!({
        "assignment": store.grouping.assignment.iter().map(|&g| g as u64).collect::<Vec<u64>>(),
        "k": store.grouping.k,
        "modularity_bits": store.grouping.modularity.to_bits(),
    });
    let cursor: Vec<u64> = state.cursor.iter().map(|c| c.consumed as u64).collect();
    let trimmed: Vec<u64> = state.cursor.iter().map(|c| c.trimmed as u64).collect();
    let stream_len: Vec<u64> = state.streams.iter().map(|s| s.records().len() as u64).collect();
    let adaptations = Value::Array(
        state.adaptations.iter().map(|&(m, g)| Value::from(vec![m as u64, g as u64])).collect(),
    );
    let trigger_bits =
        Value::Array(store.trigger.iter().map(|t| state::f32_bits_value(*t)).collect());
    let fa_baseline_bits = Value::Array(
        store
            .fa_baseline
            .iter()
            .map(|b| match b {
                Some(x) => state::f32_bits_value(*x),
                None => Value::Null,
            })
            .collect(),
    );
    let detectors = Value::Array(store.detectors.iter().map(|d| d.to_state()).collect());
    json!({
        "fingerprint": format!("{:016x}", fp),
        "layout": PIPELINE_CKPT_LAYOUT,
        "month": month,
        "vocab": state.codec.vocab_size(),
        "codec": state.codec.to_saved().to_value(),
        "cursor": cursor,
        "trimmed": trimmed,
        "stream_len": stream_len,
        "grouping": grouping,
        "adaptations": adaptations,
        "trigger_bits": trigger_bits,
        "fa_baseline_bits": fa_baseline_bits,
        "detectors": detectors,
        "events": events_value(&state.events),
        "months": months_value(&state.months),
        "rollups": rollups_value(&state.rollups),
    })
}

fn rollups_value(rollups: &[MonthRollup]) -> Value {
    Value::Array(
        rollups
            .iter()
            .map(|r| {
                json!({
                    "month": r.month,
                    "events": r.events,
                    "max_bits": r.max_score.to_bits(),
                    "mean_bits": r.mean_score.to_bits(),
                })
            })
            .collect(),
    )
}

fn rollups_from_value(v: &Value) -> Result<Vec<MonthRollup>, CheckpointError> {
    let arr =
        v.as_array().ok_or_else(|| CheckpointError::Invalid("rollups must be an array".into()))?;
    arr.iter()
        .map(|r| {
            let bits = |field: &str| -> Result<f32, CheckpointError> {
                state::require(r, field)?.as_u64().map(|b| f32::from_bits(b as u32)).ok_or_else(
                    || CheckpointError::Invalid(format!("field '{}' must be an integer", field)),
                )
            };
            Ok(MonthRollup {
                month: usize_field(r, "month")?,
                events: state::require(r, "events")?.as_u64().ok_or_else(|| {
                    CheckpointError::Invalid("rollup events must be an integer".into())
                })?,
                max_score: bits("max_bits")?,
                mean_score: bits("mean_bits")?,
            })
        })
        .collect()
}

/// A parsed checkpoint payload, before replay/restore.
struct LoadedCheckpoint {
    fingerprint: String,
    month: usize,
    vocab: usize,
    codec: SavedCodec,
    cursor: Vec<VpeCursor>,
    stream_len: Vec<usize>,
    grouping: Grouping,
    adaptations: Vec<(usize, usize)>,
    trigger: Vec<f32>,
    fa_baseline: Vec<Option<f32>>,
    detectors: Vec<Value>,
    events: Vec<PipelineEvent>,
    months: Vec<MonthScores>,
    rollups: Vec<MonthRollup>,
}

fn parse(payload: &Value) -> Result<LoadedCheckpoint, CheckpointError> {
    let fingerprint = state::require(payload, "fingerprint")?
        .as_str()
        .ok_or_else(|| CheckpointError::Invalid("fingerprint must be a string".into()))?
        .to_string();
    let layout = payload.get("layout").and_then(Value::as_u64).unwrap_or(1);
    if layout != PIPELINE_CKPT_LAYOUT {
        return Err(CheckpointError::Invalid(format!(
            "checkpoint layout {} is not supported by this build (expected {}); \
             re-run from scratch",
            layout, PIPELINE_CKPT_LAYOUT
        )));
    }
    let month = usize_field(payload, "month")?;
    let vocab = usize_field(payload, "vocab")?;
    let codec = SavedCodec::from_value(state::require(payload, "codec")?)?;
    let consumed: Vec<usize> =
        state::u64s_from_value(state::require(payload, "cursor")?, "cursor")?
            .into_iter()
            .map(|c| c as usize)
            .collect();
    let trimmed: Vec<usize> =
        state::u64s_from_value(state::require(payload, "trimmed")?, "trimmed")?
            .into_iter()
            .map(|c| c as usize)
            .collect();
    if consumed.len() != trimmed.len() {
        return Err(CheckpointError::Invalid(format!(
            "{} cursor entries vs {} trimmed entries",
            consumed.len(),
            trimmed.len()
        )));
    }
    let cursor: Vec<VpeCursor> = consumed
        .into_iter()
        .zip(trimmed)
        .map(|(c, t)| VpeCursor { consumed: c, trimmed: t })
        .collect();
    let stream_len: Vec<usize> =
        state::u64s_from_value(state::require(payload, "stream_len")?, "stream_len")?
            .into_iter()
            .map(|c| c as usize)
            .collect();

    let gv = state::require(payload, "grouping")?;
    let assignment: Vec<usize> =
        state::u64s_from_value(state::require(gv, "assignment")?, "grouping assignment")?
            .into_iter()
            .map(|g| g as usize)
            .collect();
    let k = usize_field(gv, "k")?;
    let modularity_bits = state::require(gv, "modularity_bits")?
        .as_u64()
        .ok_or_else(|| CheckpointError::Invalid("modularity_bits must be an integer".into()))?;
    if k == 0 || assignment.iter().any(|&g| g >= k) {
        return Err(CheckpointError::Invalid("grouping assignment out of range".into()));
    }
    let grouping = Grouping { assignment, k, modularity: f32::from_bits(modularity_bits as u32) };

    let adaptations = state::require(payload, "adaptations")?
        .as_array()
        .ok_or_else(|| CheckpointError::Invalid("adaptations must be an array".into()))?
        .iter()
        .map(|pair| {
            let ns = state::u64s_from_value(pair, "adaptation entry")?;
            if ns.len() != 2 {
                return Err(CheckpointError::Invalid(
                    "adaptation entries must be [month, group]".into(),
                ));
            }
            Ok((ns[0] as usize, ns[1] as usize))
        })
        .collect::<Result<Vec<_>, CheckpointError>>()?;

    let trigger = state::require(payload, "trigger_bits")?
        .as_array()
        .ok_or_else(|| CheckpointError::Invalid("trigger_bits must be an array".into()))?
        .iter()
        .map(|b| state::f32_from_bits(b, "trigger"))
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    let fa_baseline =
        state::require(payload, "fa_baseline_bits")?
            .as_array()
            .ok_or_else(|| CheckpointError::Invalid("fa_baseline_bits must be an array".into()))?
            .iter()
            .map(|b| {
                if b.is_null() {
                    Ok(None)
                } else {
                    state::f32_from_bits(b, "fa_baseline").map(Some)
                }
            })
            .collect::<Result<Vec<_>, CheckpointError>>()?;

    let detectors = state::require(payload, "detectors")?
        .as_array()
        .ok_or_else(|| CheckpointError::Invalid("detectors must be an array".into()))?
        .clone();
    let events = events_from_value(state::require(payload, "events")?)?;
    let months = months_from_value(state::require(payload, "months")?)?;
    let rollups = rollups_from_value(state::require(payload, "rollups")?)?;

    Ok(LoadedCheckpoint {
        fingerprint,
        month,
        vocab,
        codec,
        cursor,
        stream_len,
        grouping,
        adaptations,
        trigger,
        fa_baseline,
        detectors,
        events,
        months,
        rollups,
    })
}

/// Seals and atomically writes generation `month`, then prunes old
/// generations beyond `keep`.
pub(crate) fn save(
    dir: &Path,
    fp: u64,
    state: &PipelineState,
    month: usize,
    keep: usize,
) -> Result<(), PipelineError> {
    nfv_fail::io_check("ckpt.save").map_err(CheckpointError::Io)?;
    fs::create_dir_all(dir).map_err(CheckpointError::Io)?;
    let text = seal_envelope(PIPELINE_CKPT_FORMAT, capture(state, fp, month));
    // atomic_write fsyncs the temp file before the rename and the
    // directory after it, so a crash mid-save leaves either the previous
    // generation or a complete, durable new one — resume never sees a
    // torn checkpoint (unless a `ckpt.save.write=torn(..)` failpoint
    // deliberately lies about the write, which the next resume detects
    // by checksum and falls back a generation).
    atomic_write_tagged(&generation_path(dir, month), &text, "ckpt.save")
        .map_err(CheckpointError::Io)?;
    let gens = list_generations(dir);
    if gens.len() > keep {
        for &g in &gens[..gens.len() - keep] {
            // Best-effort: a prune failure never fails the run.
            let _ = fs::remove_file(generation_path(dir, g));
        }
    }
    Ok(())
}

/// Simulates a torn (interrupted, non-atomic) checkpoint write: the
/// sealed envelope is truncated halfway and written directly to the
/// final generation path. Used only by crash injection.
pub(crate) fn write_torn(
    dir: &Path,
    fp: u64,
    state: &PipelineState,
    month: usize,
) -> Result<(), PipelineError> {
    fs::create_dir_all(dir).map_err(CheckpointError::Io)?;
    let text = seal_envelope(PIPELINE_CKPT_FORMAT, capture(state, fp, month));
    let torn = &text[..text.len() / 2];
    fs::write(generation_path(dir, month), torn).map_err(CheckpointError::Io)?;
    Ok(())
}

/// Attempts to resume from the newest intact generation in the
/// checkpoint directory. Returns `Ok(None)` when there is nothing to
/// resume from (no directory, no readable generation) — the caller
/// starts fresh. A readable checkpoint from a *different* run
/// (fingerprint mismatch) or one whose replay fails verification is a
/// hard error.
pub(crate) fn try_resume(
    trace: &FleetTrace,
    cfg: &PipelineConfig,
    threads: usize,
    fp: u64,
) -> Result<Option<PipelineState>, PipelineError> {
    let Some(dir) = &cfg.checkpoint.dir else { return Ok(None) };
    let mut gens = list_generations(dir);
    gens.reverse();
    for g in gens {
        let path = generation_path(dir, g);
        let loaded = nfv_fail::io_check("ckpt.load")
            .and_then(|()| fs::read_to_string(&path))
            .map_err(CheckpointError::Io)
            .and_then(|text| open_envelope(PIPELINE_CKPT_FORMAT, &text))
            .and_then(|payload| parse(&payload));
        let ck = match loaded {
            Ok(ck) => ck,
            Err(e) => {
                eprintln!(
                    "pipeline: checkpoint generation {} ({}) is unreadable: {}; \
                     falling back to the previous generation",
                    g,
                    path.display(),
                    e
                );
                continue;
            }
        };
        let expect = format!("{:016x}", fp);
        if ck.fingerprint != expect {
            return Err(PipelineError::ResumeMismatch(format!(
                "checkpoint fingerprint {} was written by a different config/trace \
                 (this run is {})",
                ck.fingerprint, expect
            )));
        }
        return restore(trace, cfg, threads, ck).map(Some);
    }
    Ok(None)
}

/// Rebuilds live state from a parsed checkpoint: detector parameters
/// are restored verbatim; codec and streams are replayed from the trace
/// (deterministic) and verified against the checkpoint.
fn restore(
    trace: &FleetTrace,
    cfg: &PipelineConfig,
    threads: usize,
    ck: LoadedCheckpoint,
) -> Result<PipelineState, PipelineError> {
    let n_vpes = trace.config.n_vpes;
    if ck.cursor.len() != n_vpes
        || ck.stream_len.len() != n_vpes
        || ck.grouping.assignment.len() != n_vpes
    {
        return Err(PipelineError::ResumeMismatch(format!(
            "checkpoint covers {} vPEs, trace has {}",
            ck.grouping.assignment.len(),
            n_vpes
        )));
    }
    if ck.month + 1 > trace.config.months {
        return Err(PipelineError::ResumeMismatch(format!(
            "checkpoint has {} completed months, trace only covers {}",
            ck.month, trace.config.months
        )));
    }

    // Replay the codec/stream mutation schedule recorded in the
    // adaptation log (mining, monthly trims + appends, per-adaptation
    // refresh + re-encode are all deterministic given the trace). The
    // trim-before-append order must mirror `run_month` exactly or the
    // cursor/stream verification below will (rightly) fail.
    let mut codec = pipeline::mine_codec(trace, cfg);
    let (mut cursor, mut streams) = pipeline::encode_month0(trace, &codec);
    let members = ck.grouping.members();
    let margin = pipeline::scoring_context(cfg);
    for m in 1..=ck.month {
        let m_end = month_start(m + 1);
        pipeline::trim_streams(&mut streams, &mut cursor, margin);
        pipeline::append_month(trace, &codec, &mut streams, &mut cursor, m_end);
        for &(_, g) in ck.adaptations.iter().filter(|&&(am, _)| am == m) {
            if g >= members.len() {
                return Err(PipelineError::ResumeMismatch(format!(
                    "adaptation log references group {} of {}",
                    g,
                    members.len()
                )));
            }
            let m_start = month_start(m);
            let week_end = m_start + cfg.adapt_span;
            let week_msgs = pipeline::collect_week(trace, &members[g], m_start, week_end);
            codec.refresh(&week_msgs);
            pipeline::reencode_members(
                trace,
                &codec,
                &mut streams,
                &mut cursor,
                &members[g],
                m_end,
            );
        }
    }
    if codec.to_saved() != ck.codec {
        return Err(PipelineError::ResumeMismatch(
            "replayed codec does not match the checkpointed codec".into(),
        ));
    }
    if codec.vocab_size() != ck.vocab {
        return Err(PipelineError::ResumeMismatch(format!(
            "replayed vocab {} does not match checkpointed {}",
            codec.vocab_size(),
            ck.vocab
        )));
    }
    if cursor != ck.cursor {
        return Err(PipelineError::ResumeMismatch(
            "replayed stream cursors do not match the checkpoint".into(),
        ));
    }
    let lens: Vec<usize> = streams.iter().map(|s| s.records().len()).collect();
    if lens != ck.stream_len {
        return Err(PipelineError::ResumeMismatch(
            "replayed stream lengths do not match the checkpoint".into(),
        ));
    }

    let k = ck.grouping.k;
    if ck.detectors.len() != k || ck.trigger.len() != k || ck.fa_baseline.len() != k {
        return Err(PipelineError::ResumeMismatch(format!(
            "checkpoint has {} detector states for {} groups",
            ck.detectors.len(),
            k
        )));
    }
    let mut detectors = Vec::with_capacity(k);
    for (g, st) in ck.detectors.iter().enumerate() {
        let mut det = pipeline::build_detector(cfg, ck.vocab, g, threads);
        det.load_state(st).map_err(PipelineError::Checkpoint)?;
        detectors.push(det);
    }
    let mut store = GroupModelStore::new(ck.grouping, detectors);
    store.trigger = ck.trigger;
    store.fa_baseline = ck.fa_baseline;

    Ok(PipelineState {
        codec,
        cursor,
        streams,
        store,
        months: ck.months,
        rollups: ck.rollups,
        adaptations: ck.adaptations,
        events: ck.events,
        next_month: ck.month + 1,
    })
}
