//! GRU-based next-template anomaly detector — the second recurrent
//! member of the detector zoo.
//!
//! Identical protocol to [`crate::lstm_detector::LstmDetector`] (window
//! the template stream, predict the next id, score by negative
//! log-likelihood; minority-pattern over-sampling during the initial
//! fit; frozen-bottom transfer learning after software updates) with the
//! LSTM cell swapped for a GRU ([`nfv_nn::GruSequenceModel`]). The GRU
//! carries ~25% fewer recurrent weights at the same hidden width, which
//! makes it the cheaper point on the ablation matrix's accuracy/runtime
//! trade-off curve.

use crate::detector::{AnomalyDetector, ScoredEvent};
use crate::par;
use crate::state;
use nfv_ml::sampling::oversample_indices;
use nfv_nn::checkpoint::{Checkpoint, CheckpointError};
use nfv_nn::{Adam, GruModelConfig, GruScratch, GruSequenceModel, SeqView, Trainer, TrainerConfig};
use nfv_syslog::stream::WindowSet;
use nfv_syslog::LogStream;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::{json, Value};

/// Hyper-parameters of [`GruDetector`].
#[derive(Debug, Clone)]
pub struct GruDetectorConfig {
    /// Dense vocabulary width (from the codec).
    pub vocab: usize,
    /// Window length k.
    pub window: usize,
    /// Embedding width.
    pub embed_dim: usize,
    /// GRU hidden width.
    pub hidden: usize,
    /// Stacked GRU layers.
    pub gru_layers: usize,
    /// Initial-fit epochs before over-sampling rounds.
    pub epochs: usize,
    /// Epochs per incremental monthly update.
    pub update_epochs: usize,
    /// Epochs per post-update adaptation.
    pub adapt_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate for the initial fit.
    pub lr: f32,
    /// A training window counts as misclassified when its true next
    /// template is outside the model's top-g predictions.
    pub top_g: usize,
    /// Maximum over-sampling rounds.
    pub oversample_rounds: usize,
    /// Replication factor for misclassified windows.
    pub oversample_boost: usize,
    /// Cap on training windows (reservoir-sampled above this).
    pub max_train_windows: usize,
    /// Append the normalized inter-arrival gap to each step's input.
    pub use_gap_feature: bool,
    /// Worker threads for training (deterministic gradient shards) and
    /// scoring (chunk fan-out). `0` = auto (`available_parallelism`).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GruDetectorConfig {
    fn default() -> Self {
        GruDetectorConfig {
            vocab: 64,
            window: 10,
            embed_dim: 16,
            hidden: 32,
            gru_layers: 2,
            epochs: 3,
            update_epochs: 1,
            adapt_epochs: 3,
            batch_size: 64,
            lr: 5e-3,
            top_g: 5,
            oversample_rounds: 2,
            oversample_boost: 4,
            max_train_windows: 60_000,
            use_gap_feature: true,
            threads: 1,
            seed: 7,
        }
    }
}

/// GRU next-template anomaly detector.
pub struct GruDetector {
    cfg: GruDetectorConfig,
    model: GruSequenceModel,
    rng: SmallRng,
}

impl GruDetector {
    /// Builds an untrained detector.
    pub fn new(cfg: GruDetectorConfig) -> GruDetector {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let model = GruSequenceModel::new(
            GruModelConfig {
                vocab: cfg.vocab,
                embed_dim: cfg.embed_dim,
                hidden: cfg.hidden,
                gru_layers: cfg.gru_layers,
                use_gap_feature: cfg.use_gap_feature,
            },
            &mut rng,
        );
        GruDetector { cfg, model, rng }
    }

    /// Read access to the underlying model (checkpointing, transfer).
    pub fn model(&self) -> &GruSequenceModel {
        &self.model
    }

    /// Overrides the worker-thread count (0 = auto).
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads;
    }

    /// The configured window length k.
    pub fn window(&self) -> usize {
        self.cfg.window
    }

    fn collect_windows(&self, streams: &[&LogStream]) -> WindowSet {
        let mut all = WindowSet::default();
        for s in streams {
            all.extend(s.windows(self.cfg.window));
        }
        all
    }

    fn subsample(&mut self, ws: WindowSet) -> WindowSet {
        if ws.len() <= self.cfg.max_train_windows {
            return ws;
        }
        let idx = nfv_ml::sampling::reservoir_sample(
            0..ws.len(),
            self.cfg.max_train_windows,
            &mut self.rng,
        );
        ws.gather(&idx)
    }

    fn train_epochs(&mut self, ws: &WindowSet, epochs: usize, lr: f32) {
        let indices: Vec<usize> = (0..ws.len()).collect();
        self.train_on_indices(ws, &indices, epochs, lr);
    }

    /// Resolved worker count (`cfg.threads`, 0 = auto).
    fn threads(&self) -> usize {
        par::effective_threads(self.cfg.threads, usize::MAX)
    }

    /// Trains on the selected windows of `ws` through the shared
    /// [`Trainer`] loop — same fresh-Adam-per-phase and deterministic
    /// sharding contract as the LSTM detector.
    fn train_on_indices(&mut self, ws: &WindowSet, indices: &[usize], epochs: usize, lr: f32) {
        if indices.is_empty() {
            return;
        }
        let shapes = self.model.param_shapes();
        let cfg = TrainerConfig {
            epochs,
            batch_size: self.cfg.batch_size,
            threads: self.threads(),
            ..TrainerConfig::default()
        };
        let mut trainer = Trainer::new(cfg, Adam::new(lr, &shapes), &shapes);
        let view = SeqView { ids: &ws.ids, gaps: &ws.gaps, targets: &ws.targets };
        if let Err(e) = trainer.fit_indices_sharded(&mut self.model, &view, indices, &mut self.rng)
        {
            eprintln!("gru training aborted: {}", e);
        }
    }

    /// Batched inference over `ws` in fixed 512-window chunks fanned out
    /// across workers; bit-identical to a serial pass for any thread
    /// count (fixed chunk boundaries, row-independent forward math).
    fn predict_map<R: Send>(
        &self,
        ws: &WindowSet,
        f: impl Fn(usize, usize, &[f32]) -> R + Sync,
    ) -> Vec<R> {
        self.predict_map_threads(ws, self.threads(), f)
    }

    /// [`GruDetector::predict_map`] with an explicit worker count for
    /// the cross-vPE batched path. Any value yields the same bits.
    fn predict_map_threads<R: Send>(
        &self,
        ws: &WindowSet,
        threads: usize,
        f: impl Fn(usize, usize, &[f32]) -> R + Sync,
    ) -> Vec<R> {
        const CHUNK: usize = 512;
        let view = SeqView { ids: &ws.ids, gaps: &ws.gaps, targets: &[] };
        let starts: Vec<usize> = (0..ws.len()).step_by(CHUNK).collect();
        par::par_blocks(&starts, threads, |_, block| {
            let mut scratch = GruScratch::default();
            let mut chunk = Vec::with_capacity(CHUNK);
            let mut out = Vec::new();
            for &start in block {
                chunk.clear();
                chunk.extend(start..(start + CHUNK).min(ws.len()));
                let probs = self.model.predict_probs_view(&view, &chunk, &mut scratch);
                for (row, &global_idx) in chunk.iter().enumerate() {
                    out.push(f(global_idx, ws.targets[global_idx], probs.row(row)));
                }
            }
            out
        })
    }

    /// Indices of training windows whose target is outside the model's
    /// top-g predictions.
    fn misclassified(&self, ws: &WindowSet) -> Vec<usize> {
        let missed = self.predict_map(ws, |_, target, probs| {
            let top = nfv_tensor::vecops::top_k(probs, self.cfg.top_g);
            !top.contains(&target)
        });
        missed.iter().enumerate().filter_map(|(i, &m)| m.then_some(i)).collect()
    }

    fn fit_windows(&mut self, ws: WindowSet) {
        let ws = self.subsample(ws);
        if ws.is_empty() {
            return;
        }
        self.train_epochs(&ws, self.cfg.epochs, self.cfg.lr);

        // Minority-pattern over-sampling rounds: keep going while the
        // training false-positive rate improves.
        let mut prev_fp = usize::MAX;
        for _ in 0..self.cfg.oversample_rounds {
            let missed = self.misclassified(&ws);
            if missed.is_empty() || missed.len() >= prev_fp {
                break;
            }
            prev_fp = missed.len();
            let mix = oversample_indices(
                ws.len(),
                &missed,
                self.cfg.oversample_boost,
                0.25,
                &mut self.rng,
            );
            self.train_on_indices(&ws, &mix, 1, self.cfg.lr * 0.5);
        }
    }

    /// Training false-positive rate on a window set (fraction of normal
    /// windows flagged at the top-g rule).
    pub fn training_fp_rate(&self, streams: &[&LogStream]) -> f32 {
        let ws = self.collect_windows(streams);
        if ws.is_empty() {
            return 0.0;
        }
        self.misclassified(&ws).len() as f32 / ws.len() as f32
    }
}

impl AnomalyDetector for GruDetector {
    fn name(&self) -> &'static str {
        "gru"
    }

    fn fit(&mut self, streams: &[&LogStream]) {
        let ws = self.collect_windows(streams);
        self.fit_windows(ws);
    }

    fn update(&mut self, streams: &[&LogStream]) {
        // Reduced-rate monthly refresh, same rationale as the LSTM.
        let ws = self.collect_windows(streams);
        let ws = self.subsample(ws);
        self.train_epochs(&ws, self.cfg.update_epochs, self.cfg.lr * 0.15);
    }

    fn adapt(&mut self, streams: &[&LogStream]) {
        // Transfer learning: freeze embedding + bottom GRU, fine-tune
        // the top layers on the small post-update sample.
        let ws = self.collect_windows(streams);
        let ws = self.subsample(ws);
        self.model.set_frozen_bottom(2);
        self.train_epochs(&ws, self.cfg.adapt_epochs, self.cfg.lr);
        self.model.set_frozen_bottom(0);
    }

    fn score(&self, stream: &LogStream, start: u64, end: u64) -> Vec<ScoredEvent> {
        let ws = stream.windows_in(self.cfg.window, start, end, |_| true);
        self.predict_map(&ws, |global_idx, target, probs| {
            let p = probs[target].max(1e-9);
            ScoredEvent { time: ws.times[global_idx], score: -p.ln() }
        })
    }

    /// Cross-vPE batched scoring, bit-identical to per-stream `score` —
    /// same gather/scatter contract as the LSTM detector.
    fn score_batch(
        &self,
        streams: &[&LogStream],
        start: u64,
        end: u64,
        threads: usize,
    ) -> Vec<Vec<ScoredEvent>> {
        let mut all = WindowSet::default();
        let mut counts = Vec::with_capacity(streams.len());
        for s in streams {
            let before = all.len();
            all.extend(s.windows_in(self.cfg.window, start, end, |_| true));
            counts.push(all.len() - before);
        }
        let flat = self.predict_map_threads(
            &all,
            par::effective_threads(threads, usize::MAX),
            |global_idx, target, probs| {
                let p = probs[target].max(1e-9);
                ScoredEvent { time: all.times[global_idx], score: -p.ln() }
            },
        );
        let mut out = Vec::with_capacity(streams.len());
        let mut off = 0;
        for c in counts {
            out.push(flat[off..off + c].to_vec());
            off += c;
        }
        out
    }

    fn to_state(&self) -> Value {
        json!({
            "detector": self.name(),
            "model": self.model.to_checkpoint().to_value(),
            "rng": state::rng_value(&self.rng),
        })
    }

    fn load_state(&mut self, st: &Value) -> Result<(), CheckpointError> {
        state::check_tag(st, self.name())?;
        let ckpt = Checkpoint::from_value(state::require(st, "model")?)?;
        let model = GruSequenceModel::try_from_checkpoint(&ckpt)?;
        if model.config().vocab != self.cfg.vocab {
            return Err(CheckpointError::Invalid(format!(
                "gru state vocab {} does not match configured {}",
                model.config().vocab,
                self.cfg.vocab
            )));
        }
        self.rng = state::rng_from_value(state::require(st, "rng")?)?;
        self.model = model;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_syslog::LogRecord;
    use rand::Rng;

    fn training_stream(len: usize, seed: u64) -> LogStream {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut records = Vec::with_capacity(len);
        let mut state = 0usize;
        for i in 0..len {
            let template = if rng.gen::<f32>() < 0.1 {
                rng.gen_range(1..6)
            } else {
                state + 1 // ids 1..=5
            };
            state = (state + 1) % 5;
            records.push(LogRecord { time: i as u64 * 30, template });
        }
        LogStream::from_records(records)
    }

    fn tiny_cfg() -> GruDetectorConfig {
        GruDetectorConfig {
            vocab: 8,
            window: 5,
            embed_dim: 6,
            hidden: 12,
            gru_layers: 2,
            epochs: 4,
            batch_size: 32,
            max_train_windows: 3000,
            ..Default::default()
        }
    }

    #[test]
    fn anomalous_burst_scores_above_normal_traffic() {
        let train = training_stream(1200, 1);
        let mut det = GruDetector::new(tiny_cfg());
        det.fit(&[&train]);

        // Test stream: same behaviour, then a burst of template 7 (never
        // seen in training).
        let mut records: Vec<LogRecord> = training_stream(300, 2).records().to_vec();
        let t0 = records.last().unwrap().time;
        for j in 0..5 {
            records.push(LogRecord { time: t0 + 10 + j, template: 7 });
        }
        let test = LogStream::from_records(records);
        let events = det.score(&test, 0, u64::MAX);

        let burst_scores: Vec<f32> =
            events.iter().filter(|e| e.time > t0).map(|e| e.score).collect();
        let normal_scores: Vec<f32> =
            events.iter().filter(|e| e.time <= t0).map(|e| e.score).collect();
        assert!(!burst_scores.is_empty());
        let normal_mean = normal_scores.iter().sum::<f32>() / normal_scores.len() as f32;
        let burst_min = burst_scores.iter().cloned().fold(f32::MAX, f32::min);
        assert!(
            burst_min > normal_mean + 1.0,
            "burst min {} vs normal mean {}",
            burst_min,
            normal_mean
        );
    }

    #[test]
    fn fit_reduces_training_fp_rate() {
        let train = training_stream(1500, 3);
        let mut det = GruDetector::new(tiny_cfg());
        let before = det.training_fp_rate(&[&train]);
        det.fit(&[&train]);
        let after = det.training_fp_rate(&[&train]);
        assert!(after < before * 0.6, "fp rate {} -> {}", before, after);
        assert!(after < 0.15, "post-fit fp rate {}", after);
    }

    #[test]
    fn state_roundtrip_is_bit_identical() {
        let train = training_stream(900, 4);
        let mut det = GruDetector::new(tiny_cfg());
        det.fit(&[&train]);

        let st = det.to_state();
        let mut restored = GruDetector::new(tiny_cfg());
        restored.load_state(&st).unwrap();

        let test = training_stream(300, 5);
        let a = det.score(&test, 0, u64::MAX);
        let b = restored.score(&test, 0, u64::MAX);
        assert_eq!(a, b, "restored detector must score identically");
        // And the restored RNG must continue the same trajectory: a
        // further update from identical state stays bit-identical.
        det.update(&[&test]);
        restored.update(&[&test]);
        let a2 = det.score(&test, 0, u64::MAX);
        let b2 = restored.score(&test, 0, u64::MAX);
        assert_eq!(a2, b2, "post-restore updates must stay on the same trajectory");
    }

    #[test]
    fn load_state_rejects_wrong_tag_and_vocab() {
        use crate::lstm_detector::{LstmDetector, LstmDetectorConfig};

        let mut det = GruDetector::new(tiny_cfg());
        let other = LstmDetector::new(LstmDetectorConfig { vocab: 8, ..Default::default() });
        assert!(det.load_state(&other.to_state()).is_err(), "wrong tag must be rejected");

        let bigger = GruDetector::new(GruDetectorConfig { vocab: 16, ..tiny_cfg() });
        let st = bigger.to_state();
        assert!(det.load_state(&st).is_err(), "vocab mismatch must be rejected");
    }

    #[test]
    fn score_batch_matches_per_stream_at_any_thread_count() {
        let train = training_stream(1000, 6);
        let mut det = GruDetector::new(tiny_cfg());
        det.fit(&[&train]);

        let streams: Vec<LogStream> =
            (0..3).map(|s| training_stream(400 + 100 * s, 20 + s as u64)).collect();
        let refs: Vec<&LogStream> = streams.iter().collect();
        let per_stream: Vec<Vec<ScoredEvent>> =
            refs.iter().map(|s| det.score(s, 0, u64::MAX)).collect();
        for threads in [1, 2, 4] {
            let batched = det.score_batch(&refs, 0, u64::MAX, threads);
            assert_eq!(batched, per_stream, "threads={} diverged", threads);
        }
    }

    #[test]
    fn adapt_keeps_frozen_bottom_weights_bit_identical() {
        use nfv_nn::Trainable;

        let train = training_stream(900, 10);
        let mut det = GruDetector::new(tiny_cfg());
        det.fit(&[&train]);

        let before: Vec<Vec<f32>> =
            det.model().params().iter().map(|p| p.as_slice().to_vec()).collect();

        let shifted = LogStream::from_records(
            (0..300).map(|i| LogRecord { time: i as u64 * 30, template: 6 + (i % 2) }).collect(),
        );
        det.adapt(&[&shifted]);

        let after = det.model().params();
        // Frozen: embedding (1 matrix) + bottom GRU (wx, wh, b).
        for (i, (b, a)) in before.iter().zip(after.iter()).enumerate().take(4) {
            assert_eq!(b.as_slice(), a.as_slice(), "frozen parameter {} changed during adapt", i);
        }
        let unfrozen_moved =
            before.iter().zip(after.iter()).skip(4).any(|(b, a)| b.as_slice() != a.as_slice());
        assert!(unfrozen_moved, "adapt should still update the unfrozen top layers");
    }

    #[test]
    fn empty_training_data_is_harmless() {
        let mut det = GruDetector::new(tiny_cfg());
        det.fit(&[]);
        let empty = LogStream::from_records(vec![]);
        assert!(det.score(&empty, 0, u64::MAX).is_empty());
    }
}
