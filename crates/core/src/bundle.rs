//! Deployable model bundles: codec + trained LSTM + operating
//! parameters, serialized as one JSON file so a detector can be trained
//! offline and shipped to a monitoring host (the `nfvpredict` CLI's
//! `train`/`detect` workflow).
//!
//! Bundles share the checksummed envelope format of
//! [`nfv_nn::checkpoint`]: a flipped byte, truncated file, or
//! incompatible shape surfaces as a typed [`CheckpointError`] instead of
//! a panic or a silently-wrong detector, and saves are atomic.

use crate::codec::{LogCodec, SavedCodec};
use crate::lstm_detector::{LstmDetector, LstmDetectorConfig};
use crate::mapping::MappingConfig;
use crate::online::OnlineMonitor;
use nfv_nn::checkpoint::{
    atomic_write_tagged, load_with_retry, open_envelope, seal_envelope, Checkpoint, CheckpointError,
};
use serde_json::{json, Value};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// On-disk format marker for model bundles.
pub const BUNDLE_FORMAT: &str = "nfv-model-bundle";

/// A bundle unpacked once and shared across many monitors.
///
/// [`ModelBundle::try_unpack`] reconstructs the codec table and the
/// full LSTM weight set; doing that per feed multiplies the fleet's
/// memory by the model size. `SharedModel` holds one `Arc`'d copy and
/// [`SharedModel::monitor`] stamps out per-feed monitors that borrow
/// it, so N feeds cost one model plus N × O(window) cursor state.
#[derive(Clone)]
pub struct SharedModel {
    /// The template codec, shared by every monitor.
    pub codec: Arc<LogCodec>,
    /// The trained detector, shared by every monitor.
    pub detector: Arc<LstmDetector>,
    /// Calibrated anomaly threshold.
    pub threshold: f32,
    /// Clustering/mapping parameters.
    pub mapping: MappingConfig,
}

impl SharedModel {
    /// Builds a fresh per-feed monitor over the shared model. Each call
    /// is two `Arc` clones — no codec or weight duplication.
    pub fn monitor(&self) -> OnlineMonitor {
        OnlineMonitor::new_shared(
            Arc::clone(&self.codec),
            Arc::clone(&self.detector),
            self.threshold,
            self.mapping,
        )
    }
}

/// Everything needed to run detection on a fresh syslog feed.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// The template codec.
    pub codec: SavedCodec,
    /// The trained sequence model.
    pub model: Checkpoint,
    /// Window length k used at training time.
    pub window: usize,
    /// Calibrated anomaly threshold (score >= threshold is anomalous).
    pub threshold: f32,
    /// Predictive period for ticket mapping, seconds.
    pub predictive_period: u64,
    /// Warning-cluster gap, seconds.
    pub cluster_gap: u64,
    /// Minimum anomalies per warning cluster.
    pub min_cluster: usize,
}

impl ModelBundle {
    /// Packs a trained detector, its codec, and the chosen operating
    /// threshold into a bundle.
    pub fn pack(
        codec: &LogCodec,
        detector: &LstmDetector,
        threshold: f32,
        mapping: &MappingConfig,
    ) -> ModelBundle {
        ModelBundle {
            codec: codec.to_saved(),
            model: detector.model().to_checkpoint(),
            window: detector.window(),
            threshold,
            predictive_period: mapping.predictive_period,
            cluster_gap: mapping.cluster_gap,
            min_cluster: mapping.min_cluster,
        }
    }

    /// Reconstructs the codec and detector, validating the embedded
    /// checkpoint against the architecture its dims describe.
    pub fn try_unpack(&self) -> Result<(LogCodec, LstmDetector), CheckpointError> {
        let codec = LogCodec::from_saved(&self.codec);
        let model = nfv_nn::SequenceModel::try_from_checkpoint(&self.model)?;
        let cfg = LstmDetectorConfig {
            vocab: model.config().vocab,
            window: self.window,
            embed_dim: model.config().embed_dim,
            hidden: model.config().hidden,
            lstm_layers: model.config().lstm_layers,
            use_gap_feature: model.config().use_gap_feature,
            ..Default::default()
        };
        let detector = LstmDetector::from_model(cfg, model);
        Ok((codec, detector))
    }

    /// Panicking convenience wrapper around [`ModelBundle::try_unpack`]
    /// for bundles known to be valid (e.g. packed in-process).
    pub fn unpack(&self) -> (LogCodec, LstmDetector) {
        self.try_unpack().expect("valid model bundle")
    }

    /// Unpacks the bundle once into a [`SharedModel`] whose codec and
    /// weights can back any number of [`OnlineMonitor`]s.
    pub fn try_unpack_shared(&self) -> Result<SharedModel, CheckpointError> {
        let (codec, detector) = self.try_unpack()?;
        Ok(SharedModel {
            codec: Arc::new(codec),
            detector: Arc::new(detector),
            threshold: self.threshold,
            mapping: self.mapping(),
        })
    }

    /// The mapping configuration carried by the bundle.
    pub fn mapping(&self) -> MappingConfig {
        MappingConfig {
            predictive_period: self.predictive_period,
            cluster_gap: self.cluster_gap,
            min_cluster: self.min_cluster,
        }
    }

    /// JSON value form (the envelope payload).
    pub fn to_value(&self) -> Value {
        json!({
            "codec": self.codec.to_value(),
            "model": self.model.to_value(),
            "window": self.window,
            "threshold": self.threshold,
            "predictive_period": self.predictive_period,
            "cluster_gap": self.cluster_gap,
            "min_cluster": self.min_cluster,
        })
    }

    /// Parses the JSON value form, validating every matrix shape.
    pub fn from_value(v: &Value) -> Result<Self, CheckpointError> {
        fn get_u64(v: &Value, field: &str) -> Result<u64, CheckpointError> {
            v.get(field)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| CheckpointError::MissingField(field.to_string()))
        }
        let codec = SavedCodec::from_value(
            v.get("codec").ok_or_else(|| CheckpointError::MissingField("codec".into()))?,
        )?;
        let model = Checkpoint::from_value(
            v.get("model").ok_or_else(|| CheckpointError::MissingField("model".into()))?,
        )?;
        let threshold = v
            .get("threshold")
            .and_then(|x| x.as_f64())
            .ok_or_else(|| CheckpointError::MissingField("threshold".into()))?
            as f32;
        Ok(ModelBundle {
            codec,
            model,
            window: get_u64(v, "window")? as usize,
            threshold,
            predictive_period: get_u64(v, "predictive_period")?,
            cluster_gap: get_u64(v, "cluster_gap")?,
            min_cluster: get_u64(v, "min_cluster")? as usize,
        })
    }

    /// Parses and integrity-checks envelope text.
    pub fn from_envelope_str(text: &str) -> Result<Self, CheckpointError> {
        ModelBundle::from_value(&open_envelope(BUNDLE_FORMAT, text)?)
    }

    /// Atomically and durably writes the bundle as checksummed JSON
    /// (temp file synced before rename, directory synced after — a
    /// monitoring host hot-reloading this path can never observe a torn
    /// or rolled-back bundle after a crash).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        atomic_write_tagged(path, &seal_envelope(BUNDLE_FORMAT, self.to_value()), "bundle.save")
    }

    /// Loads a bundle written by [`ModelBundle::save`], verifying the
    /// envelope checksum and the embedded checkpoint's shapes.
    pub fn load(path: &Path) -> Result<ModelBundle, CheckpointError> {
        nfv_fail::io_check("bundle.load")?;
        ModelBundle::from_envelope_str(&std::fs::read_to_string(path)?)
    }

    /// [`ModelBundle::load`] with retry/backoff on transient i/o errors.
    pub fn load_with_retry(
        path: &Path,
        attempts: u32,
        initial_backoff: Duration,
    ) -> Result<ModelBundle, CheckpointError> {
        load_with_retry(path, attempts, initial_backoff, |text| {
            // The failpoint sits inside the retry loop so an `err(n)`
            // policy exercises the backoff path before healing.
            nfv_fail::io_check("bundle.load")?;
            ModelBundle::from_envelope_str(text)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::AnomalyDetector;
    use nfv_syslog::message::Severity;
    use nfv_syslog::{LogStream, SyslogMessage};

    fn sample_messages() -> Vec<SyslogMessage> {
        (0..200)
            .map(|i| SyslogMessage {
                timestamp: i * 60,
                host: "vpe00".into(),
                process: "rpd".into(),
                severity: Severity::Info,
                text: format!("BGP peer 10.0.{}.1 keepalive ok count {}", i % 8, i),
            })
            .collect()
    }

    fn small_bundle() -> ModelBundle {
        let msgs = sample_messages();
        let codec = LogCodec::train(&msgs, 2);
        let det = LstmDetector::new(LstmDetectorConfig {
            vocab: codec.vocab_size(),
            window: 3,
            embed_dim: 4,
            hidden: 6,
            ..Default::default()
        });
        ModelBundle::pack(&codec, &det, 1.0, &MappingConfig::default())
    }

    #[test]
    fn pack_unpack_roundtrip_preserves_scores() {
        let msgs = sample_messages();
        let codec = LogCodec::train(&msgs, 4);
        let mut det = LstmDetector::new(LstmDetectorConfig {
            vocab: codec.vocab_size(),
            window: 4,
            embed_dim: 6,
            hidden: 8,
            epochs: 1,
            max_train_windows: 500,
            ..Default::default()
        });
        let stream = codec.encode_stream(&msgs);
        det.fit(&[&stream]);

        let bundle = ModelBundle::pack(&codec, &det, 3.5, &MappingConfig::default());
        let (codec2, det2) = bundle.unpack();

        let stream2 = codec2.encode_stream(&msgs);
        assert_eq!(stream2.records(), stream.records());
        let a = det.score(&stream, 0, u64::MAX);
        let b = det2.score(&stream2, 0, u64::MAX);
        assert_eq!(a, b);
        assert_eq!(bundle.mapping().min_cluster, 2);
    }

    #[test]
    fn shared_monitors_alias_one_model_and_match_owned_behaviour() {
        let msgs = sample_messages();
        let codec = LogCodec::train(&msgs, 4);
        let mut det = LstmDetector::new(LstmDetectorConfig {
            vocab: codec.vocab_size(),
            window: 4,
            embed_dim: 6,
            hidden: 8,
            epochs: 1,
            max_train_windows: 500,
            ..Default::default()
        });
        let stream = codec.encode_stream(&msgs);
        det.fit(&[&stream]);
        // Threshold low enough that some windows are anomalous.
        let bundle = ModelBundle::pack(&codec, &det, 0.5, &MappingConfig::default());

        let shared = bundle.try_unpack_shared().unwrap();
        let mut a = shared.monitor();
        let mut b = shared.monitor();
        assert!(Arc::ptr_eq(a.detector(), b.detector()), "monitors must share one model");

        // Both shared monitors and a conventionally unpacked one must
        // emit identical warnings over the same feed.
        let (codec_own, det_own) = bundle.try_unpack().unwrap();
        let mut owned = OnlineMonitor::new(codec_own, det_own, bundle.threshold, bundle.mapping());
        let (mut wa, mut wb, mut wo) = (Vec::new(), Vec::new(), Vec::new());
        a.observe_batch(&msgs, &mut wa);
        b.observe_batch(&msgs, &mut wb);
        owned.observe_batch(&msgs, &mut wo);
        assert_eq!(wa, wb);
        assert_eq!(wa, wo);
        assert_eq!(a.windows_scored(), owned.windows_scored());
        assert!(a.windows_scored() > 0, "feed long enough to score");
    }

    #[test]
    fn file_roundtrip() {
        let bundle = small_bundle();
        let dir = std::env::temp_dir().join("nfv_bundle_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.json");
        bundle.save(&path).unwrap();
        let loaded = ModelBundle::load(&path).unwrap();
        assert_eq!(loaded.threshold, 1.0);
        assert_eq!(loaded.window, 3);
        assert!(!path.with_extension("tmp").exists());
        let (_, det2) = loaded.unpack();
        let empty = LogStream::from_records(vec![]);
        assert!(det2.score(&empty, 0, u64::MAX).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_bundle_is_rejected_not_panicking() {
        let bundle = small_bundle();
        let text = seal_envelope(BUNDLE_FORMAT, bundle.to_value());

        // Truncation.
        match ModelBundle::from_envelope_str(&text[..text.len() / 2]) {
            Err(CheckpointError::Json { .. }) => {}
            other => panic!("expected Json error, got {:?}", other),
        }

        // Payload edit without re-checksumming.
        let tampered = text.replace("\"window\":3", "\"window\":4");
        assert_ne!(tampered, text);
        match ModelBundle::from_envelope_str(&tampered) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {:?}", other),
        }
    }

    #[test]
    fn dims_params_mismatch_is_a_typed_error() {
        let mut bundle = small_bundle();
        // Claim a different hidden width than the stored matrices have.
        bundle.model.dims[2] += 1;
        match bundle.try_unpack() {
            Err(CheckpointError::Invalid(_)) => {}
            Err(other) => panic!("expected Invalid, got {:?}", other),
            Ok(_) => panic!("expected Invalid, got Ok"),
        }
        // Drop a parameter matrix entirely.
        let mut bundle2 = small_bundle();
        bundle2.model.params.pop();
        match bundle2.try_unpack() {
            Err(CheckpointError::Invalid(_)) => {}
            Err(other) => panic!("expected Invalid, got {:?}", other),
            Ok(_) => panic!("expected Invalid, got Ok"),
        }
    }
}
