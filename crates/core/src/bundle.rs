//! Deployable model bundles: codec + trained LSTM + operating
//! parameters, serialized as one JSON file so a detector can be trained
//! offline and shipped to a monitoring host (the `nfvpredict` CLI's
//! `train`/`detect` workflow).

use crate::codec::{LogCodec, SavedCodec};
use crate::lstm_detector::{LstmDetector, LstmDetectorConfig};
use crate::mapping::MappingConfig;
use nfv_nn::checkpoint::Checkpoint;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Everything needed to run detection on a fresh syslog feed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    /// The template codec.
    pub codec: SavedCodec,
    /// The trained sequence model.
    pub model: Checkpoint,
    /// Window length k used at training time.
    pub window: usize,
    /// Calibrated anomaly threshold (score >= threshold is anomalous).
    pub threshold: f32,
    /// Predictive period for ticket mapping, seconds.
    pub predictive_period: u64,
    /// Warning-cluster gap, seconds.
    pub cluster_gap: u64,
    /// Minimum anomalies per warning cluster.
    pub min_cluster: usize,
}

impl ModelBundle {
    /// Packs a trained detector, its codec, and the chosen operating
    /// threshold into a bundle.
    pub fn pack(
        codec: &LogCodec,
        detector: &LstmDetector,
        threshold: f32,
        mapping: &MappingConfig,
    ) -> ModelBundle {
        ModelBundle {
            codec: codec.to_saved(),
            model: detector.model().to_checkpoint(),
            window: detector.window(),
            threshold,
            predictive_period: mapping.predictive_period,
            cluster_gap: mapping.cluster_gap,
            min_cluster: mapping.min_cluster,
        }
    }

    /// Reconstructs the codec and detector.
    pub fn unpack(&self) -> (LogCodec, LstmDetector) {
        let codec = LogCodec::from_saved(&self.codec);
        let model = nfv_nn::SequenceModel::from_checkpoint(&self.model);
        let cfg = LstmDetectorConfig {
            vocab: model.config().vocab,
            window: self.window,
            embed_dim: model.config().embed_dim,
            hidden: model.config().hidden,
            lstm_layers: model.config().lstm_layers,
            use_gap_feature: model.config().use_gap_feature,
            ..Default::default()
        };
        let detector = LstmDetector::from_model(cfg, model);
        (codec, detector)
    }

    /// The mapping configuration carried by the bundle.
    pub fn mapping(&self) -> MappingConfig {
        MappingConfig {
            predictive_period: self.predictive_period,
            cluster_gap: self.cluster_gap,
            min_cluster: self.min_cluster,
        }
    }

    /// Writes the bundle as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, serde_json::to_string(self).map_err(io::Error::other)?)
    }

    /// Loads a bundle written by [`ModelBundle::save`].
    pub fn load(path: &Path) -> io::Result<ModelBundle> {
        serde_json::from_str(&std::fs::read_to_string(path)?).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::AnomalyDetector;
    use nfv_syslog::message::Severity;
    use nfv_syslog::{LogStream, SyslogMessage};

    fn sample_messages() -> Vec<SyslogMessage> {
        (0..200)
            .map(|i| SyslogMessage {
                timestamp: i * 60,
                host: "vpe00".into(),
                process: "rpd".into(),
                severity: Severity::Info,
                text: format!("BGP peer 10.0.{}.1 keepalive ok count {}", i % 8, i),
            })
            .collect()
    }

    #[test]
    fn pack_unpack_roundtrip_preserves_scores() {
        let msgs = sample_messages();
        let codec = LogCodec::train(&msgs, 4);
        let mut det = LstmDetector::new(LstmDetectorConfig {
            vocab: codec.vocab_size(),
            window: 4,
            embed_dim: 6,
            hidden: 8,
            epochs: 1,
            max_train_windows: 500,
            ..Default::default()
        });
        let stream = codec.encode_stream(&msgs);
        det.fit(&[&stream]);

        let bundle = ModelBundle::pack(&codec, &det, 3.5, &MappingConfig::default());
        let (codec2, det2) = bundle.unpack();

        let stream2 = codec2.encode_stream(&msgs);
        assert_eq!(stream2.records(), stream.records());
        let a = det.score(&stream, 0, u64::MAX);
        let b = det2.score(&stream2, 0, u64::MAX);
        assert_eq!(a, b);
        assert_eq!(bundle.mapping().min_cluster, 2);
    }

    #[test]
    fn file_roundtrip() {
        let msgs = sample_messages();
        let codec = LogCodec::train(&msgs, 2);
        let det = LstmDetector::new(LstmDetectorConfig {
            vocab: codec.vocab_size(),
            window: 3,
            embed_dim: 4,
            hidden: 6,
            ..Default::default()
        });
        let bundle = ModelBundle::pack(&codec, &det, 1.0, &MappingConfig::default());
        let dir = std::env::temp_dir().join("nfv_bundle_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.json");
        bundle.save(&path).unwrap();
        let loaded = ModelBundle::load(&path).unwrap();
        assert_eq!(loaded.threshold, 1.0);
        assert_eq!(loaded.window, 3);
        let (_, det2) = loaded.unpack();
        let empty = LogStream::from_records(vec![]);
        assert!(det2.score(&empty, 0, u64::MAX).is_empty());
        std::fs::remove_file(&path).ok();
    }
}
