//! Evaluation over pipeline runs: precision-recall sweeps (Fig 5/6),
//! monthly F-measure timelines (Fig 7), per-ticket-type detection rates
//! (Fig 8), and false-alarm rates.

use crate::mapping::{map_clusters, warning_clusters, MappingConfig, MappingResult, TicketOutcome};
use crate::pipeline::PipelineRun;
use nfv_ml::{PrCurve, PrPoint};
use nfv_simnet::{Ticket, TicketCause};
use nfv_syslog::time::{month_start, DAY};

/// Drops warning clusters that start inside one of the vPE's scheduled
/// maintenance windows (expected work, not a false alarm).
fn unsuppressed(run: &PipelineRun, vpe: usize, clusters: Vec<u64>) -> Vec<u64> {
    let Some(windows) = run.suppression.get(vpe) else { return clusters };
    clusters.into_iter().filter(|&c| !windows.iter().any(|&(lo, hi)| c >= lo && c <= hi)).collect()
}

/// Maps one vPE's events at a threshold against its tickets.
fn map_vpe(
    run: &PipelineRun,
    vpe: usize,
    threshold: f32,
    mapping: &MappingConfig,
) -> MappingResult {
    let events = run.events_for(vpe);
    let clusters = unsuppressed(run, vpe, warning_clusters(&events, threshold, mapping));
    let tickets: Vec<Ticket> = run.tickets.iter().filter(|t| t.vpe == vpe).copied().collect();
    map_clusters(&clusters, &tickets, mapping)
}

/// Merged mapping across the fleet at one threshold.
pub fn fleet_mapping(run: &PipelineRun, threshold: f32, mapping: &MappingConfig) -> MappingResult {
    let mut merged = MappingResult::default();
    for vpe in 0..run.n_vpes() {
        merged.merge(map_vpe(run, vpe, threshold, mapping));
    }
    merged
}

/// Builds the precision-recall curve by sweeping detection thresholds
/// over the run's score distribution (quantile grid, so the sweep
/// resolves the interesting high-score region well).
pub fn sweep_prc(run: &PipelineRun, mapping: &MappingConfig, n_thresholds: usize) -> PrCurve {
    assert!(n_thresholds >= 2, "need at least two thresholds");
    let mut scores: Vec<f32> =
        (0..run.n_vpes()).flat_map(|v| run.events_for(v).into_iter().map(|e| e.score)).collect();
    if scores.is_empty() {
        return PrCurve::default();
    }
    // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: the latter is
    // an inconsistent comparator when a NaN score slips in, so the sorted
    // order — and therefore every quantile threshold below — would depend
    // on the input permutation. Under the IEEE total order NaNs sort
    // deterministically past +inf, and the non-finite guard below keeps
    // them from ever becoming thresholds.
    scores.sort_by(f32::total_cmp);

    // Quantile grid concentrated near the top of the distribution:
    // q = 1 - 0.5^(i * step) walks from the median towards the max.
    let mut points = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for i in 0..n_thresholds {
        let frac = i as f64 / (n_thresholds - 1) as f64;
        let q = 1.0 - 0.5f64.powf(1.0 + frac * 13.0);
        let idx = ((scores.len() - 1) as f64 * q) as usize;
        let threshold = scores[idx];
        if !threshold.is_finite() || !seen.insert(threshold.to_bits()) {
            continue;
        }
        let counts = fleet_mapping(run, threshold, mapping).confusion();
        points.push(PrPoint {
            threshold,
            precision: counts.precision(),
            recall: counts.recall(),
            f_measure: counts.f_measure(),
        });
    }
    points.sort_by(|a, b| a.threshold.total_cmp(&b.threshold));
    PrCurve { points }
}

/// Metrics of one tested month at a fixed threshold.
#[derive(Debug, Clone, Copy)]
pub struct MonthlyMetric {
    /// Zero-based month index.
    pub month: usize,
    /// Precision over this month's clusters/tickets.
    pub precision: f32,
    /// Recall over this month's tickets.
    pub recall: f32,
    /// F-measure.
    pub f_measure: f32,
    /// False alarms per day across the fleet.
    pub false_alarms_per_day: f32,
}

/// Computes the per-month metric timeline at a fixed operating
/// threshold (Fig 7). Tickets are attributed to the month of their
/// report time.
pub fn monthly_metrics(
    run: &PipelineRun,
    mapping: &MappingConfig,
    threshold: f32,
) -> Vec<MonthlyMetric> {
    run.months
        .iter()
        .enumerate()
        .map(|(idx, month)| {
            let m_start = month_start(month.month);
            let m_end = month_start(month.month + 1);
            let mut merged = MappingResult::default();
            for (vpe, events) in month.per_vpe.iter().enumerate() {
                // Early warnings for a ticket reported just after the
                // month boundary live in the *previous* month's events;
                // include that month's trailing predictive window so a
                // correct prediction is not double-penalized (a false
                // alarm there plus a false negative here).
                let mut window_events = Vec::new();
                if idx > 0 {
                    let carry_start = m_start.saturating_sub(mapping.predictive_period);
                    window_events.extend(
                        run.months[idx - 1].per_vpe[vpe]
                            .iter()
                            .filter(|e| e.time >= carry_start)
                            .copied(),
                    );
                }
                let carry_cutoff = m_start;
                window_events.extend(events.iter().copied());
                let clusters =
                    unsuppressed(run, vpe, warning_clusters(&window_events, threshold, mapping));
                // Include a lookahead: tickets reported shortly after the
                // month end can absorb this month's trailing clusters as
                // early warnings (instead of booking them as false
                // alarms); those tickets are then dropped from this
                // month's recall accounting below.
                let tickets: Vec<Ticket> = run
                    .tickets
                    .iter()
                    .filter(|t| {
                        t.vpe == vpe
                            && t.report_time >= m_start
                            && t.report_time < m_end + mapping.predictive_period
                    })
                    .copied()
                    .collect();
                let mut result = map_clusters(&clusters, &tickets, mapping);
                result.per_ticket.retain(|o| o.report_time < m_end);
                // Carried-in clusters belong to the previous month's
                // false-alarm accounting; only keep them here when they
                // mapped to one of this month's tickets.
                let unmapped_carry = clusters
                    .iter()
                    .filter(|&&c| c < carry_cutoff)
                    .filter(|&&c| {
                        !tickets.iter().any(|t| {
                            c >= t.report_time.saturating_sub(mapping.predictive_period)
                                && c <= t.repair_time
                        })
                    })
                    .count();
                result.false_alarms -= unmapped_carry.min(result.false_alarms);
                merged.merge(result);
            }
            let counts = merged.confusion();
            let days = (m_end - m_start) as f32 / DAY as f32;
            MonthlyMetric {
                month: month.month,
                precision: counts.precision(),
                recall: counts.recall(),
                f_measure: counts.f_measure(),
                false_alarms_per_day: merged.false_alarms as f32 / days,
            }
        })
        .collect()
}

/// Detection rates per ticket type at a set of time offsets relative to
/// ticket report time (Fig 8). `offsets` are in seconds, negative =
/// before the ticket. Returns `(cause, rates_per_offset, ticket_count)`
/// rows plus an `All` row at the end keyed by `None`.
pub fn per_type_detection(
    run: &PipelineRun,
    mapping: &MappingConfig,
    threshold: f32,
    offsets: &[i64],
) -> Vec<(Option<TicketCause>, Vec<f32>, usize)> {
    let mut outcomes: Vec<TicketOutcome> = Vec::new();
    for vpe in 0..run.n_vpes() {
        outcomes.extend(map_vpe(run, vpe, threshold, mapping).per_ticket);
    }
    let causes = [
        TicketCause::Cable,
        TicketCause::Circuit,
        TicketCause::Hardware,
        TicketCause::Software,
        TicketCause::Duplicate,
    ];
    let mut rows = Vec::new();
    for cause in causes {
        let of_type: Vec<&TicketOutcome> = outcomes.iter().filter(|o| o.cause == cause).collect();
        if of_type.is_empty() {
            rows.push((Some(cause), vec![0.0; offsets.len()], 0));
            continue;
        }
        let rates = offsets
            .iter()
            .map(|&off| {
                of_type.iter().filter(|o| o.detected_by(off)).count() as f32 / of_type.len() as f32
            })
            .collect();
        rows.push((Some(cause), rates, of_type.len()));
    }
    let rates_all = offsets
        .iter()
        .map(|&off| {
            if outcomes.is_empty() {
                0.0
            } else {
                outcomes.iter().filter(|o| o.detected_by(off)).count() as f32
                    / outcomes.len() as f32
            }
        })
        .collect();
    rows.push((None, rates_all, outcomes.len()));
    rows
}

/// Fleet-wide false alarms per day at a threshold (the paper reports
/// 0.6/day for all vPEs at the operating point).
pub fn false_alarms_per_day(run: &PipelineRun, mapping: &MappingConfig, threshold: f32) -> f32 {
    let merged = fleet_mapping(run, threshold, mapping);
    let tested_months = run.months.len() as f32;
    let days = tested_months * 30.4;
    merged.false_alarms as f32 / days
}

/// The standard Fig 8 offsets: -15 min, -5 min, 0, +5 min, +15 min.
pub const FIG8_OFFSETS: [i64; 5] = [-900, -300, 0, 300, 900];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::ScoredEvent;
    use crate::grouping::Grouping;
    use crate::pipeline::MonthScores;

    /// Hand-built run: 1 vPE, 2 tested months, scores crafted so that
    /// threshold 1.0 separates anomalies.
    fn toy_run() -> PipelineRun {
        let m1 = month_start(1);
        let m2 = month_start(2);
        let tickets = vec![
            Ticket {
                id: 0,
                vpe: 0,
                cause: TicketCause::Circuit,
                report_time: m1 + 50_000,
                repair_time: m1 + 60_000,
                core_incident: false,
            },
            Ticket {
                id: 1,
                vpe: 0,
                cause: TicketCause::Software,
                report_time: m2 + 400_000,
                repair_time: m2 + 410_000,
                core_incident: false,
            },
        ];
        // Month 1: an early-warning pair 10 min before ticket 0, plus a
        // false-alarm pair far away. Month 2: nothing for ticket 1.
        let month1 = MonthScores {
            month: 1,
            per_vpe: vec![vec![
                ScoredEvent { time: m1 + 49_400, score: 5.0 },
                ScoredEvent { time: m1 + 49_430, score: 5.0 },
                ScoredEvent { time: m1 + 900_000, score: 5.0 },
                ScoredEvent { time: m1 + 900_030, score: 5.0 },
                ScoredEvent { time: m1 + 100_000, score: 0.1 },
            ]],
        };
        let month2 = MonthScores {
            month: 2,
            per_vpe: vec![vec![ScoredEvent { time: m2 + 10_000, score: 0.2 }]],
        };
        PipelineRun {
            months: vec![month1, month2],
            rollups: vec![],
            tickets,
            adaptations: vec![],
            grouping: Grouping::single(1),
            vocab: 8,
            suppression: vec![Vec::new()],
            events: vec![],
        }
    }

    #[test]
    fn fleet_mapping_counts_toy_case() {
        let run = toy_run();
        let r = fleet_mapping(&run, 1.0, &MappingConfig::default());
        assert_eq!(r.early_warnings, 1);
        assert_eq!(r.false_alarms, 1);
        let c = r.confusion();
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 1); // ticket 1 missed
    }

    #[test]
    fn monthly_metrics_attribute_tickets_to_months() {
        let run = toy_run();
        let metrics = monthly_metrics(&run, &MappingConfig::default(), 1.0);
        assert_eq!(metrics.len(), 2);
        // Month 1: 1 TP, 1 FP, 0 FN -> P=0.5, R=1.
        assert!((metrics[0].precision - 0.5).abs() < 1e-6);
        assert!((metrics[0].recall - 1.0).abs() < 1e-6);
        // Month 2: nothing detected, 1 ticket missed -> R=0.
        assert_eq!(metrics[1].recall, 0.0);
        assert!(metrics[0].false_alarms_per_day > 0.0);
    }

    #[test]
    fn month_boundary_early_warning_is_not_double_penalized() {
        // Ticket reported 100 s into month 2; the warning cluster sits
        // 10 minutes earlier, at the tail of month 1.
        let m2 = month_start(2);
        let tickets = vec![Ticket {
            id: 0,
            vpe: 0,
            cause: TicketCause::Circuit,
            report_time: m2 + 100,
            repair_time: m2 + 5_000,
            core_incident: false,
        }];
        let month1 = MonthScores {
            month: 1,
            per_vpe: vec![vec![
                ScoredEvent { time: m2 - 600, score: 5.0 },
                ScoredEvent { time: m2 - 580, score: 5.0 },
            ]],
        };
        let month2 = MonthScores { month: 2, per_vpe: vec![vec![]] };
        let run = PipelineRun {
            months: vec![month1, month2],
            rollups: vec![],
            tickets,
            adaptations: vec![],
            grouping: Grouping::single(1),
            vocab: 8,
            suppression: vec![Vec::new()],
            events: vec![],
        };
        let metrics = monthly_metrics(&run, &MappingConfig::default(), 1.0);
        // Month 2 must see the carried-in cluster: recall 1, no FN.
        assert!((metrics[1].recall - 1.0).abs() < 1e-6, "recall {}", metrics[1].recall);
        // Month 1 must not charge the cluster as a false alarm either:
        // the lookahead maps it to next month's ticket.
        assert_eq!(metrics[0].false_alarms_per_day, 0.0);
        assert_eq!(metrics[1].false_alarms_per_day, 0.0);
        // Month 1's precision is clean: its one cluster is a true
        // positive (early warning for the lookahead ticket), not a false
        // alarm.
        assert!((metrics[0].precision - 1.0).abs() < 1e-6, "p {}", metrics[0].precision);
    }

    #[test]
    fn per_type_detection_reports_circuit_early() {
        let run = toy_run();
        let rows = per_type_detection(&run, &MappingConfig::default(), 1.0, &FIG8_OFFSETS);
        let circuit = rows.iter().find(|(c, _, _)| *c == Some(TicketCause::Circuit)).unwrap();
        // Early warning at -600 s: detected at -300 but not at -900.
        assert_eq!(circuit.1, vec![0.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(circuit.2, 1);
        let software = rows.iter().find(|(c, _, _)| *c == Some(TicketCause::Software)).unwrap();
        assert_eq!(software.1, vec![0.0; 5]);
        let all = rows.last().unwrap();
        assert_eq!(all.0, None);
        assert_eq!(all.2, 2);
        assert!((all.1[4] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sweep_prc_is_consistent_with_fixed_threshold() {
        let run = toy_run();
        let curve = sweep_prc(&run, &MappingConfig::default(), 24);
        assert!(!curve.points.is_empty());
        let best = curve.best_f_point().unwrap();
        // At high thresholds the toy data gives TP=1 (the early-warning
        // cluster), FP=1 (the stray pair), FN=1 (the undetected ticket):
        // P = R = F = 0.5.
        assert!((best.f_measure - 0.5).abs() < 1e-5, "best F {}", best.f_measure);
        assert!((best.precision - 0.5).abs() < 1e-5);
        // The sweep at any threshold must agree with fleet_mapping.
        let counts = fleet_mapping(&run, best.threshold, &MappingConfig::default()).confusion();
        assert!((counts.f_measure() - best.f_measure).abs() < 1e-6);
    }

    /// Builds a single-vPE run from one month of events, in the given
    /// order. Only the score stream differs between permutations.
    fn run_from_events(events: Vec<ScoredEvent>) -> PipelineRun {
        let tickets = vec![Ticket {
            id: 0,
            vpe: 0,
            cause: TicketCause::Circuit,
            report_time: month_start(1) + 500_000,
            repair_time: month_start(1) + 510_000,
            core_incident: false,
        }];
        PipelineRun {
            months: vec![MonthScores { month: 1, per_vpe: vec![events] }],
            rollups: vec![],
            tickets,
            adaptations: vec![],
            grouping: Grouping::single(1),
            vocab: 8,
            suppression: vec![Vec::new()],
            events: vec![],
        }
    }

    #[test]
    fn nan_bearing_scores_give_order_independent_pr_curve() {
        // A NaN in the score stream must not make the curve depend on
        // input order: under the old `partial_cmp(..).unwrap_or(Equal)`
        // comparator the NaN compares Equal to everything, the sort
        // order of the finite scores becomes permutation-dependent, and
        // the quantile thresholds (hence the whole curve) silently
        // change with event order. `total_cmp` restores a total order.
        // Eight events share each timestamp: `events_for` time-sorts
        // stably, so the stored (permuted) order survives into the score
        // stream the sweep sorts. Scores are pairwise distinct.
        let m1 = month_start(1);
        let mut events: Vec<ScoredEvent> = (0..64)
            .map(|i| ScoredEvent {
                time: m1 + 1_000 + (i as u64 / 8) * 7_000,
                score: ((i * 37) % 101) as f32 * 0.11,
            })
            .collect();
        events[20].score = f32::NAN;

        let curve_of = |events: Vec<ScoredEvent>| {
            let run = run_from_events(events);
            sweep_prc(&run, &MappingConfig::default(), 40)
                .points
                .iter()
                .map(|p| (p.threshold.to_bits(), p.precision, p.recall, p.f_measure))
                .collect::<Vec<_>>()
        };

        let base = curve_of(events.clone());
        assert!(!base.is_empty());
        assert!(base.iter().all(|&(bits, ..)| f32::from_bits(bits).is_finite()));

        let mut reversed = events.clone();
        reversed.reverse();
        assert_eq!(curve_of(reversed), base, "reversed event order changed the PR curve");

        let mut rotated = events.clone();
        rotated.rotate_left(29);
        assert_eq!(curve_of(rotated), base, "rotated event order changed the PR curve");
    }

    #[test]
    fn empty_run_yields_empty_curve_without_panicking() {
        let run = run_from_events(vec![]);
        let curve = sweep_prc(&run, &MappingConfig::default(), 8);
        assert!(curve.points.is_empty());
        assert!(curve.best_f_point().is_none());
    }

    #[test]
    fn false_alarm_rate_scales_with_threshold() {
        let run = toy_run();
        let low = false_alarms_per_day(&run, &MappingConfig::default(), 0.05);
        let high = false_alarms_per_day(&run, &MappingConfig::default(), 10.0);
        assert!(low >= high);
        assert_eq!(high, 0.0);
    }
}
