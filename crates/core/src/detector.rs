//! The common anomaly-detector interface.
//!
//! All detectors consume vocabulary-encoded [`LogStream`]s (see
//! [`crate::codec::LogCodec`]) and emit time-stamped anomaly scores where
//! *higher means more anomalous*. Thresholding, clustering into warning
//! signatures, and mapping to tickets happen downstream in
//! [`crate::mapping`] so that every detector is evaluated identically —
//! the paper applies the same customization and adaptation mechanisms to
//! LSTM, Autoencoder and OC-SVM for a fair comparison (§5.2).

use nfv_nn::checkpoint::CheckpointError;
use nfv_syslog::LogStream;
use serde_json::Value;

/// One scored log event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEvent {
    /// Event timestamp (epoch seconds).
    pub time: u64,
    /// Anomaly score; higher = more anomalous.
    pub score: f32,
}

/// A trainable anomaly detector over template streams.
///
/// `Send + Sync` because the pipeline moves detectors into per-group
/// training threads and shares them immutably across per-vPE scoring
/// workers ([`crate::par`]); scoring is `&self` by construction.
pub trait AnomalyDetector: Send + Sync {
    /// Short name for reports (e.g. `"lstm"`).
    fn name(&self) -> &'static str;

    /// Initial training on normal-period streams (ticket neighbourhoods
    /// already excluded by the caller).
    fn fit(&mut self, streams: &[&LogStream]);

    /// Incremental monthly update with fresh normal data (§4.3's online
    /// learning). Must be cheaper than a full refit.
    fn update(&mut self, streams: &[&LogStream]);

    /// Fast post-software-update adaptation with a *small* amount of new
    /// data (§4.3's transfer learning: copy the trained model, fine-tune
    /// top layers on ~1 week of data). The default falls back to
    /// [`AnomalyDetector::update`].
    fn adapt(&mut self, streams: &[&LogStream]) {
        self.update(streams);
    }

    /// Scores events of `stream` whose timestamps fall in `[start, end)`.
    fn score(&self, stream: &LogStream, start: u64, end: u64) -> Vec<ScoredEvent>;

    /// Scores many streams against the same model in one call, returning
    /// one event vector per input stream (same order).
    ///
    /// Contract: the result must be bitwise identical to calling
    /// [`AnomalyDetector::score`] once per stream. The default keeps that
    /// trivially true by fanning the streams out over up to `threads`
    /// workers in stream order ([`crate::par::par_blocks`]); detectors
    /// whose forward math is row-independent (the LSTM) override this to
    /// coalesce all streams' windows into a few large GEMM passes and
    /// scatter the per-window scores back in stream order.
    fn score_batch(
        &self,
        streams: &[&LogStream],
        start: u64,
        end: u64,
        threads: usize,
    ) -> Vec<Vec<ScoredEvent>> {
        crate::par::par_blocks(streams, threads, |_, block| {
            block.iter().map(|s| self.score(s, start, end)).collect()
        })
    }

    /// Serializes the detector's complete learned state — model
    /// parameters *and* RNG position — as a tagged JSON value, so a
    /// restored detector continues bit-for-bit where this one stands
    /// (the crash-safe pipeline checkpoint, [`crate::pipeline_ckpt`]).
    fn to_state(&self) -> Value;

    /// Restores state captured by [`AnomalyDetector::to_state`] into a
    /// detector built with the *same configuration*. The state's tag
    /// must match [`AnomalyDetector::name`]; shape or tag mismatches
    /// surface as typed errors, never panics.
    fn load_state(&mut self, state: &Value) -> Result<(), CheckpointError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial detector used to pin down the trait's default behaviour.
    struct ConstDetector {
        fitted: bool,
        updates: usize,
    }

    impl AnomalyDetector for ConstDetector {
        fn name(&self) -> &'static str {
            "const"
        }
        fn fit(&mut self, _: &[&LogStream]) {
            self.fitted = true;
        }
        fn update(&mut self, _: &[&LogStream]) {
            self.updates += 1;
        }
        fn score(&self, stream: &LogStream, start: u64, end: u64) -> Vec<ScoredEvent> {
            stream
                .slice_time(start, end)
                .iter()
                .map(|r| ScoredEvent { time: r.time, score: 0.5 })
                .collect()
        }
        fn to_state(&self) -> Value {
            serde_json::json!({
                "detector": self.name(),
                "fitted": self.fitted,
                "updates": self.updates,
            })
        }
        fn load_state(&mut self, state: &Value) -> Result<(), CheckpointError> {
            crate::state::check_tag(state, self.name())?;
            self.fitted = crate::state::require(state, "fitted")?
                .as_bool()
                .ok_or_else(|| CheckpointError::MissingField("fitted".into()))?;
            self.updates = crate::state::require(state, "updates")?
                .as_u64()
                .ok_or_else(|| CheckpointError::MissingField("updates".into()))?
                as usize;
            Ok(())
        }
    }

    #[test]
    fn default_adapt_delegates_to_update() {
        let mut d = ConstDetector { fitted: false, updates: 0 };
        d.adapt(&[]);
        assert_eq!(d.updates, 1);
    }

    #[test]
    fn score_respects_time_bounds() {
        let d = ConstDetector { fitted: false, updates: 0 };
        let s = LogStream::from_records(vec![
            nfv_syslog::LogRecord { time: 5, template: 1 },
            nfv_syslog::LogRecord { time: 15, template: 2 },
        ]);
        let events = d.score(&s, 0, 10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time, 5);
    }
}
