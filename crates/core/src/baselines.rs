//! Baseline detectors the paper compares against (§5.2): an Autoencoder
//! over TF-IDF window features, a One-Class SVM over the same features,
//! and (as a related-work extension) the PCA residual detector of Xu et
//! al. All three run behind the same [`AnomalyDetector`] interface and
//! receive the same customization/adaptation treatment as the LSTM.

use crate::detector::{AnomalyDetector, ScoredEvent};
use crate::features::{count_windows, fit_tfidf, CountWindows, WindowingConfig};
use crate::par;
use crate::state;
use nfv_ml::{OneClassSvm, OneClassSvmConfig, Pca, TfIdf};
use nfv_nn::checkpoint::{Checkpoint, CheckpointError};
use nfv_nn::{Activation, Adam, Mlp, MseRows, Trainable, Trainer, TrainerConfig};
use nfv_syslog::LogStream;
use nfv_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::{json, Value};

/// Serializes an optional TF-IDF transformer (`null` when unfitted).
fn tfidf_value(tfidf: &Option<TfIdf>) -> Value {
    tfidf.as_ref().map(|t| Value::from(t.idf())).into()
}

/// Restores [`tfidf_value`] output.
fn tfidf_from_value(v: &Value) -> Result<Option<TfIdf>, CheckpointError> {
    if v.is_null() {
        return Ok(None);
    }
    let idf = state::f32s_from_value(v, "tfidf")?;
    if idf.is_empty() {
        return Err(CheckpointError::Invalid("tfidf state has no weights".into()));
    }
    Ok(Some(TfIdf::from_idf(idf)))
}

/// Hyper-parameters of [`AutoencoderDetector`].
#[derive(Debug, Clone)]
pub struct AutoencoderConfig {
    /// Dense vocabulary width.
    pub vocab: usize,
    /// Count-window extraction.
    pub windowing: WindowingConfig,
    /// Hidden width of the encoder/decoder.
    pub hidden: usize,
    /// Bottleneck width.
    pub bottleneck: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Epochs per incremental update.
    pub update_epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// Worker threads for the deterministic sharded trainer. `0` = auto
    /// (`available_parallelism`); weights are bit-identical regardless.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        AutoencoderConfig {
            vocab: 64,
            windowing: WindowingConfig::default(),
            hidden: 32,
            bottleneck: 8,
            epochs: 30,
            update_epochs: 8,
            lr: 3e-3,
            batch: 64,
            threads: 1,
            seed: 11,
        }
    }
}

/// Feed-forward autoencoder on TF-IDF features; the anomaly score is the
/// reconstruction error (Deng et al., cited by the paper).
pub struct AutoencoderDetector {
    cfg: AutoencoderConfig,
    tfidf: Option<TfIdf>,
    mlp: Mlp,
    rng: SmallRng,
}

impl AutoencoderDetector {
    /// Builds an untrained detector.
    pub fn new(cfg: AutoencoderConfig) -> AutoencoderDetector {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mlp = Mlp::new(
            &[cfg.vocab, cfg.hidden, cfg.bottleneck, cfg.hidden, cfg.vocab],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        AutoencoderDetector { cfg, tfidf: None, mlp, rng }
    }

    fn gather_features(&self, streams: &[&LogStream]) -> CountWindows {
        let mut all = CountWindows::default();
        for s in streams {
            let w = count_windows(s, self.cfg.vocab, &self.cfg.windowing, 0, u64::MAX);
            all.counts.extend(w.counts);
            all.times.extend(w.times);
        }
        all
    }

    fn train_on(&mut self, features: &[Vec<f32>], epochs: usize, lr: f32) {
        if features.is_empty() {
            return;
        }
        let shapes = self.mlp.param_shapes();
        let cfg = TrainerConfig {
            epochs,
            batch_size: self.cfg.batch,
            threads: par::effective_threads(self.cfg.threads, usize::MAX),
            ..TrainerConfig::default()
        };
        let mut trainer = Trainer::new(cfg, Adam::new(lr, &shapes), &shapes);
        // The autoencoder reconstructs its own input.
        let data = MseRows { x: features, target: features };
        if let Err(e) = trainer.fit_sharded(&mut self.mlp, &data, features.len(), &mut self.rng) {
            eprintln!("autoencoder training aborted: {}", e);
        }
    }

    fn reconstruction_error(&self, feature: &[f32]) -> f32 {
        let x = Matrix::from_vec(1, feature.len(), feature.to_vec());
        let y = self.mlp.infer(&x);
        x.as_slice().iter().zip(y.as_slice().iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
            / feature.len() as f32
    }
}

impl AnomalyDetector for AutoencoderDetector {
    fn name(&self) -> &'static str {
        "autoencoder"
    }

    fn fit(&mut self, streams: &[&LogStream]) {
        let windows = self.gather_features(streams);
        if windows.counts.is_empty() {
            return;
        }
        let (tfidf, features) = fit_tfidf(&windows);
        self.tfidf = Some(tfidf);
        let epochs = self.cfg.epochs;
        let lr = self.cfg.lr;
        self.train_on(&features, epochs, lr);
    }

    fn update(&mut self, streams: &[&LogStream]) {
        let Some(tfidf) = &self.tfidf else {
            return self.fit(streams);
        };
        let windows = self.gather_features(streams);
        let features = tfidf.transform_all(&windows.counts);
        let epochs = self.cfg.update_epochs;
        let lr = self.cfg.lr * 0.5;
        self.train_on(&features, epochs, lr);
    }

    fn score(&self, stream: &LogStream, start: u64, end: u64) -> Vec<ScoredEvent> {
        let Some(tfidf) = &self.tfidf else { return Vec::new() };
        // Score with step 1 so that every message gets a window ending at
        // its timestamp — the downstream >=2-anomalies-per-minute warning
        // clustering needs per-message score granularity.
        let scoring = WindowingConfig { width: self.cfg.windowing.width, step: 1 };
        let windows = count_windows(stream, self.cfg.vocab, &scoring, start, end);
        windows
            .counts
            .iter()
            .zip(windows.times.iter())
            .map(|(counts, &time)| {
                let f = tfidf.transform(counts);
                ScoredEvent { time, score: self.reconstruction_error(&f) }
            })
            .collect()
    }

    fn to_state(&self) -> Value {
        json!({
            "detector": self.name(),
            "mlp": self.mlp.to_checkpoint().to_value(),
            "tfidf": tfidf_value(&self.tfidf),
            "rng": state::rng_value(&self.rng),
        })
    }

    fn load_state(&mut self, st: &Value) -> Result<(), CheckpointError> {
        state::check_tag(st, self.name())?;
        let ckpt = Checkpoint::from_value(state::require(st, "mlp")?)?;
        let mlp = Mlp::try_from_checkpoint(&ckpt)?;
        let tfidf = tfidf_from_value(state::require(st, "tfidf")?)?;
        self.rng = state::rng_from_value(state::require(st, "rng")?)?;
        self.mlp = mlp;
        self.tfidf = tfidf;
        Ok(())
    }
}

/// Hyper-parameters of [`OcsvmDetector`].
#[derive(Debug, Clone)]
pub struct OcsvmDetectorConfig {
    /// Dense vocabulary width.
    pub vocab: usize,
    /// Count-window extraction.
    pub windowing: WindowingConfig,
    /// The underlying SVM solver configuration.
    pub svm: OneClassSvmConfig,
    /// RNG seed (subsampling).
    pub seed: u64,
}

impl Default for OcsvmDetectorConfig {
    fn default() -> Self {
        OcsvmDetectorConfig {
            vocab: 64,
            windowing: WindowingConfig::default(),
            svm: OneClassSvmConfig::default(),
            seed: 13,
        }
    }
}

/// One-Class SVM baseline: shallow learning over TF-IDF features.
pub struct OcsvmDetector {
    cfg: OcsvmDetectorConfig,
    tfidf: Option<TfIdf>,
    model: Option<OneClassSvm>,
    /// Sliding pool of recent features used by incremental refits.
    recent: Vec<Vec<f32>>,
    rng: SmallRng,
}

impl OcsvmDetector {
    /// Builds an untrained detector.
    pub fn new(cfg: OcsvmDetectorConfig) -> OcsvmDetector {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        OcsvmDetector { cfg, tfidf: None, model: None, recent: Vec::new(), rng }
    }

    fn gather_counts(&self, streams: &[&LogStream]) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for s in streams {
            out.extend(count_windows(s, self.cfg.vocab, &self.cfg.windowing, 0, u64::MAX).counts);
        }
        out
    }

    fn refit(&mut self) {
        if self.recent.is_empty() {
            return;
        }
        self.model = Some(OneClassSvm::fit(&self.recent, &self.cfg.svm, &mut self.rng));
    }
}

impl AnomalyDetector for OcsvmDetector {
    fn name(&self) -> &'static str {
        "ocsvm"
    }

    fn fit(&mut self, streams: &[&LogStream]) {
        let counts = self.gather_counts(streams);
        if counts.is_empty() {
            return;
        }
        let tfidf = TfIdf::fit(&counts);
        self.recent = tfidf.transform_all(&counts);
        self.tfidf = Some(tfidf);
        self.refit();
    }

    fn update(&mut self, streams: &[&LogStream]) {
        let Some(tfidf) = &self.tfidf else {
            return self.fit(streams);
        };
        let counts = self.gather_counts(streams);
        let mut features = tfidf.transform_all(&counts);
        // Blend: keep a sample of the old pool so the model doesn't
        // forget, then refit (shallow models retrain cheaply).
        let keep = self.recent.len().min(self.cfg.svm.max_train_points);
        let old =
            nfv_ml::sampling::reservoir_sample(self.recent.drain(..), keep / 2, &mut self.rng);
        features.extend(old);
        self.recent = features;
        self.refit();
    }

    fn adapt(&mut self, streams: &[&LogStream]) {
        // Post-update: the old feature pool describes the pre-update
        // distribution; drop it and refit on the fresh sample only.
        let Some(tfidf) = &self.tfidf else {
            return self.fit(streams);
        };
        let counts = self.gather_counts(streams);
        self.recent = tfidf.transform_all(&counts);
        self.refit();
    }

    fn score(&self, stream: &LogStream, start: u64, end: u64) -> Vec<ScoredEvent> {
        let (Some(tfidf), Some(model)) = (&self.tfidf, &self.model) else {
            return Vec::new();
        };
        let scoring = WindowingConfig { width: self.cfg.windowing.width, step: 1 };
        let windows = count_windows(stream, self.cfg.vocab, &scoring, start, end);
        windows
            .counts
            .iter()
            .zip(windows.times.iter())
            .map(|(counts, &time)| {
                let f = tfidf.transform(counts);
                ScoredEvent { time, score: model.score(&f) }
            })
            .collect()
    }

    fn to_state(&self) -> Value {
        json!({
            "detector": self.name(),
            "tfidf": tfidf_value(&self.tfidf),
            "svm": self.model.as_ref().map(|m| json!({
                "support_vectors": state::f32_rows_value(m.support_vectors()),
                "alphas": Value::from(m.alphas()),
                "rho": m.rho(),
                "gamma": m.gamma(),
            })),
            "recent": state::f32_rows_value(&self.recent),
            "rng": state::rng_value(&self.rng),
        })
    }

    fn load_state(&mut self, st: &Value) -> Result<(), CheckpointError> {
        state::check_tag(st, self.name())?;
        let tfidf = tfidf_from_value(state::require(st, "tfidf")?)?;
        let svm = state::require(st, "svm")?;
        let model = if svm.is_null() {
            None
        } else {
            let sv = state::f32_rows_from_value(state::require(svm, "support_vectors")?, "svm")?;
            let alphas = state::f32s_from_value(state::require(svm, "alphas")?, "svm")?;
            let rho = state::require(svm, "rho")?
                .as_f64()
                .ok_or_else(|| CheckpointError::MissingField("rho".into()))?
                as f32;
            let gamma = state::require(svm, "gamma")?
                .as_f64()
                .ok_or_else(|| CheckpointError::MissingField("gamma".into()))?
                as f32;
            if sv.len() != alphas.len() {
                return Err(CheckpointError::Invalid(format!(
                    "svm state: {} support vectors vs {} alphas",
                    sv.len(),
                    alphas.len()
                )));
            }
            if sv.windows(2).any(|w| w[0].len() != w[1].len()) {
                return Err(CheckpointError::Invalid("svm state: ragged support vectors".into()));
            }
            Some(OneClassSvm::from_parts(sv, alphas, rho, gamma))
        };
        let recent = state::f32_rows_from_value(state::require(st, "recent")?, "recent")?;
        self.rng = state::rng_from_value(state::require(st, "rng")?)?;
        self.tfidf = tfidf;
        self.model = model;
        self.recent = recent;
        Ok(())
    }
}

/// Hyper-parameters of [`PcaDetector`].
#[derive(Debug, Clone)]
pub struct PcaDetectorConfig {
    /// Dense vocabulary width.
    pub vocab: usize,
    /// Count-window extraction.
    pub windowing: WindowingConfig,
    /// Number of principal components retained.
    pub components: usize,
    /// RNG seed (power iteration start vectors).
    pub seed: u64,
}

impl Default for PcaDetectorConfig {
    fn default() -> Self {
        PcaDetectorConfig {
            vocab: 64,
            windowing: WindowingConfig::default(),
            components: 6,
            seed: 17,
        }
    }
}

/// PCA residual detector (Xu et al., SOSP '09) — extension baseline.
pub struct PcaDetector {
    cfg: PcaDetectorConfig,
    tfidf: Option<TfIdf>,
    model: Option<Pca>,
    rng: SmallRng,
}

impl PcaDetector {
    /// Builds an untrained detector.
    pub fn new(cfg: PcaDetectorConfig) -> PcaDetector {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        PcaDetector { cfg, tfidf: None, model: None, rng }
    }
}

impl AnomalyDetector for PcaDetector {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn fit(&mut self, streams: &[&LogStream]) {
        let mut counts = Vec::new();
        for s in streams {
            counts
                .extend(count_windows(s, self.cfg.vocab, &self.cfg.windowing, 0, u64::MAX).counts);
        }
        if counts.is_empty() {
            return;
        }
        let tfidf = TfIdf::fit(&counts);
        let features = tfidf.transform_all(&counts);
        self.model = Some(Pca::fit(&features, self.cfg.components, &mut self.rng));
        self.tfidf = Some(tfidf);
    }

    fn update(&mut self, streams: &[&LogStream]) {
        // PCA refits cheaply on fresh data.
        self.fit(streams);
    }

    fn score(&self, stream: &LogStream, start: u64, end: u64) -> Vec<ScoredEvent> {
        let (Some(tfidf), Some(model)) = (&self.tfidf, &self.model) else {
            return Vec::new();
        };
        let scoring = WindowingConfig { width: self.cfg.windowing.width, step: 1 };
        let windows = count_windows(stream, self.cfg.vocab, &scoring, start, end);
        windows
            .counts
            .iter()
            .zip(windows.times.iter())
            .map(|(counts, &time)| {
                let f = tfidf.transform(counts);
                ScoredEvent { time, score: model.residual_sq(&f) }
            })
            .collect()
    }

    fn to_state(&self) -> Value {
        json!({
            "detector": self.name(),
            "tfidf": tfidf_value(&self.tfidf),
            "pca": self.model.as_ref().map(|m| json!({
                "mean": Value::from(m.mean()),
                "components": state::f32_rows_value(m.components()),
                "explained": Value::from(m.explained_variance()),
            })),
            "rng": state::rng_value(&self.rng),
        })
    }

    fn load_state(&mut self, st: &Value) -> Result<(), CheckpointError> {
        state::check_tag(st, self.name())?;
        let tfidf = tfidf_from_value(state::require(st, "tfidf")?)?;
        let pca = state::require(st, "pca")?;
        let model = if pca.is_null() {
            None
        } else {
            let mean = state::f32s_from_value(state::require(pca, "mean")?, "pca")?;
            let components = state::f32_rows_from_value(state::require(pca, "components")?, "pca")?;
            let explained = state::f32s_from_value(state::require(pca, "explained")?, "pca")?;
            if components.len() != explained.len()
                || components.iter().any(|c| c.len() != mean.len())
            {
                return Err(CheckpointError::Invalid("pca state: inconsistent shapes".into()));
            }
            Some(Pca::from_parts(mean, components, explained))
        };
        self.rng = state::rng_from_value(state::require(st, "rng")?)?;
        self.tfidf = tfidf;
        self.model = model;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_syslog::LogRecord;
    use rand::Rng;

    /// Normal stream over templates 1..=5 with mild noise; anomalies are
    /// bursts of template 7.
    fn normal_stream(len: usize, seed: u64) -> LogStream {
        let mut rng = SmallRng::seed_from_u64(seed);
        LogStream::from_records(
            (0..len)
                .map(|i| LogRecord {
                    time: i as u64 * 20,
                    template: if rng.gen::<f32>() < 0.15 {
                        rng.gen_range(1..6)
                    } else {
                        1 + (i % 5)
                    },
                })
                .collect(),
        )
    }

    fn stream_with_burst(len: usize, seed: u64) -> (LogStream, u64) {
        let mut records = normal_stream(len, seed).records().to_vec();
        let t0 = records.last().unwrap().time;
        for j in 0..40 {
            records.push(LogRecord { time: t0 + 5 + j, template: 7 });
        }
        (LogStream::from_records(records), t0)
    }

    fn small_windowing() -> WindowingConfig {
        WindowingConfig { width: 16, step: 4 }
    }

    fn check_burst_detected(det: &mut dyn AnomalyDetector) {
        let train = normal_stream(1500, 1);
        det.fit(&[&train]);
        let (test, t0) = stream_with_burst(400, 2);
        let events = det.score(&test, 0, u64::MAX);
        assert!(!events.is_empty(), "{}: no events", det.name());
        let burst_max =
            events.iter().filter(|e| e.time > t0).map(|e| e.score).fold(f32::MIN, f32::max);
        let normal: Vec<f32> = events.iter().filter(|e| e.time <= t0).map(|e| e.score).collect();
        let normal_q90 = {
            let mut v = normal.clone();
            v.sort_by(f32::total_cmp);
            v[(v.len() as f32 * 0.9) as usize]
        };
        assert!(
            burst_max > normal_q90 * 1.5 || burst_max > normal_q90 + 0.05,
            "{}: burst {} vs normal q90 {}",
            det.name(),
            burst_max,
            normal_q90
        );
    }

    #[test]
    fn autoencoder_detects_burst() {
        let mut det = AutoencoderDetector::new(AutoencoderConfig {
            vocab: 8,
            windowing: small_windowing(),
            hidden: 12,
            bottleneck: 3,
            epochs: 20,
            ..Default::default()
        });
        check_burst_detected(&mut det);
    }

    #[test]
    fn ocsvm_detects_burst() {
        let mut det = OcsvmDetector::new(OcsvmDetectorConfig {
            vocab: 8,
            windowing: small_windowing(),
            ..Default::default()
        });
        check_burst_detected(&mut det);
    }

    #[test]
    fn pca_detects_burst() {
        let mut det = PcaDetector::new(PcaDetectorConfig {
            vocab: 8,
            windowing: small_windowing(),
            components: 3,
            ..Default::default()
        });
        check_burst_detected(&mut det);
    }

    #[test]
    fn unfitted_detectors_return_no_events() {
        let (test, _) = stream_with_burst(100, 3);
        let ae = AutoencoderDetector::new(AutoencoderConfig::default());
        let svm = OcsvmDetector::new(OcsvmDetectorConfig::default());
        let pca = PcaDetector::new(PcaDetectorConfig::default());
        assert!(ae.score(&test, 0, u64::MAX).is_empty());
        assert!(svm.score(&test, 0, u64::MAX).is_empty());
        assert!(pca.score(&test, 0, u64::MAX).is_empty());
    }

    #[test]
    fn update_keeps_detectors_functional() {
        let train = normal_stream(1200, 4);
        let fresh = normal_stream(600, 5);
        let mut det = OcsvmDetector::new(OcsvmDetectorConfig {
            vocab: 8,
            windowing: small_windowing(),
            ..Default::default()
        });
        det.fit(&[&train]);
        det.update(&[&fresh]);
        let (test, t0) = stream_with_burst(300, 6);
        let events = det.score(&test, 0, u64::MAX);
        let burst_max =
            events.iter().filter(|e| e.time > t0).map(|e| e.score).fold(f32::MIN, f32::max);
        let normal_mean = {
            let v: Vec<f32> = events.iter().filter(|e| e.time <= t0).map(|e| e.score).collect();
            v.iter().sum::<f32>() / v.len() as f32
        };
        assert!(burst_max > normal_mean, "burst {} vs normal {}", burst_max, normal_mean);
    }
}
