//! Mapping syslog anomalies to trouble tickets (Fig 4 of the paper).
//!
//! Thresholded anomaly events are first grouped into *warning clusters*
//! (the paper reports a warning only for >= 2 anomalies less than a
//! minute apart, §5.1). Each cluster is then mapped against ticket
//! windows: clusters inside `[report - predictive_period, report)` are
//! early warnings, clusters inside `[report, repair]` are errors, and
//! unmapped clusters are false alarms.

use crate::detector::ScoredEvent;
use nfv_ml::ConfusionCounts;
use nfv_simnet::{Ticket, TicketCause};
use nfv_syslog::time::{DAY, MINUTE};

/// Mapping parameters.
#[derive(Debug, Clone, Copy)]
pub struct MappingConfig {
    /// Length of the predictive period before ticket report time.
    pub predictive_period: u64,
    /// Maximum gap between anomalies in one warning cluster.
    pub cluster_gap: u64,
    /// Minimum anomalies per warning cluster.
    pub min_cluster: usize,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig { predictive_period: DAY, cluster_gap: MINUTE, min_cluster: 2 }
    }
}

/// Groups threshold-exceeding events into warning clusters and returns
/// the first timestamp of each cluster.
pub fn warning_clusters(events: &[ScoredEvent], threshold: f32, cfg: &MappingConfig) -> Vec<u64> {
    let mut flagged: Vec<u64> =
        events.iter().filter(|e| e.score >= threshold).map(|e| e.time).collect();
    flagged.sort_unstable();
    let mut clusters = Vec::new();
    let mut start = None;
    let mut prev = 0u64;
    let mut size = 0usize;
    for t in flagged {
        match start {
            Some(s) if t.saturating_sub(prev) <= cfg.cluster_gap => {
                prev = t;
                size += 1;
                let _ = s;
            }
            _ => {
                if size >= cfg.min_cluster {
                    clusters.push(start.expect("cluster has a start"));
                }
                start = Some(t);
                prev = t;
                size = 1;
            }
        }
    }
    if size >= cfg.min_cluster {
        clusters.push(start.expect("cluster has a start"));
    }
    clusters
}

/// Per-ticket mapping outcome.
#[derive(Debug, Clone, Copy)]
pub struct TicketOutcome {
    /// The ticket id.
    pub ticket: usize,
    /// Root cause (for the per-type breakdown of Fig 8).
    pub cause: TicketCause,
    /// Ticket report time.
    pub report_time: u64,
    /// Earliest mapped cluster time relative to the report time,
    /// negative when an early-warning cluster preceded the ticket;
    /// `None` when no cluster mapped to this ticket.
    pub earliest_offset: Option<i64>,
}

impl TicketOutcome {
    /// True when some anomaly was mapped no later than
    /// `report_time + offset` (offset may be negative).
    pub fn detected_by(&self, offset: i64) -> bool {
        matches!(self.earliest_offset, Some(o) if o <= offset)
    }
}

/// The result of mapping one vPE's warning clusters to its tickets.
#[derive(Debug, Clone, Default)]
pub struct MappingResult {
    /// Clusters that fell in some ticket's predictive period.
    pub early_warnings: usize,
    /// Clusters that fell in some ticket's infected period.
    pub errors: usize,
    /// Clusters mapped to no ticket.
    pub false_alarms: usize,
    /// One outcome per evaluated ticket.
    pub per_ticket: Vec<TicketOutcome>,
}

impl MappingResult {
    /// Merges another vPE's result into this one.
    pub fn merge(&mut self, other: MappingResult) {
        self.early_warnings += other.early_warnings;
        self.errors += other.errors;
        self.false_alarms += other.false_alarms;
        self.per_ticket.extend(other.per_ticket);
    }

    /// Confusion counts in the paper's sense: detected clusters that map
    /// to tickets are true positives, unmapped clusters false positives,
    /// and tickets without any mapped cluster false negatives.
    pub fn confusion(&self) -> ConfusionCounts {
        let missed = self.per_ticket.iter().filter(|t| t.earliest_offset.is_none()).count();
        ConfusionCounts::new(self.early_warnings + self.errors, self.false_alarms, missed)
    }
}

/// Maps warning clusters to tickets. `tickets` should contain the
/// tickets the caller wants evaluated (typically the vPE's
/// non-maintenance tickets inside the scoring window).
pub fn map_clusters(clusters: &[u64], tickets: &[Ticket], cfg: &MappingConfig) -> MappingResult {
    let mut result = MappingResult {
        per_ticket: tickets
            .iter()
            .map(|t| TicketOutcome {
                ticket: t.id,
                cause: t.cause,
                report_time: t.report_time,
                earliest_offset: None,
            })
            .collect(),
        ..Default::default()
    };

    for &c in clusters {
        let mut early = false;
        let mut error = false;
        for (ticket, outcome) in tickets.iter().zip(result.per_ticket.iter_mut()) {
            let window_start = ticket.report_time.saturating_sub(cfg.predictive_period);
            if c < window_start || c > ticket.repair_time {
                continue;
            }
            if c < ticket.report_time {
                early = true;
            } else {
                error = true;
            }
            let offset = c as i64 - ticket.report_time as i64;
            outcome.earliest_offset = Some(match outcome.earliest_offset {
                Some(prev) => prev.min(offset),
                None => offset,
            });
        }
        if early {
            result.early_warnings += 1;
        } else if error {
            result.errors += 1;
        } else {
            result.false_alarms += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, score: f32) -> ScoredEvent {
        ScoredEvent { time, score }
    }

    fn ticket(id: usize, report: u64, repair: u64) -> Ticket {
        Ticket {
            id,
            vpe: 0,
            cause: TicketCause::Circuit,
            report_time: report,
            repair_time: repair,
            core_incident: false,
        }
    }

    #[test]
    fn clustering_requires_two_close_anomalies() {
        let cfg = MappingConfig::default();
        // Lone anomaly: no warning.
        assert!(warning_clusters(&[ev(100, 9.0)], 1.0, &cfg).is_empty());
        // Two anomalies 30 s apart: one warning at the first time.
        assert_eq!(warning_clusters(&[ev(100, 9.0), ev(130, 9.0)], 1.0, &cfg), vec![100]);
        // Two anomalies 5 min apart: separate singletons, no warning.
        assert!(warning_clusters(&[ev(100, 9.0), ev(400, 9.0)], 1.0, &cfg).is_empty());
    }

    #[test]
    fn clustering_respects_threshold() {
        let cfg = MappingConfig::default();
        let events = [ev(100, 0.5), ev(120, 0.5), ev(200, 2.0), ev(220, 2.0)];
        assert_eq!(warning_clusters(&events, 1.0, &cfg), vec![200]);
        // Lower threshold admits the low-score pair too; the 80 s gap
        // between the pairs splits them into two clusters.
        assert_eq!(warning_clusters(&events, 0.1, &cfg), vec![100, 200]);
    }

    #[test]
    fn chained_anomalies_form_one_cluster() {
        let cfg = MappingConfig::default();
        // Each consecutive pair is within 60 s; the chain is one cluster.
        let events: Vec<ScoredEvent> = (0..10).map(|i| ev(1000 + i * 50, 5.0)).collect();
        assert_eq!(warning_clusters(&events, 1.0, &cfg), vec![1000]);
    }

    #[test]
    fn early_warning_error_and_false_alarm_are_distinguished() {
        let cfg = MappingConfig { predictive_period: 3600, ..Default::default() };
        let t = ticket(0, 10_000, 14_000);
        // Early warning 30 min before, error inside infected period,
        // false alarm far away.
        let clusters = vec![8_200, 12_000, 50_000];
        let r = map_clusters(&clusters, &[t], &cfg);
        assert_eq!(r.early_warnings, 1);
        assert_eq!(r.errors, 1);
        assert_eq!(r.false_alarms, 1);
        assert_eq!(r.per_ticket[0].earliest_offset, Some(-1800));
        assert!(r.per_ticket[0].detected_by(-900));
        assert!(!r.per_ticket[0].detected_by(-2000));
    }

    #[test]
    fn cluster_before_predictive_period_is_false_alarm() {
        let cfg = MappingConfig { predictive_period: 3600, ..Default::default() };
        let t = ticket(0, 100_000, 110_000);
        let r = map_clusters(&[90_000], &[t], &cfg);
        assert_eq!(r.false_alarms, 1);
        assert_eq!(r.per_ticket[0].earliest_offset, None);
    }

    #[test]
    fn one_ticket_can_absorb_multiple_clusters() {
        let cfg = MappingConfig { predictive_period: 3600, ..Default::default() };
        let t = ticket(0, 10_000, 20_000);
        let r = map_clusters(&[9_000, 9_500, 15_000], &[t], &cfg);
        assert_eq!(r.early_warnings, 2);
        assert_eq!(r.errors, 1);
        assert_eq!(r.false_alarms, 0);
        // Earliest offset wins.
        assert_eq!(r.per_ticket[0].earliest_offset, Some(-1000));
    }

    #[test]
    fn confusion_counts_follow_the_paper_semantics() {
        let cfg = MappingConfig { predictive_period: 3600, ..Default::default() };
        let tickets = [ticket(0, 10_000, 12_000), ticket(1, 100_000, 105_000)];
        // One early warning for ticket 0, one false alarm, ticket 1 missed.
        let r = map_clusters(&[9_000, 50_000], &tickets, &cfg);
        let c = r.confusion();
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 1);
    }

    #[test]
    fn merge_accumulates() {
        let cfg = MappingConfig { predictive_period: 3600, ..Default::default() };
        let mut a = map_clusters(&[9_000], &[ticket(0, 10_000, 12_000)], &cfg);
        let b = map_clusters(&[99_000], &[ticket(1, 100_000, 102_000)], &cfg);
        a.merge(b);
        assert_eq!(a.early_warnings, 2);
        assert_eq!(a.per_ticket.len(), 2);
    }

    #[test]
    fn overlapping_tickets_each_get_the_cluster() {
        let cfg = MappingConfig { predictive_period: 3600, ..Default::default() };
        let tickets = [ticket(0, 10_000, 20_000), ticket(1, 12_000, 22_000)];
        let r = map_clusters(&[11_000], &tickets, &cfg);
        // Inside ticket 0's infected period AND ticket 1's predictive period.
        assert_eq!(r.per_ticket[0].earliest_offset, Some(1000));
        assert_eq!(r.per_ticket[1].earliest_offset, Some(-1000));
        // The cluster is counted exactly once in the aggregate totals
        // (as an early warning, since it precedes ticket 1's report).
        assert_eq!(r.early_warnings, 1);
        assert_eq!(r.errors, 0);
        assert_eq!(r.false_alarms, 0);
    }
}
