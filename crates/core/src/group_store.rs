//! Fleet-scale model ownership: groups own models, vPEs own cursors.
//!
//! Before this module, every consumer of the pipeline's learned state
//! (monthly scoring, serving, checkpointing) walked parallel per-group
//! vectors scattered across [`crate::pipeline`], and scoring 10k vPEs
//! meant 10k independent small forward passes. [`GroupModelStore`] is
//! the single owner of everything that scales O(groups) — detectors,
//! trigger thresholds, false-alarm baselines, group membership — while
//! each vPE keeps only a [`VpeCursor`]: two stream offsets. The store's
//! batched entry points ([`GroupModelStore::score_fleet`],
//! [`GroupModelStore::score_group`]) coalesce same-group windows from
//! many vPEs into one [`AnomalyDetector::score_batch`] call, so a
//! group's month of scoring runs as a handful of large GEMM passes
//! instead of one small stream per vPE.
//!
//! ## Batching invariants
//!
//! Everything here is bit-identical to the one-vPE-at-a-time path it
//! replaced, by construction:
//!
//! 1. groups are visited in ascending group id, members in ascending
//!    vPE id (the order [`crate::grouping::Grouping::members`] yields);
//! 2. [`AnomalyDetector::score_batch`]'s contract requires its result
//!    to equal per-stream [`AnomalyDetector::score`] calls bitwise
//!    (row-independent forward math for the LSTM, a per-stream fan-out
//!    for every other family);
//! 3. results are scattered back keyed by vPE id, so the per-vPE event
//!    vectors land exactly where the serial loop would have put them.

use crate::detector::{AnomalyDetector, ScoredEvent};
use crate::grouping::Grouping;
use nfv_syslog::LogStream;

/// Compact per-vPE stream position: everything a vPE owns once models
/// moved into the [`GroupModelStore`] and history trimming keeps only a
/// scoring-context tail of each encoded stream.
///
/// Invariant: the vPE's encoded [`LogStream`] holds exactly
/// `consumed - trimmed` records, corresponding 1:1 to raw messages
/// `trimmed..consumed` of its trace (the codec maps each message to one
/// record).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VpeCursor {
    /// Raw messages encoded so far (exclusive end of the encoded range).
    pub consumed: usize,
    /// Raw messages whose records were dropped from the stream's front
    /// by history trimming.
    pub trimmed: usize,
}

impl VpeCursor {
    /// Records currently held in the vPE's encoded stream.
    pub fn retained(&self) -> usize {
        self.consumed - self.trimmed
    }
}

/// Owner of all per-*group* learned state: one detector, one trigger
/// threshold and one false-alarm baseline per group, plus the grouping
/// itself. Stored once per group — O(groups), not O(vPEs) — and borrowed
/// by the pipeline's monthly loop, the checkpointer and the serving
/// stack.
pub struct GroupModelStore {
    /// The vPE-to-group assignment.
    pub grouping: Grouping,
    /// Member vPE ids per group, ascending (cached from `grouping`).
    pub members: Vec<Vec<usize>>,
    /// One trained detector per group.
    pub detectors: Vec<Box<dyn AnomalyDetector>>,
    /// Online-trigger threshold per group (`+inf` = disabled).
    pub trigger: Vec<f32>,
    /// Smoothed false-alarm-rate baseline per group (`None` until the
    /// first non-surge month establishes one).
    pub fa_baseline: Vec<Option<f32>>,
}

impl GroupModelStore {
    /// Builds a store from a grouping and its per-group detectors, with
    /// triggers disabled and baselines unset (calibration fills them).
    pub fn new(grouping: Grouping, detectors: Vec<Box<dyn AnomalyDetector>>) -> GroupModelStore {
        assert_eq!(grouping.k, detectors.len(), "one detector per group");
        let members = grouping.members();
        let k = grouping.k;
        GroupModelStore {
            grouping,
            members,
            detectors,
            trigger: vec![f32::INFINITY; k],
            fa_baseline: vec![None; k],
        }
    }

    /// Number of groups.
    pub fn k(&self) -> usize {
        self.grouping.k
    }

    /// The group a vPE belongs to.
    pub fn group_of(&self, vpe: usize) -> usize {
        self.grouping.group_of(vpe)
    }

    /// The detector serving a vPE.
    pub fn detector_for(&self, vpe: usize) -> &dyn AnomalyDetector {
        self.detectors[self.group_of(vpe)].as_ref()
    }

    /// Scores `[start, end)` of every stream against its group's model,
    /// batching all of a group's member streams into one
    /// [`AnomalyDetector::score_batch`] call. Returns one event vector
    /// per vPE, indexed by vPE id — bit-identical to scoring each vPE
    /// individually (see the module docs for why).
    pub fn score_fleet(
        &self,
        streams: &[LogStream],
        start: u64,
        end: u64,
        threads: usize,
    ) -> Vec<Vec<ScoredEvent>> {
        let mut out: Vec<Vec<ScoredEvent>> = vec![Vec::new(); streams.len()];
        for (g, det) in self.detectors.iter().enumerate() {
            let refs: Vec<&LogStream> = self.members[g].iter().map(|&v| &streams[v]).collect();
            let scored = det.score_batch(&refs, start, end, threads);
            for (&v, events) in self.members[g].iter().zip(scored) {
                out[v] = events;
            }
        }
        out
    }

    /// Scores `[start, end)` of one group's member streams in a single
    /// batched call. Returns one event vector per member, in member
    /// (ascending vPE) order.
    pub fn score_group(
        &self,
        group: usize,
        streams: &[LogStream],
        start: u64,
        end: u64,
        threads: usize,
    ) -> Vec<Vec<ScoredEvent>> {
        let refs: Vec<&LogStream> = self.members[group].iter().map(|&v| &streams[v]).collect();
        self.detectors[group].score_batch(&refs, start, end, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_nn::checkpoint::CheckpointError;
    use nfv_syslog::LogRecord;
    use serde_json::Value;

    /// Scores every event with the group's fixed bias so scatter bugs
    /// (events landing on the wrong vPE) are visible in the output.
    struct BiasDetector {
        bias: f32,
    }

    impl AnomalyDetector for BiasDetector {
        fn name(&self) -> &'static str {
            "bias"
        }
        fn fit(&mut self, _: &[&LogStream]) {}
        fn update(&mut self, _: &[&LogStream]) {}
        fn score(&self, stream: &LogStream, start: u64, end: u64) -> Vec<ScoredEvent> {
            stream
                .slice_time(start, end)
                .iter()
                .map(|r| ScoredEvent { time: r.time, score: self.bias + r.template as f32 })
                .collect()
        }
        fn to_state(&self) -> Value {
            Value::Null
        }
        fn load_state(&mut self, _: &Value) -> Result<(), CheckpointError> {
            Ok(())
        }
    }

    fn stream(times: &[u64]) -> LogStream {
        LogStream::from_records(
            times.iter().enumerate().map(|(i, &t)| LogRecord { time: t, template: i }).collect(),
        )
    }

    fn store_2x2() -> GroupModelStore {
        // vPEs 0,2 -> group 0; vPEs 1,3 -> group 1.
        let grouping = Grouping { assignment: vec![0, 1, 0, 1], k: 2, modularity: 0.0 };
        GroupModelStore::new(
            grouping,
            vec![Box::new(BiasDetector { bias: 100.0 }), Box::new(BiasDetector { bias: 200.0 })],
        )
    }

    #[test]
    fn score_fleet_scatters_by_vpe_id() {
        let store = store_2x2();
        let streams = vec![stream(&[5]), stream(&[6]), stream(&[7]), stream(&[8])];
        let out = store.score_fleet(&streams, 0, 100, 2);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], vec![ScoredEvent { time: 5, score: 100.0 }]);
        assert_eq!(out[1], vec![ScoredEvent { time: 6, score: 200.0 }]);
        assert_eq!(out[2], vec![ScoredEvent { time: 7, score: 100.0 }]);
        assert_eq!(out[3], vec![ScoredEvent { time: 8, score: 200.0 }]);
    }

    #[test]
    fn score_fleet_matches_per_vpe_loop_for_any_thread_count() {
        let store = store_2x2();
        let streams = vec![stream(&[1, 9]), stream(&[2]), stream(&[3, 4]), stream(&[5])];
        let serial: Vec<Vec<ScoredEvent>> =
            (0..4).map(|v| store.detector_for(v).score(&streams[v], 0, 100)).collect();
        for threads in [1, 2, 4] {
            assert_eq!(store.score_fleet(&streams, 0, 100, threads), serial);
        }
    }

    #[test]
    fn score_group_returns_member_order() {
        let store = store_2x2();
        let streams = vec![stream(&[1]), stream(&[2]), stream(&[3]), stream(&[4])];
        let out = store.score_group(1, &streams, 0, 100, 1);
        assert_eq!(out.len(), 2, "group 1 has members 1 and 3");
        assert_eq!(out[0][0].time, 2);
        assert_eq!(out[1][0].time, 4);
    }

    #[test]
    fn cursor_retained_tracks_offsets() {
        let c = VpeCursor { consumed: 120, trimmed: 100 };
        assert_eq!(c.retained(), 20);
    }
}
