//! Overload-safe streaming serving runtime.
//!
//! `nfvpredict serve` keeps an [`OnlineMonitor`] fleet scoring live
//! syslog firehoses indefinitely. Raw lines flow from per-feed ingest
//! threads to a single scorer through bounded SPSC rings
//! ([`crate::spsc`]); the runtime's contract is that it **never blocks
//! the producer and never grows without bound**, no matter how far the
//! input rate outruns the scorer:
//!
//! * **ingress overflow** — a full ring rejects the incoming line; the
//!   producer counts it dropped and moves on (`dropped_overflow`);
//! * **drop-oldest shedding** — when a feed's backlog crosses the high
//!   watermark the scorer discards the *oldest* queued lines down to the
//!   low watermark (`dropped_shed`), so whatever does get scored is the
//!   freshest data;
//! * **graceful degradation** — sustained backlog switches the runtime
//!   to `Degraded`: every observer is told to score only every
//!   `degraded_stride`-th window (cheaper, coarser). Once the backlog
//!   stays below the exit threshold for `recover_ticks` consecutive
//!   sweeps, the runtime returns to `Healthy` and full-stride scoring;
//! * **watchdog** — in threaded mode a watchdog thread checks that the
//!   scorer heartbeats within its deadline and forces degraded mode when
//!   it stalls.
//!
//! The state machine is driven by queue backlog and sweep counts — not
//! wall-clock time — so the same [`ServeCore`] runs deterministically in
//! *step mode* (tests, replayable chaos scenarios: call
//! [`ServeCore::offer`] and [`ServeCore::sweep`] by hand) and in
//! *threaded mode* (producer threads own [`FeedPort`]s, the scorer loops
//! [`ServeCore::sweep`], a watchdog from [`ServeCore::spawn_watchdog`]
//! supervises).
//!
//! Accounting is exact: at [`ServeCore::finish`],
//! `lines_in == delivered + dropped_overflow + dropped_shed`
//! per feed, where `delivered` is the number of lines handed to the
//! [`FleetMonitor`] (which keeps its own parse/dedup/skip ledger from
//! there on). Overload drops are surfaced through each feed's
//! [`crate::supervisor::FeedHealth::overload_dropped`] counter and
//! [`FleetEvent::FeedOverloaded`] episodes.

use crate::online::OnlineMonitor;
use crate::spsc::{self, Consumer, Producer};
use crate::state::{require, str_field, u32_field, u64_field, u64s_from_value, usize_field};
use crate::supervisor::{FeedObserver, FleetEvent, FleetMonitor};
use nfv_nn::checkpoint::{atomic_write_tagged, open_envelope, seal_envelope, CheckpointError};
use serde_json::{json, Value};
use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables of the serving runtime.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Per-feed ring capacity in lines (rounded up to a power of two).
    pub capacity: usize,
    /// Maximum lines delivered to the fleet per sweep, split evenly
    /// across feeds. Models scorer capacity per tick in step mode.
    pub tick_budget: usize,
    /// Backlog fraction of total ring capacity at which the runtime
    /// enters `Degraded`.
    pub degrade_enter: f64,
    /// Backlog fraction at or below which a sweep counts as calm.
    pub degrade_exit: f64,
    /// Consecutive calm sweeps required to return to `Healthy` (also the
    /// drop-free sweeps that end a feed's overload episode).
    pub recover_ticks: u32,
    /// Observer scoring stride while degraded (1 = no shedding).
    pub degraded_stride: usize,
    /// Per-feed occupancy fraction that triggers drop-oldest shedding.
    pub shed_high: f64,
    /// Occupancy fraction shedding drains down to.
    pub shed_low: f64,
    /// Entries retained in the bounded recent-event log.
    pub event_log: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            capacity: 4096,
            tick_budget: 2048,
            degrade_enter: 0.75,
            degrade_exit: 0.25,
            recover_ticks: 3,
            degraded_stride: 4,
            shed_high: 0.875,
            shed_low: 0.5,
            event_log: 64,
        }
    }
}

/// Operating state of the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeState {
    /// Scoring keeps up; every eligible window is scored.
    Healthy,
    /// Backlog forced wide-stride scoring (or the watchdog tripped).
    Degraded,
}

/// Typed failures of the serving runtime's control surface. These were
/// once `expect` panics; a long-lived server must surface them to the
/// caller instead, which can degrade or retry rather than die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// [`ServeCore::take_port`] was called twice for the same feed.
    PortTaken {
        /// The feed whose port was already moved out.
        feed: usize,
    },
    /// A step-mode [`ServeCore::offer`] addressed a feed whose port was
    /// moved to a producer thread.
    PortMoved {
        /// The feed whose port is owned by a producer thread.
        feed: usize,
    },
    /// The feed index is out of range.
    NoSuchFeed {
        /// The requested feed index.
        feed: usize,
        /// Number of feeds the runtime was built with.
        feeds: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::PortTaken { feed } => {
                write!(f, "feed {} port already taken by a producer thread", feed)
            }
            ServeError::PortMoved { feed } => {
                write!(
                    f,
                    "feed {} port moved to a producer thread; step-mode offer unavailable",
                    feed
                )
            }
            ServeError::NoSuchFeed { feed, feeds } => {
                write!(f, "no such feed {} (runtime has {} feeds)", feed, feeds)
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Happenings recorded in the bounded event log.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// The runtime entered degraded mode.
    Degraded {
        /// Sweep index at which degradation engaged.
        tick: u64,
        /// Total backlog (lines) that triggered it.
        backlog: usize,
    },
    /// The runtime recovered to healthy, full-stride scoring.
    Recovered {
        /// Sweep index of the recovery.
        tick: u64,
    },
    /// The watchdog saw a missed heartbeat and forced degraded mode.
    WatchdogTrip {
        /// Sweep index at which the trip was observed by the scorer.
        tick: u64,
    },
    /// An event surfaced by the underlying [`FleetMonitor`].
    Fleet {
        /// Sweep index at which the event surfaced.
        tick: u64,
        /// The fleet event.
        event: FleetEvent,
    },
}

/// Allocation-free log2-bucketed latency histogram (nanoseconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples with `ns < 2^(i+1)` (last is open).
    buckets: [u64; 48],
    count: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram { buckets: [0; 48], count: 0, max_ns: 0 }
    }

    fn bucket(ns: u64) -> usize {
        (63 - (ns | 1).leading_zeros() as usize).min(47)
    }

    /// Records one sample, in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket(ns)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate `q`-quantile in nanoseconds (upper bound of the
    /// bucket holding the rank-`q` sample; exact max for the last
    /// occupied bucket). Zero when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        let last = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return if i == last { self.max_ns } else { (1u64 << (i + 1)) - 1 };
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One queued line with its ingest timestamp (for line-to-score
/// latency).
struct Line {
    text: String,
    ingest: Instant,
}

/// Counters shared between a feed's producer side and the scorer.
struct FeedShared {
    lines_in: AtomicU64,
    dropped_overflow: AtomicU64,
}

/// Producer-side handle for one feed: the only way lines enter the
/// runtime. Safe to move to a dedicated ingest thread.
pub struct FeedPort {
    tx: Producer<Line>,
    shared: Arc<FeedShared>,
}

impl FeedPort {
    /// Offers one raw line. Returns `false` when the ring was full and
    /// the line was dropped (counted as an overflow drop); never blocks.
    pub fn offer(&mut self, text: &str) -> bool {
        self.shared.lines_in.fetch_add(1, Ordering::Relaxed);
        match self.tx.push(Line { text: text.to_string(), ingest: Instant::now() }) {
            Ok(()) => true,
            Err(_) => {
                self.shared.dropped_overflow.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Lines currently queued on this feed's ring.
    pub fn occupancy(&self) -> usize {
        self.tx.occupancy()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.tx.capacity()
    }
}

/// Scorer-side per-feed counters (owned by the sweep loop).
#[derive(Debug, Clone, Copy, Default)]
struct FeedCounters {
    delivered: u64,
    dropped_shed: u64,
    dropped_overflow: u64,
    peak_occupancy: usize,
    /// Consecutive drop-free sweeps (ends the overload episode).
    calm_sweeps: u32,
}

/// Per-feed slice of a [`ServeStats`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedServeStats {
    /// Lines offered to the feed's ring (including dropped ones).
    pub lines_in: u64,
    /// Lines handed to the fleet monitor for admission and scoring.
    pub delivered: u64,
    /// Lines rejected at ingress because the ring was full.
    pub dropped_overflow: u64,
    /// Queued lines discarded oldest-first by the shed policy.
    pub dropped_shed: u64,
    /// Highest ring occupancy ever observed at a sweep.
    pub peak_occupancy: usize,
}

impl FeedServeStats {
    /// Total overload drops (overflow + shed).
    pub fn dropped(&self) -> u64 {
        self.dropped_overflow + self.dropped_shed
    }
}

/// Snapshot of the runtime's counters.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Sweeps executed.
    pub ticks: u64,
    /// Current operating state.
    pub state: ServeState,
    /// Times the runtime entered degraded mode.
    pub degraded_episodes: u64,
    /// Watchdog heartbeat-deadline misses acted on.
    pub watchdog_trips: u64,
    /// Anomaly warnings surfaced.
    pub warnings: u64,
    /// Per-feed counters, in feed order.
    pub feeds: Vec<FeedServeStats>,
    /// Line-to-score latency (recorded when a line's batch finishes
    /// scoring).
    pub latency: LatencyHistogram,
}

impl ServeStats {
    /// Total lines offered across feeds.
    pub fn lines_in(&self) -> u64 {
        self.feeds.iter().map(|f| f.lines_in).sum()
    }

    /// Total lines delivered to the fleet monitor.
    pub fn delivered(&self) -> u64 {
        self.feeds.iter().map(|f| f.delivered).sum()
    }

    /// Total overload drops.
    pub fn dropped(&self) -> u64 {
        self.feeds.iter().map(|f| f.dropped()).sum()
    }
}

/// The serving runtime: bounded ingest rings in front of a supervised
/// [`FleetMonitor`], plus the overload policy state machine.
pub struct ServeCore<O: FeedObserver = OnlineMonitor> {
    cfg: ServeConfig,
    fleet: FleetMonitor<O>,
    /// `None` once the port has been taken by a producer thread.
    ports: Vec<Option<FeedPort>>,
    consumers: Vec<Consumer<Line>>,
    shared: Vec<Arc<FeedShared>>,
    counters: Vec<FeedCounters>,
    state: ServeState,
    tick: u64,
    calm_ticks: u32,
    degraded_episodes: u64,
    watchdog_trips: u64,
    warnings: u64,
    latency: LatencyHistogram,
    recent_events: VecDeque<ServeEvent>,
    /// Bumped at every sweep; sampled by the watchdog.
    heartbeat: Arc<AtomicU64>,
    /// Set by the watchdog to force degraded mode at the next sweep.
    force_degrade: Arc<AtomicBool>,
    /// Reused batch buffer (no steady-state growth).
    scratch: Vec<Line>,
}

impl<O: FeedObserver> ServeCore<O> {
    /// Builds a runtime over a supervised fleet; one ring per feed.
    pub fn new(fleet: FleetMonitor<O>, cfg: ServeConfig) -> ServeCore<O> {
        let n = fleet.feed_count();
        let mut ports = Vec::with_capacity(n);
        let mut consumers = Vec::with_capacity(n);
        let mut shared = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = spsc::ring::<Line>(cfg.capacity);
            let sh = Arc::new(FeedShared {
                lines_in: AtomicU64::new(0),
                dropped_overflow: AtomicU64::new(0),
            });
            ports.push(Some(FeedPort { tx, shared: Arc::clone(&sh) }));
            consumers.push(rx);
            shared.push(sh);
        }
        ServeCore {
            cfg,
            fleet,
            ports,
            consumers,
            shared,
            counters: vec![FeedCounters::default(); n],
            state: ServeState::Healthy,
            tick: 0,
            calm_ticks: 0,
            degraded_episodes: 0,
            watchdog_trips: 0,
            warnings: 0,
            latency: LatencyHistogram::new(),
            recent_events: VecDeque::new(),
            heartbeat: Arc::new(AtomicU64::new(0)),
            force_degrade: Arc::new(AtomicBool::new(false)),
            scratch: Vec::new(),
        }
    }

    /// Current operating state.
    pub fn state(&self) -> ServeState {
        self.state
    }

    /// Total lines currently queued across all rings.
    pub fn backlog(&self) -> usize {
        self.consumers.iter().map(|c| c.occupancy()).sum()
    }

    /// Sweeps executed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The supervised fleet (health reports, etc.).
    pub fn fleet(&self) -> &FleetMonitor<O> {
        &self.fleet
    }

    /// Recent events, oldest first (bounded at `cfg.event_log`).
    pub fn recent_events(&self) -> impl Iterator<Item = &ServeEvent> {
        self.recent_events.iter()
    }

    /// Moves a feed's ingest port out for a producer thread. Taking a
    /// port twice (or an out-of-range feed) is a typed error, not a
    /// panic.
    pub fn take_port(&mut self, feed: usize) -> Result<FeedPort, ServeError> {
        let feeds = self.ports.len();
        let slot = self.ports.get_mut(feed).ok_or(ServeError::NoSuchFeed { feed, feeds })?;
        slot.take().ok_or(ServeError::PortTaken { feed })
    }

    /// Step-mode ingest: offers one line on a port still held by the
    /// core. `Ok(false)` means the ring was full and the line was
    /// dropped (counted); `Err` means the port is gone or the feed
    /// doesn't exist.
    pub fn offer(&mut self, feed: usize, text: &str) -> Result<bool, ServeError> {
        let feeds = self.ports.len();
        let slot = self.ports.get_mut(feed).ok_or(ServeError::NoSuchFeed { feed, feeds })?;
        let port = slot.as_mut().ok_or(ServeError::PortMoved { feed })?;
        Ok(port.offer(text))
    }

    /// Poisons a feed from the outside — the containment path for a
    /// producer thread that panicked during teardown. The feed's
    /// monitor is dropped and its health marked
    /// [`crate::supervisor::FeedState::Poisoned`]; the rest of the
    /// fleet keeps serving. Returns the events raised (empty when the
    /// feed was already poisoned).
    pub fn poison_feed(&mut self, feed: usize, reason: &str) -> Vec<ServeEvent> {
        let mut out = Vec::new();
        if let Some(event) = self.fleet.poison(feed, reason) {
            let tick = self.tick;
            self.push_event(ServeEvent::Fleet { tick, event }, &mut out);
        }
        out
    }

    /// Spawns a watchdog thread enforcing `deadline` between scorer
    /// heartbeats (each sweep is one heartbeat). A missed deadline sets
    /// the force-degrade flag, which the next sweep honours; repeated
    /// misses while the scorer is stalled are counted once per stall.
    pub fn spawn_watchdog(&self, deadline: Duration) -> WatchdogHandle {
        let heartbeat = Arc::clone(&self.heartbeat);
        let force = Arc::clone(&self.force_degrade);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let mut trips = 0u64;
            let mut last = heartbeat.load(Ordering::Acquire);
            while !stop2.load(Ordering::Acquire) {
                std::thread::sleep(deadline);
                let now = heartbeat.load(Ordering::Acquire);
                if now == last && !stop2.load(Ordering::Acquire) {
                    if !force.swap(true, Ordering::AcqRel) {
                        trips += 1;
                    }
                } else {
                    last = now;
                }
            }
            trips
        });
        WatchdogHandle { stop, join: Some(join) }
    }

    fn push_event(&mut self, ev: ServeEvent, out: &mut Vec<ServeEvent>) {
        self.recent_events.push_back(ev.clone());
        while self.recent_events.len() > self.cfg.event_log.max(1) {
            self.recent_events.pop_front();
        }
        out.push(ev);
    }

    fn enter_degraded(&mut self, backlog: usize, out: &mut Vec<ServeEvent>) {
        if self.state == ServeState::Degraded {
            return;
        }
        self.state = ServeState::Degraded;
        self.degraded_episodes += 1;
        self.calm_ticks = 0;
        self.fleet.set_stride(self.cfg.degraded_stride.max(1));
        self.push_event(ServeEvent::Degraded { tick: self.tick, backlog }, out);
    }

    /// Runs one scorer pass: drains overflow counters, sheds, scores up
    /// to the tick budget, and advances the degrade state machine.
    /// Returns the events generated by this sweep.
    pub fn sweep(&mut self) -> Vec<ServeEvent> {
        let mut out = Vec::new();
        // A `delay` policy here stalls the scorer while the heartbeat
        // stays stale — exactly the stall the watchdog exists to catch.
        let _ = nfv_fail::point("serve.heartbeat");
        self.heartbeat.fetch_add(1, Ordering::Release);

        // Watchdog trip? Honour it before anything else.
        if self.force_degrade.swap(false, Ordering::AcqRel) {
            self.watchdog_trips += 1;
            self.push_event(ServeEvent::WatchdogTrip { tick: self.tick }, &mut out);
            let backlog: usize = self.consumers.iter().map(|c| c.occupancy()).sum();
            self.enter_degraded(backlog, &mut out);
        }

        let n = self.consumers.len();
        let total_cap: usize = self.consumers.iter().map(|c| c.capacity()).sum();
        let backlog_before: usize = self.consumers.iter().map(|c| c.occupancy()).sum();
        if self.state == ServeState::Healthy
            && backlog_before >= (self.cfg.degrade_enter * total_cap as f64) as usize
        {
            self.enter_degraded(backlog_before, &mut out);
        }

        let quota = (self.cfg.tick_budget / n.max(1)).max(1);
        let start = (self.tick as usize) % n.max(1);
        let mut fleet_events = Vec::new();
        for k in 0..n {
            let feed = (start + k) % n;
            self.sweep_feed(feed, quota, &mut fleet_events);
        }
        let tick = self.tick;
        for event in fleet_events {
            if matches!(event, FleetEvent::Warning { .. }) {
                self.warnings += 1;
            }
            self.push_event(ServeEvent::Fleet { tick, event }, &mut out);
        }

        // Recovery: backlog must stay below the exit threshold for
        // `recover_ticks` consecutive sweeps.
        if self.state == ServeState::Degraded {
            let backlog_after: usize = self.consumers.iter().map(|c| c.occupancy()).sum();
            if backlog_after <= (self.cfg.degrade_exit * total_cap as f64) as usize {
                self.calm_ticks += 1;
                if self.calm_ticks >= self.cfg.recover_ticks {
                    self.state = ServeState::Healthy;
                    self.fleet.set_stride(1);
                    self.push_event(ServeEvent::Recovered { tick: self.tick }, &mut out);
                }
            } else {
                self.calm_ticks = 0;
            }
        }

        self.tick += 1;
        out
    }

    /// One feed's share of a sweep: overflow accounting, drop-oldest
    /// shedding, then scoring up to `quota` lines as one batch.
    fn sweep_feed(&mut self, feed: usize, quota: usize, fleet_events: &mut Vec<FleetEvent>) {
        let rx = &mut self.consumers[feed];
        let c = &mut self.counters[feed];
        let cap = rx.capacity();

        let overflowed = self.shared[feed].dropped_overflow.swap(0, Ordering::Relaxed);
        c.dropped_overflow += overflowed;

        // Drop-oldest shed: keep the ring's contents fresh when the
        // backlog crosses the high watermark.
        let mut shed = 0u64;
        let occ = rx.occupancy();
        c.peak_occupancy = c.peak_occupancy.max(occ);
        if occ >= ((self.cfg.shed_high * cap as f64) as usize).max(1) {
            let keep = (self.cfg.shed_low * cap as f64) as usize;
            while rx.occupancy() > keep {
                if rx.pop().is_none() {
                    break;
                }
                shed += 1;
            }
        }
        c.dropped_shed += shed;

        let drops = overflowed + shed;
        if drops > 0 {
            c.calm_sweeps = 0;
            if let Some(ev) = self.fleet.record_overload_drops(feed, drops) {
                fleet_events.push(ev);
            }
        } else {
            c.calm_sweeps += 1;
            if c.calm_sweeps == self.cfg.recover_ticks.max(1) {
                self.fleet.end_overload_episode(feed);
            }
        }

        // Score up to the quota as one batch.
        self.scratch.clear();
        while self.scratch.len() < quota {
            match rx.pop() {
                Some(line) => self.scratch.push(line),
                None => break,
            }
        }
        if self.scratch.is_empty() {
            return;
        }
        c.delivered += self.scratch.len() as u64;
        self.fleet.ingest_batch(feed, self.scratch.iter().map(|l| l.text.as_str()), fleet_events);
        let now = Instant::now();
        for line in &self.scratch {
            self.latency.record(now.saturating_duration_since(line.ingest));
        }
    }

    /// Drains every ring to empty (producers must have stopped), picks
    /// up trailing overflow counters, and flushes the fleet's reorder
    /// buffers. After this, `lines_in == delivered + dropped` exactly.
    pub fn finish(&mut self) -> Vec<ServeEvent> {
        let mut out = Vec::new();
        loop {
            out.extend(self.sweep());
            let backlog: usize = self.consumers.iter().map(|c| c.occupancy()).sum();
            let overflow_pending: u64 =
                self.shared.iter().map(|s| s.dropped_overflow.load(Ordering::Relaxed)).sum();
            if backlog == 0 && overflow_pending == 0 {
                break;
            }
        }
        let tick = self.tick;
        for event in self.fleet.flush() {
            if matches!(event, FleetEvent::Warning { .. }) {
                self.warnings += 1;
            }
            self.push_event(ServeEvent::Fleet { tick, event }, &mut out);
        }
        out
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> ServeStats {
        let feeds = self
            .counters
            .iter()
            .zip(self.shared.iter())
            .map(|(c, s)| FeedServeStats {
                lines_in: s.lines_in.load(Ordering::Relaxed),
                delivered: c.delivered,
                // Overflow seen by the scorer plus any not yet swept.
                dropped_overflow: c.dropped_overflow + s.dropped_overflow.load(Ordering::Relaxed),
                dropped_shed: c.dropped_shed,
                peak_occupancy: c.peak_occupancy,
            })
            .collect();
        ServeStats {
            ticks: self.tick,
            state: self.state,
            degraded_episodes: self.degraded_episodes,
            watchdog_trips: self.watchdog_trips,
            warnings: self.warnings,
            feeds,
            latency: self.latency.clone(),
        }
    }
}

/// Envelope format tag of a serve snapshot file.
pub const SERVE_SNAPSHOT_FORMAT: &str = "nfv-serve-snapshot";

/// Layout version of the snapshot payload.
pub const SERVE_SNAPSHOT_LAYOUT: u64 = 1;

impl ServeCore<OnlineMonitor> {
    /// Captures a checksummed warm-restart snapshot of the whole
    /// runtime: per-feed counters and queued-but-unscored lines, the
    /// degrade state machine, the latency histogram, the fleet's
    /// per-feed runtime ledgers, and every live monitor's streaming
    /// state. Restoring it into a freshly built core (same spec, same
    /// bundle) and continuing in step mode is bit-identical to never
    /// having stopped — apart from wall-clock latency samples and the
    /// bounded recent-event log, which restarts empty.
    ///
    /// Step mode only: every feed's port must still be held by the
    /// core (rings are drained and requeued in place to read them).
    pub fn snapshot_value(&mut self, load_tick: u64) -> Result<Value, CheckpointError> {
        let n = self.consumers.len();
        for feed in 0..n {
            if self.ports[feed].is_none() {
                return Err(CheckpointError::Invalid(format!(
                    "serve snapshot requires step mode: feed {} port was moved to a producer \
                     thread",
                    feed
                )));
            }
        }
        let mut feeds = Vec::with_capacity(n);
        for feed in 0..n {
            // Drain the ring to read the queued texts, then requeue the
            // very same lines through the producer handle: counters are
            // untouched and FIFO order is preserved, so the sweep that
            // follows sees exactly the pre-snapshot ring.
            let mut lines = Vec::new();
            while let Some(l) = self.consumers[feed].pop() {
                lines.push(l);
            }
            let mut queued = Vec::with_capacity(lines.len());
            let port = self.ports[feed].as_mut().expect("checked above");
            for l in lines {
                queued.push(l.text.clone());
                let _ = port.tx.push(l);
            }
            let c = &self.counters[feed];
            let s = &self.shared[feed];
            let monitor = self.fleet.observer(feed).map(|m| m.state_value()).unwrap_or(Value::Null);
            feeds.push(json!({
                "delivered": c.delivered,
                "dropped_shed": c.dropped_shed,
                "dropped_overflow": c.dropped_overflow,
                "peak_occupancy": c.peak_occupancy,
                "calm_sweeps": c.calm_sweeps,
                "lines_in": s.lines_in.load(Ordering::Relaxed),
                "overflow_pending": s.dropped_overflow.load(Ordering::Relaxed),
                "queued": queued,
                "monitor": monitor,
            }));
        }
        Ok(json!({
            "layout": SERVE_SNAPSHOT_LAYOUT,
            "load_tick": load_tick,
            "tick": self.tick,
            "state": match self.state {
                ServeState::Healthy => "healthy",
                ServeState::Degraded => "degraded",
            },
            "calm_ticks": self.calm_ticks,
            "degraded_episodes": self.degraded_episodes,
            "watchdog_trips": self.watchdog_trips,
            "warnings": self.warnings,
            "latency": {
                "buckets": self.latency.buckets.to_vec(),
                "count": self.latency.count,
                "max_ns": self.latency.max_ns,
            },
            "fleet": self.fleet.runtime_state_value(),
            "feeds": feeds,
        }))
    }

    /// Writes a snapshot atomically and durably (temp + fsync + rename;
    /// failpoint tag `serve.snapshot`).
    pub fn save_snapshot(&mut self, path: &Path, load_tick: u64) -> Result<(), CheckpointError> {
        let text = seal_envelope(SERVE_SNAPSHOT_FORMAT, self.snapshot_value(load_tick)?);
        atomic_write_tagged(path, &text, "serve.snapshot").map_err(CheckpointError::Io)
    }

    /// Restores a [`ServeCore::snapshot_value`] payload into a freshly
    /// built core over the same bundle and spec, returning the
    /// load-generator tick to resume from.
    pub fn restore_snapshot(&mut self, payload: &Value) -> Result<u64, CheckpointError> {
        let layout = u64_field(payload, "layout")?;
        if layout != SERVE_SNAPSHOT_LAYOUT {
            return Err(CheckpointError::Invalid(format!(
                "serve snapshot layout {} unsupported (expected {})",
                layout, SERVE_SNAPSHOT_LAYOUT
            )));
        }
        let feeds = crate::state::array_field(payload, "feeds")?;
        if feeds.len() != self.consumers.len() {
            return Err(CheckpointError::Invalid(format!(
                "snapshot has {} feeds, runtime has {}",
                feeds.len(),
                self.consumers.len()
            )));
        }
        self.fleet.load_runtime_state(require(payload, "fleet")?)?;
        for (feed, f) in feeds.iter().enumerate() {
            let c = &mut self.counters[feed];
            c.delivered = u64_field(f, "delivered")?;
            c.dropped_shed = u64_field(f, "dropped_shed")?;
            c.dropped_overflow = u64_field(f, "dropped_overflow")?;
            c.peak_occupancy = usize_field(f, "peak_occupancy")?;
            c.calm_sweeps = u32_field(f, "calm_sweeps")?;
            self.shared[feed].lines_in.store(u64_field(f, "lines_in")?, Ordering::Relaxed);
            self.shared[feed]
                .dropped_overflow
                .store(u64_field(f, "overflow_pending")?, Ordering::Relaxed);
            let port = self.ports[feed].as_mut().ok_or_else(|| {
                CheckpointError::Invalid("snapshot restore requires step mode".into())
            })?;
            for q in crate::state::array_field(f, "queued")? {
                let text =
                    q.as_str().ok_or_else(|| CheckpointError::MissingField("queued".into()))?;
                port.tx.push(Line { text: text.to_string(), ingest: Instant::now() }).map_err(
                    |_| CheckpointError::Invalid("snapshot backlog exceeds ring capacity".into()),
                )?;
            }
            let mv = require(f, "monitor")?;
            if let (Some(m), false) = (self.fleet.observer_mut(feed), mv.is_null()) {
                m.load_state(mv)?;
            }
        }
        self.state = match str_field(payload, "state")? {
            "healthy" => ServeState::Healthy,
            "degraded" => ServeState::Degraded,
            other => {
                return Err(CheckpointError::Invalid(format!("unknown serve state {:?}", other)))
            }
        };
        self.tick = u64_field(payload, "tick")?;
        self.calm_ticks = u32_field(payload, "calm_ticks")?;
        self.degraded_episodes = u64_field(payload, "degraded_episodes")?;
        self.watchdog_trips = u64_field(payload, "watchdog_trips")?;
        self.warnings = u64_field(payload, "warnings")?;
        let lv = require(payload, "latency")?;
        let buckets = u64s_from_value(require(lv, "buckets")?, "latency.buckets")?;
        if buckets.len() != self.latency.buckets.len() {
            return Err(CheckpointError::Invalid("latency histogram shape mismatch".into()));
        }
        self.latency.buckets.copy_from_slice(&buckets);
        self.latency.count = u64_field(lv, "count")?;
        self.latency.max_ns = u64_field(lv, "max_ns")?;
        u64_field(payload, "load_tick")
    }

    /// Reads, verifies (checksum + format tag), and restores a snapshot
    /// file. Failpoint: `serve.snapshot.load`.
    pub fn load_snapshot(&mut self, path: &Path) -> Result<u64, CheckpointError> {
        nfv_fail::io_check("serve.snapshot.load").map_err(CheckpointError::Io)?;
        let text = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
        let payload = open_envelope(SERVE_SNAPSHOT_FORMAT, &text)?;
        self.restore_snapshot(&payload)
    }
}

/// Handle to a running watchdog thread; stop it to collect the trip
/// count.
pub struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<u64>>,
}

impl WatchdogHandle {
    /// Stops the watchdog and returns how many stalls it flagged.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        self.join.take().map(|j| j.join().unwrap_or(0)).unwrap_or(0)
    }
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::Warning;
    use crate::supervisor::FleetMonitorConfig;
    use nfv_syslog::message::Severity;
    use nfv_syslog::SyslogMessage;

    /// Observer recording stride changes and message counts.
    struct Probe {
        seen: u64,
        strides_set: Vec<usize>,
    }

    impl Probe {
        fn new() -> Probe {
            Probe { seen: 0, strides_set: Vec::new() }
        }
    }

    impl FeedObserver for Probe {
        fn observe(&mut self, message: &SyslogMessage) -> Option<Warning> {
            self.seen += 1;
            if message.text.contains("alarm") {
                return Some(Warning {
                    start: message.timestamp,
                    anomalies: 1,
                    peak_score: 9.0,
                    peak_text: message.text.clone(),
                });
            }
            None
        }

        fn set_stride(&mut self, stride: usize) {
            self.strides_set.push(stride);
        }
    }

    fn core(feeds: usize, cfg: ServeConfig) -> ServeCore<Probe> {
        let fleet = FleetMonitor::new(
            (0..feeds).map(|_| Probe::new()).collect(),
            FleetMonitorConfig { reorder_window: 0, ..Default::default() },
        );
        ServeCore::new(fleet, cfg)
    }

    fn line(t: u64, text: &str) -> String {
        SyslogMessage {
            timestamp: t,
            host: "vpe00".into(),
            process: "rpd".into(),
            severity: Severity::Info,
            text: text.into(),
        }
        .to_line()
    }

    #[test]
    fn accounting_is_exact_under_overflow_and_shed() {
        let cfg =
            ServeConfig { capacity: 16, tick_budget: 4, degraded_stride: 2, ..Default::default() };
        let mut core = core(1, cfg);
        let mut t = 100u64;
        // Firehose: 40 lines per sweep against a budget of 4 and a
        // 16-slot ring — overflow and shedding both engage.
        for round in 0..30 {
            for i in 0..40 {
                core.offer(0, &line(t, &format!("event r{} i{}", round, i))).unwrap();
                t += 1;
            }
            core.sweep();
        }
        core.finish();
        let stats = core.stats();
        let f = &stats.feeds[0];
        assert_eq!(f.lines_in, 1200);
        assert_eq!(
            f.lines_in,
            f.delivered + f.dropped_overflow + f.dropped_shed,
            "every offered line must be delivered or counted dropped"
        );
        assert!(f.dropped_overflow > 0, "overflow path must engage");
        assert!(f.peak_occupancy <= 16, "ring must stay bounded");
        // The fleet's ledger matches the runtime's drop counters.
        assert_eq!(core.fleet().health(0).overload_dropped, f.dropped());
        assert_eq!(core.fleet().health(0).messages, f.delivered);
        assert_eq!(stats.latency.count(), f.delivered);
    }

    #[test]
    fn degrades_on_backlog_and_recovers_after_calm_ticks() {
        let cfg = ServeConfig {
            capacity: 64,
            tick_budget: 16,
            degrade_enter: 0.5,
            degrade_exit: 0.1,
            recover_ticks: 2,
            degraded_stride: 8,
            ..Default::default()
        };
        let mut core = core(1, cfg);
        for i in 0..40 {
            core.offer(0, &line(100 + i, &format!("burst {}", i))).unwrap();
        }
        let events = core.sweep();
        assert_eq!(core.state(), ServeState::Degraded);
        assert!(matches!(events[0], ServeEvent::Degraded { tick: 0, backlog: 40 }));
        // Drain the backlog; calm sweeps accumulate until recovery.
        let mut recovered_at = None;
        for _ in 0..10 {
            for ev in core.sweep() {
                if let ServeEvent::Recovered { tick } = ev {
                    recovered_at = Some(tick);
                }
            }
        }
        assert_eq!(core.state(), ServeState::Healthy);
        assert!(recovered_at.is_some(), "must emit Recovered");
        // Degradation widened the observer stride, recovery reset it.
        let probe = core.fleet().observer(0).unwrap();
        assert_eq!(probe.strides_set, vec![8, 1]);
        assert_eq!(probe.seen, 40);
        let stats = core.stats();
        assert_eq!(stats.degraded_episodes, 1);
        assert_eq!(stats.feeds[0].lines_in, 40);
        assert_eq!(stats.feeds[0].delivered, 40);
        assert_eq!(stats.feeds[0].dropped_overflow + stats.feeds[0].dropped_shed, 0);
    }

    #[test]
    fn deterministic_replay_produces_identical_stats() {
        let run = || {
            let cfg = ServeConfig { capacity: 32, tick_budget: 8, ..Default::default() };
            let mut core = core(2, cfg);
            let mut t = 50u64;
            for round in 0..20 {
                let burst = if round % 5 == 0 { 30 } else { 6 };
                for i in 0..burst {
                    for feed in 0..2 {
                        core.offer(feed, &line(t, &format!("r{} i{} f{}", round, i, feed)))
                            .unwrap();
                    }
                    t += 1;
                }
                core.sweep();
            }
            core.finish();
            let s = core.stats();
            (
                s.ticks,
                s.degraded_episodes,
                s.feeds.iter().map(|f| (f.lines_in, f.delivered, f.dropped())).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run(), "same inputs must give identical accounting");
    }

    #[test]
    fn watchdog_flag_forces_degraded_and_is_counted() {
        let cfg = ServeConfig { capacity: 16, tick_budget: 8, ..Default::default() };
        let mut core = core(1, cfg);
        // Simulate the watchdog tripping between sweeps.
        core.force_degrade.store(true, Ordering::Release);
        let events = core.sweep();
        assert!(matches!(events[0], ServeEvent::WatchdogTrip { tick: 0 }));
        assert_eq!(core.state(), ServeState::Degraded);
        assert_eq!(core.stats().watchdog_trips, 1);
    }

    #[test]
    fn watchdog_thread_trips_on_stalled_scorer() {
        let cfg = ServeConfig { capacity: 16, tick_budget: 8, ..Default::default() };
        let core = core(1, cfg);
        let dog = core.spawn_watchdog(Duration::from_millis(5));
        // No sweeps happen; the heartbeat never advances.
        std::thread::sleep(Duration::from_millis(60));
        assert!(core.force_degrade.load(Ordering::Acquire), "stall must set the flag");
        let _ = dog.stop();
    }

    #[test]
    fn ports_feed_from_another_thread() {
        let cfg = ServeConfig { capacity: 1024, tick_budget: 256, ..Default::default() };
        let mut core = core(1, cfg);
        let mut port = core.take_port(0).unwrap();
        let producer = std::thread::spawn(move || {
            for i in 0..500u64 {
                port.offer(&line(100 + i, &format!("threaded {}", i)));
            }
        });
        if producer.join().is_err() {
            core.poison_feed(0, "producer thread panicked");
        }
        core.finish();
        let stats = core.stats();
        assert_eq!(stats.feeds[0].lines_in, 500);
        assert_eq!(stats.feeds[0].delivered + stats.feeds[0].dropped(), 500);
    }

    #[test]
    fn port_misuse_is_a_typed_error_not_a_panic() {
        let cfg = ServeConfig::default();
        let mut core = core(2, cfg);
        let _port = core.take_port(0).unwrap();
        assert_eq!(core.take_port(0).err(), Some(ServeError::PortTaken { feed: 0 }));
        assert_eq!(
            core.offer(0, &line(1, "nope")),
            Err(ServeError::PortMoved { feed: 0 }),
            "step-mode offer after take_port must fail typed"
        );
        assert_eq!(core.take_port(9).err(), Some(ServeError::NoSuchFeed { feed: 9, feeds: 2 }));
        assert_eq!(core.offer(9, "x"), Err(ServeError::NoSuchFeed { feed: 9, feeds: 2 }));
        // Feed 1 is unaffected.
        assert!(core.offer(1, &line(1, "fine")).unwrap());
        let msg = ServeError::PortTaken { feed: 0 }.to_string();
        assert!(msg.contains("feed 0"), "errors must name the feed: {}", msg);
    }

    /// A panicking producer thread must not take down serving: the
    /// teardown path poisons the feed instead of propagating.
    #[test]
    fn producer_panic_poisons_only_its_feed() {
        let cfg = ServeConfig { capacity: 64, tick_budget: 32, ..Default::default() };
        let mut core = core(2, cfg);
        let mut port = core.take_port(0).unwrap();
        let producer = std::thread::spawn(move || {
            port.offer(&line(100, "one line"));
            panic!("simulated producer crash");
        });
        if producer.join().is_err() {
            let events = core.poison_feed(0, "producer thread panicked");
            assert!(events.iter().any(|e| matches!(
                e,
                ServeEvent::Fleet { event: FleetEvent::FeedPoisoned { feed: 0, .. }, .. }
            )));
        }
        // Feed 1 keeps serving; finish() drains without panicking.
        core.offer(1, &line(100, "alive")).unwrap();
        core.finish();
        use crate::supervisor::FeedState;
        assert_eq!(core.fleet().health(0).state, FeedState::Poisoned);
        assert_eq!(core.fleet().health(1).state, FeedState::Active);
        // Poisoning twice is quiet.
        assert!(core.poison_feed(0, "again").is_empty());
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        for ns in [100u64, 200, 400, 800, 1600, 3200, 1_000_000] {
            h.record_ns(ns);
        }
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p99);
        assert_eq!(p99, 1_000_000, "top bucket reports the exact max");
        assert_eq!(h.count(), 7);
        let mut other = LatencyHistogram::new();
        other.record_ns(5);
        other.merge(&h);
        assert_eq!(other.count(), 8);
    }
}
