//! HMM anomaly detector — the related-work extension baseline (HMM
//! failure prediction a la Liang et al. / Salfner & Malek, cited in §2
//! of the paper).
//!
//! A discrete HMM is trained on normal template windows; an incoming
//! log is scored by the negative log of its one-step predictive
//! probability under the model, mirroring the LSTM detector's scoring
//! so the two are directly comparable.

use crate::detector::{AnomalyDetector, ScoredEvent};
use crate::state;
use nfv_ml::hmm::{Hmm, HmmConfig};
use nfv_nn::checkpoint::CheckpointError;
use nfv_syslog::LogStream;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::{json, Value};

/// Hyper-parameters of [`HmmDetector`].
#[derive(Debug, Clone)]
pub struct HmmDetectorConfig {
    /// Dense vocabulary width.
    pub vocab: usize,
    /// Window length k (the HMM scores k+1-length sequences).
    pub window: usize,
    /// Hidden state count.
    pub states: usize,
    /// Baum-Welch iterations per (re)fit.
    pub iters: usize,
    /// Cap on training windows.
    pub max_train_windows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HmmDetectorConfig {
    fn default() -> Self {
        HmmDetectorConfig {
            vocab: 64,
            window: 10,
            states: 10,
            iters: 15,
            max_train_windows: 20_000,
            seed: 23,
        }
    }
}

/// Discrete-HMM anomaly detector.
pub struct HmmDetector {
    cfg: HmmDetectorConfig,
    model: Option<Hmm>,
    rng: SmallRng,
}

impl HmmDetector {
    /// Builds an untrained detector.
    pub fn new(cfg: HmmDetectorConfig) -> HmmDetector {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        HmmDetector { cfg, model: None, rng }
    }

    fn training_sequences(&mut self, streams: &[&LogStream]) -> Vec<Vec<usize>> {
        let mut seqs = Vec::new();
        for s in streams {
            let ws = s.windows(self.cfg.window);
            for (ids, &target) in ws.ids.iter().zip(ws.targets.iter()) {
                let mut seq = ids.clone();
                seq.push(target);
                seqs.push(seq);
            }
        }
        if seqs.len() > self.cfg.max_train_windows {
            seqs = nfv_ml::sampling::reservoir_sample(
                seqs.into_iter(),
                self.cfg.max_train_windows,
                &mut self.rng,
            );
        }
        seqs
    }
}

impl AnomalyDetector for HmmDetector {
    fn name(&self) -> &'static str {
        "hmm"
    }

    fn fit(&mut self, streams: &[&LogStream]) {
        let seqs = self.training_sequences(streams);
        if seqs.is_empty() {
            return;
        }
        let cfg = HmmConfig { states: self.cfg.states, iters: self.cfg.iters };
        self.model = Some(Hmm::fit(&seqs, self.cfg.vocab, &cfg, &mut self.rng));
    }

    fn update(&mut self, streams: &[&LogStream]) {
        // Baum-Welch refits are cheap at this scale; retrain on the
        // fresh data (shallow-model treatment, like the OC-SVM).
        self.fit(streams);
    }

    fn score(&self, stream: &LogStream, start: u64, end: u64) -> Vec<ScoredEvent> {
        let Some(model) = &self.model else { return Vec::new() };
        let ws = stream.windows_in(self.cfg.window, start, end, |_| true);
        ws.ids
            .iter()
            .zip(ws.targets.iter())
            .zip(ws.times.iter())
            .map(|((ids, &target), &time)| {
                let mut seq = ids.clone();
                seq.push(target);
                ScoredEvent { time, score: model.last_symbol_nll(&seq) as f32 }
            })
            .collect()
    }

    fn to_state(&self) -> Value {
        json!({
            "detector": self.name(),
            "hmm": self.model.as_ref().map(|m| json!({
                "pi": Value::from(m.pi()),
                "a": state::f64_rows_value(m.transition()),
                "b": state::f64_rows_value(m.emission()),
            })),
            "rng": state::rng_value(&self.rng),
        })
    }

    fn load_state(&mut self, st: &Value) -> Result<(), CheckpointError> {
        state::check_tag(st, self.name())?;
        let hmm = state::require(st, "hmm")?;
        let model = if hmm.is_null() {
            None
        } else {
            let pi = state::f64s_from_value(state::require(hmm, "pi")?, "hmm")?;
            let a = state::f64_rows_from_value(state::require(hmm, "a")?, "hmm")?;
            let b = state::f64_rows_from_value(state::require(hmm, "b")?, "hmm")?;
            let s_n = pi.len();
            let square = a.len() == s_n && a.iter().all(|row| row.len() == s_n);
            let emission = b.len() == s_n
                && !b.is_empty()
                && b.iter().all(|row| !row.is_empty() && row.len() == b[0].len());
            if s_n == 0 || !square || !emission {
                return Err(CheckpointError::Invalid("hmm state: inconsistent shapes".into()));
            }
            Some(Hmm::from_parts(pi, a, b))
        };
        self.rng = state::rng_from_value(state::require(st, "rng")?)?;
        self.model = model;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_syslog::LogRecord;
    use rand::Rng;

    fn cyclic_stream(len: usize, seed: u64) -> LogStream {
        let mut rng = SmallRng::seed_from_u64(seed);
        LogStream::from_records(
            (0..len)
                .map(|i| LogRecord {
                    time: i as u64 * 30,
                    template: if rng.gen::<f32>() < 0.1 {
                        rng.gen_range(1..5)
                    } else {
                        1 + (i % 4)
                    },
                })
                .collect(),
        )
    }

    #[test]
    fn flags_unseen_template_bursts() {
        let train = cyclic_stream(1500, 1);
        let mut det = HmmDetector::new(HmmDetectorConfig {
            vocab: 8,
            window: 5,
            states: 6,
            iters: 15,
            ..Default::default()
        });
        det.fit(&[&train]);

        let mut records = cyclic_stream(300, 2).records().to_vec();
        let t0 = records.last().unwrap().time;
        for j in 0..5 {
            records.push(LogRecord { time: t0 + 10 + j, template: 7 });
        }
        let test = LogStream::from_records(records);
        let events = det.score(&test, 0, u64::MAX);
        let burst_min =
            events.iter().filter(|e| e.time > t0).map(|e| e.score).fold(f32::MAX, f32::min);
        let normal: Vec<f32> = events.iter().filter(|e| e.time <= t0).map(|e| e.score).collect();
        let normal_mean = normal.iter().sum::<f32>() / normal.len() as f32;
        assert!(
            burst_min > normal_mean + 1.0,
            "burst min {} vs normal mean {}",
            burst_min,
            normal_mean
        );
    }

    #[test]
    fn unfitted_detector_returns_no_events() {
        let det = HmmDetector::new(HmmDetectorConfig::default());
        let s = cyclic_stream(50, 3);
        assert!(det.score(&s, 0, u64::MAX).is_empty());
    }

    #[test]
    fn update_refits_without_panicking() {
        let mut det = HmmDetector::new(HmmDetectorConfig {
            vocab: 8,
            window: 4,
            states: 4,
            iters: 5,
            ..Default::default()
        });
        det.fit(&[&cyclic_stream(400, 4)]);
        det.update(&[&cyclic_stream(400, 5)]);
        assert!(!det.score(&cyclic_stream(100, 6), 0, u64::MAX).is_empty());
    }
}
