//! Pipeline-level regression for empty trigger calibration: a detector
//! configuration that can never produce a score (an HMM whose window is
//! longer than any stream) must not silently disable adaptation — the
//! run completes and surfaces one `EmptyCalibration` event per group.

use nfv_detect::pipeline::{run_pipeline, DetectorKind, PipelineConfig, PipelineEvent};
use nfv_simnet::{FleetTrace, SimConfig, SimPreset};

#[test]
fn scoreless_group_surfaces_empty_calibration_events() {
    let mut sim = SimConfig::preset(SimPreset::Fast, 3);
    sim.n_vpes = 3;
    sim.months = 3;
    let trace = FleetTrace::simulate(sim);

    let mut cfg = PipelineConfig { detector: DetectorKind::Hmm, ..PipelineConfig::default() };
    // No stream is ever this long, so fitting finds no training windows
    // (the model stays unfit) and scoring returns nothing.
    cfg.hmm.window = 10_000_000;

    let run = run_pipeline(&trace, &cfg).unwrap();

    // Every group calibrated on an empty score set at month 0.
    let k = run.grouping.k;
    assert!(k >= 1);
    for g in 0..k {
        assert!(
            run.events.contains(&PipelineEvent::EmptyCalibration { month: 0, group: g }),
            "group {} missing its EmptyCalibration event; events: {:?}",
            g,
            run.events
        );
    }
    // The run still completed all months (with no scored events) and
    // the disabled trigger meant no adaptation could fire.
    assert_eq!(run.months.len(), 2);
    assert!(run.months.iter().all(|m| m.per_vpe.iter().all(|v| v.is_empty())));
    assert!(run.adaptations.is_empty());
}
