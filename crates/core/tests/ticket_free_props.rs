//! Boundary-semantics lock for `ticket_free`, the §4.2 training-data
//! hygiene filter: records inside `[report - exclusion, repair]` of any
//! ticket are dropped, with both boundaries inclusive, and overlapping
//! tickets behave as a plain interval union (no double-drop, no leak).

use nfv_detect::pipeline::ticket_free;
use nfv_simnet::{Ticket, TicketCause};
use nfv_syslog::{LogRecord, LogStream};
use proptest::prelude::*;

fn ticket(id: usize, report: u64, repair: u64) -> Ticket {
    Ticket {
        id,
        vpe: 0,
        cause: TicketCause::Hardware,
        report_time: report,
        repair_time: repair,
        core_incident: false,
    }
}

fn stream_of(times: &[u64]) -> LogStream {
    LogStream::from_records(times.iter().map(|&time| LogRecord { time, template: 1 }).collect())
}

fn kept_times(out: &LogStream) -> Vec<u64> {
    out.records().iter().map(|r| r.time).collect()
}

#[test]
fn exclusion_window_boundaries_are_inclusive() {
    // Ticket reported at t=1000, repaired at t=1500, exclusion 200:
    // the window is exactly [800, 1500].
    let t = ticket(0, 1000, 1500);
    let stream = stream_of(&[799, 800, 801, 1499, 1500, 1501]);
    let out = ticket_free(&stream, &[&t], 200, 0, u64::MAX);
    assert_eq!(kept_times(&out), vec![799, 1501]);
}

#[test]
fn exclusion_saturates_at_time_zero() {
    // report - exclusion would underflow; the window starts at 0.
    let t = ticket(0, 100, 200);
    let stream = stream_of(&[0, 50, 201]);
    let out = ticket_free(&stream, &[&t], 500, 0, u64::MAX);
    assert_eq!(kept_times(&out), vec![201]);
}

#[test]
fn overlapping_tickets_drop_the_union_exactly_once() {
    // Windows [80, 150] and [120, 220] overlap on [120, 150]; records
    // there must be dropped once (not panic, not survive), and records
    // outside the union must all survive.
    let a = ticket(0, 100, 150);
    let b = ticket(1, 140, 220);
    let stream = stream_of(&[79, 80, 130, 150, 151, 220, 221]);
    let out = ticket_free(&stream, &[&a, &b], 20, 0, u64::MAX);
    assert_eq!(kept_times(&out), vec![79, 221]);
}

#[test]
fn time_slice_applies_before_the_ticket_filter() {
    let t = ticket(0, 100, 200);
    let stream = stream_of(&[10, 50, 150, 250, 350]);
    // Slice [50, 350) keeps 50, 250; 150 falls in the ticket window.
    let out = ticket_free(&stream, &[&t], 0, 50, 350);
    assert_eq!(kept_times(&out), vec![50, 250]);
}

fn times_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..100_000, 0..200).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

fn tickets_strategy() -> impl Strategy<Value = Vec<Ticket>> {
    prop::collection::vec((0u64..90_000, 0u64..20_000), 0..6).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(id, (report, dur))| ticket(id, report, report + dur))
            .collect()
    })
}

proptest! {
    /// A record survives iff it is inside `[start, end)` and inside no
    /// ticket's `[report - exclusion, repair]` window — the independent
    /// reference model, evaluated per record.
    #[test]
    fn matches_the_per_record_reference_model(
        times in times_strategy(),
        tickets in tickets_strategy(),
        exclusion in 0u64..5_000,
        start in 0u64..50_000,
        span in 0u64..100_000,
    ) {
        let end = start + span;
        let stream = stream_of(&times);
        let refs: Vec<&Ticket> = tickets.iter().collect();
        let out = ticket_free(&stream, &refs, exclusion, start, end);
        let expected: Vec<u64> = times
            .iter()
            .copied()
            .filter(|&t| t >= start && t < end)
            .filter(|&t| {
                !tickets.iter().any(|tk| {
                    t >= tk.report_time.saturating_sub(exclusion) && t <= tk.repair_time
                })
            })
            .collect();
        prop_assert_eq!(kept_times(&out), expected);
    }

    /// Filtering is idempotent: the output contains no excluded record,
    /// so a second pass changes nothing.
    #[test]
    fn is_idempotent(
        times in times_strategy(),
        tickets in tickets_strategy(),
        exclusion in 0u64..5_000,
    ) {
        let stream = stream_of(&times);
        let refs: Vec<&Ticket> = tickets.iter().collect();
        let once = ticket_free(&stream, &refs, exclusion, 0, u64::MAX);
        let twice = ticket_free(&once, &refs, exclusion, 0, u64::MAX);
        prop_assert_eq!(kept_times(&once), kept_times(&twice));
    }

    /// Splitting one ticket into two overlapping tickets that cover the
    /// same union drops exactly the same records (no double-drop from
    /// the overlap, no leak at the seam).
    #[test]
    fn overlap_union_equals_single_cover(
        times in times_strategy(),
        report in 1_000u64..40_000,
        len in 2u64..10_000,
        seam in 0u64..u64::MAX,
        exclusion in 0u64..2_000,
    ) {
        let repair = report + len;
        let whole = ticket(0, report, repair);
        // A seam strictly inside the window; the second ticket starts
        // at the seam so the two windows overlap at exactly one point.
        let seam = report + 1 + seam % (len - 1);
        let first = ticket(0, report, seam);
        let second = ticket(1, seam, repair);

        let stream = stream_of(&times);
        let whole_out = ticket_free(&stream, &[&whole], exclusion, 0, u64::MAX);
        let split_out = ticket_free(&stream, &[&first, &second], exclusion, 0, u64::MAX);
        prop_assert_eq!(kept_times(&whole_out), kept_times(&split_out));
    }
}
