//! Serialization lock for every detector family: `to_state` →
//! JSON text → `load_state` into a *fresh* detector must restore the
//! exact model (bit-identical scores) *and* the exact RNG position
//! (bit-identical behaviour on the next update). This is the substrate
//! the pipeline checkpoint builds on.

use nfv_detect::baselines::{
    AutoencoderConfig, AutoencoderDetector, OcsvmDetector, OcsvmDetectorConfig, PcaDetector,
    PcaDetectorConfig,
};
use nfv_detect::detector::AnomalyDetector;
use nfv_detect::hmm_detector::{HmmDetector, HmmDetectorConfig};
use nfv_detect::lstm_detector::{LstmDetector, LstmDetectorConfig};
use nfv_syslog::{LogRecord, LogStream};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mixed_stream(len: usize, seed: u64) -> LogStream {
    let mut rng = SmallRng::seed_from_u64(seed);
    LogStream::from_records(
        (0..len)
            .map(|i| LogRecord {
                time: i as u64 * 30,
                template: if rng.gen::<f32>() < 0.15 { rng.gen_range(1..8) } else { 1 + (i % 5) },
            })
            .collect(),
    )
}

fn assert_scores_bit_identical(a: &dyn AnomalyDetector, b: &dyn AnomalyDetector, label: &str) {
    let test = mixed_stream(300, 99);
    let ea = a.score(&test, 0, u64::MAX);
    let eb = b.score(&test, 0, u64::MAX);
    assert_eq!(ea.len(), eb.len(), "{label}: event count");
    for (x, y) in ea.iter().zip(&eb) {
        assert_eq!(x.time, y.time, "{label}: time");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{label}: score bits");
    }
}

/// Fit `a`, restore its state into fresh `b`, then drive both through a
/// further update: scores must stay bit-identical, proving both the
/// parameters and the RNG position survived the text roundtrip.
fn roundtrip_and_update(
    mut a: Box<dyn AnomalyDetector>,
    mut b: Box<dyn AnomalyDetector>,
    label: &str,
) {
    let train = mixed_stream(900, 1);
    a.fit(&[&train]);

    let text = a.to_state().to_string();
    let parsed = serde_json::from_str(&text).unwrap();
    b.load_state(&parsed).unwrap();
    assert_scores_bit_identical(a.as_ref(), b.as_ref(), label);

    let fresh = mixed_stream(700, 2);
    a.update(&[&fresh]);
    b.update(&[&fresh]);
    assert_scores_bit_identical(a.as_ref(), b.as_ref(), &format!("{label} after update"));
}

#[test]
fn lstm_state_roundtrips_bit_identically() {
    let cfg = LstmDetectorConfig {
        vocab: 16,
        window: 4,
        embed_dim: 6,
        hidden: 8,
        epochs: 1,
        update_epochs: 1,
        max_train_windows: 300,
        ..Default::default()
    };
    roundtrip_and_update(
        Box::new(LstmDetector::new(cfg.clone())),
        Box::new(LstmDetector::new(cfg)),
        "lstm",
    );
}

#[test]
fn autoencoder_state_roundtrips_bit_identically() {
    let cfg =
        AutoencoderConfig { vocab: 16, hidden: 8, bottleneck: 3, epochs: 2, ..Default::default() };
    roundtrip_and_update(
        Box::new(AutoencoderDetector::new(cfg.clone())),
        Box::new(AutoencoderDetector::new(cfg)),
        "autoencoder",
    );
}

#[test]
fn ocsvm_state_roundtrips_bit_identically() {
    let cfg = OcsvmDetectorConfig { vocab: 16, ..Default::default() };
    roundtrip_and_update(
        Box::new(OcsvmDetector::new(cfg.clone())),
        Box::new(OcsvmDetector::new(cfg)),
        "ocsvm",
    );
}

#[test]
fn pca_state_roundtrips_bit_identically() {
    let cfg = PcaDetectorConfig { vocab: 16, ..Default::default() };
    roundtrip_and_update(
        Box::new(PcaDetector::new(cfg.clone())),
        Box::new(PcaDetector::new(cfg)),
        "pca",
    );
}

#[test]
fn hmm_state_roundtrips_bit_identically() {
    let cfg = HmmDetectorConfig { vocab: 16, window: 4, states: 4, iters: 5, ..Default::default() };
    roundtrip_and_update(
        Box::new(HmmDetector::new(cfg.clone())),
        Box::new(HmmDetector::new(cfg)),
        "hmm",
    );
}

#[test]
fn unfitted_state_roundtrips() {
    // Detectors with optional models must serialize the "never fitted"
    // state too (a crash can land before any data arrives).
    let cfg = PcaDetectorConfig { vocab: 16, ..Default::default() };
    let a = PcaDetector::new(cfg.clone());
    let mut b = PcaDetector::new(cfg);
    let parsed = serde_json::from_str(&a.to_state().to_string()).unwrap();
    b.load_state(&parsed).unwrap();
    assert!(b.score(&mixed_stream(100, 7), 0, u64::MAX).is_empty());
}

#[test]
fn state_tag_mismatch_is_rejected() {
    let pca = PcaDetector::new(PcaDetectorConfig { vocab: 16, ..Default::default() });
    let mut hmm = HmmDetector::new(HmmDetectorConfig { vocab: 16, ..Default::default() });
    assert!(hmm.load_state(&pca.to_state()).is_err(), "hmm must reject a pca state blob");
}
