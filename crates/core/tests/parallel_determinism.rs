//! End-to-end determinism lock for the data-parallel pipeline: the
//! entire monthly protocol — sharded training, chunked LSTM scoring,
//! per-vPE fan-out, adaptation — must produce bit-identical output for
//! every thread count. Threads are pure scheduling; the trajectory is
//! defined by the shard layout alone.

use nfv_detect::pipeline::{run_pipeline, DetectorKind, PipelineConfig, PipelineRun};
use nfv_simnet::{FleetTrace, SimConfig, SimPreset};

fn small_run(threads: usize) -> PipelineRun {
    let mut sim = SimConfig::preset(SimPreset::Fast, 5);
    sim.n_vpes = 4;
    sim.months = 3;
    let trace = FleetTrace::simulate(sim);

    let mut cfg =
        PipelineConfig { detector: DetectorKind::Lstm, threads, ..PipelineConfig::default() };
    cfg.lstm.epochs = 1;
    cfg.lstm.update_epochs = 1;
    cfg.lstm.max_train_windows = 600;
    run_pipeline(&trace, &cfg).unwrap()
}

/// Exact (bitwise) equality of two runs' scored months.
fn assert_runs_identical(a: &PipelineRun, b: &PipelineRun, label: &str) {
    assert_eq!(a.months.len(), b.months.len(), "{label}: month count");
    for (ma, mb) in a.months.iter().zip(&b.months) {
        assert_eq!(ma.month, mb.month, "{label}: month index");
        assert_eq!(ma.per_vpe.len(), mb.per_vpe.len(), "{label}: vpe count");
        for (vpe, (ea, eb)) in ma.per_vpe.iter().zip(&mb.per_vpe).enumerate() {
            assert_eq!(ea, eb, "{label}: month {} vpe {} events diverged", ma.month, vpe);
        }
    }
    assert_eq!(a.adaptations, b.adaptations, "{label}: adaptations");
    assert_eq!(a.vocab, b.vocab, "{label}: vocab");
}

#[test]
fn pipeline_output_is_bit_identical_for_any_thread_count() {
    let baseline = small_run(1);
    assert!(
        baseline.months.iter().any(|m| m.per_vpe.iter().any(|v| !v.is_empty())),
        "baseline run produced no scored events; the test would be vacuous"
    );
    for threads in [2, 4] {
        let run = small_run(threads);
        assert_runs_identical(&baseline, &run, &format!("threads={threads}"));
    }
}

#[test]
fn auto_thread_count_matches_explicit_serial_run() {
    // threads = 0 resolves to available_parallelism; whatever it picks,
    // the scores must equal the serial run's.
    let auto = small_run(0);
    let serial = small_run(1);
    assert_runs_identical(&serial, &auto, "threads=auto");
}
