//! Property tests for anomaly clustering and ticket mapping — the
//! correctness core of the evaluation.

use nfv_detect::detector::ScoredEvent;
use nfv_detect::mapping::{map_clusters, warning_clusters, MappingConfig};
use nfv_simnet::{Ticket, TicketCause};
use proptest::prelude::*;

fn events_strategy() -> impl Strategy<Value = Vec<ScoredEvent>> {
    prop::collection::vec((0u64..100_000, 0.0f32..10.0), 0..120)
        .prop_map(|v| v.into_iter().map(|(time, score)| ScoredEvent { time, score }).collect())
}

fn tickets_strategy() -> impl Strategy<Value = Vec<Ticket>> {
    prop::collection::vec((0u64..90_000, 1u64..20_000, 0usize..5), 0..8).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(id, (report, dur, cause))| Ticket {
                id,
                vpe: 0,
                cause: [
                    TicketCause::Circuit,
                    TicketCause::Cable,
                    TicketCause::Hardware,
                    TicketCause::Software,
                    TicketCause::Duplicate,
                ][cause],
                report_time: report,
                repair_time: report + dur,
                core_incident: false,
            })
            .collect()
    })
}

proptest! {
    /// Raising the threshold can only shrink the flagged set, so the
    /// cluster count is non-increasing in the threshold.
    #[test]
    fn clusters_monotone_in_threshold(events in events_strategy()) {
        let cfg = MappingConfig::default();
        let mut prev = usize::MAX;
        for t in [0.0f32, 2.0, 4.0, 6.0, 8.0, 10.0] {
            let n = warning_clusters(&events, t, &cfg).len();
            prop_assert!(n <= prev, "threshold {} gave {} clusters after {}", t, n, prev);
            prev = n;
        }
    }

    /// Every cluster time is the time of some flagged event, clusters
    /// are sorted, and successive clusters are separated by more than
    /// the cluster gap.
    #[test]
    fn clusters_are_grounded_and_separated(events in events_strategy()) {
        let cfg = MappingConfig::default();
        let threshold = 5.0;
        let clusters = warning_clusters(&events, threshold, &cfg);
        let flagged: std::collections::HashSet<u64> = events
            .iter()
            .filter(|e| e.score >= threshold)
            .map(|e| e.time)
            .collect();
        for c in &clusters {
            prop_assert!(flagged.contains(c), "cluster at {} has no flagged event", c);
        }
        for w in clusters.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    /// Mapping conserves clusters: every cluster is counted exactly once
    /// as early warning, error, or false alarm.
    #[test]
    fn mapping_conserves_clusters(
        events in events_strategy(),
        tickets in tickets_strategy(),
    ) {
        let cfg = MappingConfig { predictive_period: 3600, ..Default::default() };
        let clusters = warning_clusters(&events, 4.0, &cfg);
        let result = map_clusters(&clusters, &tickets, &cfg);
        prop_assert_eq!(
            result.early_warnings + result.errors + result.false_alarms,
            clusters.len()
        );
        prop_assert_eq!(result.per_ticket.len(), tickets.len());
    }

    /// Per-ticket earliest offsets always lie inside the mapping window.
    #[test]
    fn offsets_lie_in_window(
        events in events_strategy(),
        tickets in tickets_strategy(),
    ) {
        let cfg = MappingConfig { predictive_period: 7200, ..Default::default() };
        let clusters = warning_clusters(&events, 3.0, &cfg);
        let result = map_clusters(&clusters, &tickets, &cfg);
        for (outcome, ticket) in result.per_ticket.iter().zip(tickets.iter()) {
            if let Some(offset) = outcome.earliest_offset {
                prop_assert!(offset >= -(cfg.predictive_period as i64));
                prop_assert!(offset <= ticket.duration() as i64);
            }
        }
    }

    /// detected_by is monotone in the offset.
    #[test]
    fn detected_by_is_monotone(
        events in events_strategy(),
        tickets in tickets_strategy(),
    ) {
        let cfg = MappingConfig { predictive_period: 3600, ..Default::default() };
        let clusters = warning_clusters(&events, 3.0, &cfg);
        let result = map_clusters(&clusters, &tickets, &cfg);
        for outcome in &result.per_ticket {
            let mut prev = false;
            for off in [-900i64, -300, 0, 300, 900] {
                let now = outcome.detected_by(off);
                prop_assert!(!prev || now, "detection regressed at offset {}", off);
                prev = now;
            }
        }
    }
}
