//! Fleet-scale refactor gates: batched cross-vPE scoring must be
//! bit-identical to the one-vPE-at-a-time path at every thread count,
//! and the compact per-vPE cursor state must survive a checkpoint
//! roundtrip (with pre-cursor layouts cleanly refused, not
//! misinterpreted).

use nfv_detect::baselines::{PcaDetector, PcaDetectorConfig};
use nfv_detect::codec::LogCodec;
use nfv_detect::detector::AnomalyDetector;
use nfv_detect::group_store::GroupModelStore;
use nfv_detect::grouping::Grouping;
use nfv_detect::lstm_detector::{LstmDetector, LstmDetectorConfig};
use nfv_detect::pipeline::{run_pipeline, DetectorKind, PipelineConfig, PipelineRun};
use nfv_detect::pipeline_ckpt::{self, PIPELINE_CKPT_FORMAT, PIPELINE_CKPT_LAYOUT};
use nfv_nn::checkpoint::{open_envelope, seal_envelope};
use nfv_simnet::{FleetTrace, SimConfig, SimPreset};
use nfv_syslog::time::month_start;
use nfv_syslog::LogStream;
use std::path::PathBuf;

/// A small fleet with trained per-group LSTMs and the encoded streams
/// to score: the realistic version of the unit-level store tests.
fn trained_store() -> (GroupModelStore, Vec<LogStream>) {
    let mut sim = SimConfig::preset(SimPreset::Fast, 23);
    sim.n_vpes = 6;
    sim.months = 2;
    let trace = FleetTrace::simulate(sim.clone());

    let mut sample = Vec::new();
    for v in 0..sim.n_vpes {
        sample.extend(trace.messages(v).iter().filter(|m| m.timestamp < month_start(1)).cloned());
    }
    let codec = LogCodec::train(&sample, 16);
    let vocab = codec.vocab_size();
    let streams: Vec<LogStream> =
        (0..sim.n_vpes).map(|v| codec.encode_stream(trace.messages(v))).collect();

    // Two groups by construction so batching actually crosses vPEs.
    let grouping = Grouping::from_assignment(vec![0, 1, 0, 1, 0, 1]);
    let detectors: Vec<Box<dyn AnomalyDetector>> = grouping
        .members()
        .iter()
        .enumerate()
        .map(|(g, members)| {
            let mut det = LstmDetector::new(LstmDetectorConfig {
                vocab,
                window: 4,
                embed_dim: 6,
                hidden: 10,
                epochs: 1,
                max_train_windows: 1_000,
                seed: 90 + g as u64,
                ..Default::default()
            });
            let pools: Vec<LogStream> = members
                .iter()
                .map(|&v| {
                    LogStream::from_records(streams[v].slice_time(0, month_start(1)).to_vec())
                })
                .collect();
            det.fit(&pools.iter().collect::<Vec<_>>());
            Box::new(det) as Box<dyn AnomalyDetector>
        })
        .collect();
    (GroupModelStore::new(grouping, detectors), streams)
}

#[test]
fn batched_lstm_scoring_is_bit_identical_to_per_vpe_path_at_threads_1_2_4() {
    let (store, streams) = trained_store();
    let (start, end) = (month_start(1), month_start(2));

    let reference: Vec<_> =
        (0..streams.len()).map(|v| store.detector_for(v).score(&streams[v], start, end)).collect();
    let scored: usize = reference.iter().map(|e| e.len()).sum();
    assert!(scored > 0, "fixture must produce events to compare");

    for threads in [1usize, 2, 4] {
        let batched = store.score_fleet(&streams, start, end, threads);
        assert_eq!(batched.len(), reference.len());
        for (v, (got, want)) in batched.iter().zip(&reference).enumerate() {
            assert_eq!(got.len(), want.len(), "threads {} vpe {} count", threads, v);
            for (a, b) in got.iter().zip(want.iter()) {
                assert_eq!(a.time, b.time, "threads {} vpe {}", threads, v);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "threads {} vpe {} at t={}",
                    threads,
                    v,
                    a.time
                );
            }
        }
    }
}

#[test]
fn trait_default_score_batch_matches_per_stream_for_other_families() {
    // Non-LSTM detectors take the trait's default per-stream fan-out;
    // it must obey the same bitwise contract at any thread count.
    let (_, streams) = trained_store();
    let (start, end) = (month_start(1), month_start(2));
    let mut det = PcaDetector::new(PcaDetectorConfig::default());
    let train: Vec<&LogStream> = streams.iter().collect();
    det.fit(&train);

    let refs: Vec<&LogStream> = streams.iter().collect();
    let reference: Vec<_> = refs.iter().map(|s| det.score(s, start, end)).collect();
    for threads in [1usize, 2, 4] {
        let batched = det.score_batch(&refs, start, end, threads);
        for (got, want) in batched.iter().zip(&reference) {
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(want.iter()) {
                assert_eq!((a.time, a.score.to_bits()), (b.time, b.score.to_bits()));
            }
        }
    }
}

// ---- Checkpoint roundtrip of the compact cursor state. ----

fn scratch_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nfv_fleet_scale_{}_{}", std::process::id(), label));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_trace() -> FleetTrace {
    let mut sim = SimConfig::preset(SimPreset::Fast, 19);
    sim.n_vpes = 3;
    sim.months = 3;
    FleetTrace::simulate(sim)
}

fn pca_cfg() -> PipelineConfig {
    PipelineConfig { detector: DetectorKind::Pca, threads: 1, ..PipelineConfig::default() }
}

fn assert_same_months(a: &PipelineRun, b: &PipelineRun, label: &str) {
    assert_eq!(a.months.len(), b.months.len(), "{label}");
    for (ma, mb) in a.months.iter().zip(&b.months) {
        assert_eq!(ma.per_vpe.len(), mb.per_vpe.len(), "{label}");
        for (ea, eb) in ma.per_vpe.iter().zip(&mb.per_vpe) {
            assert_eq!(ea.len(), eb.len(), "{label}");
            for (x, y) in ea.iter().zip(eb.iter()) {
                assert_eq!((x.time, x.score.to_bits()), (y.time, y.score.to_bits()), "{label}");
            }
        }
    }
}

#[test]
fn checkpoint_payload_carries_consistent_cursor_state() {
    let trace = small_trace();
    let dir = scratch_dir("cursor");
    let mut cfg = pca_cfg();
    cfg.checkpoint.dir = Some(dir.clone());
    run_pipeline(&trace, &cfg).unwrap();

    let &last = pipeline_ckpt::list_generations(&dir).iter().max().unwrap();
    let text = std::fs::read_to_string(pipeline_ckpt::generation_path(&dir, last)).unwrap();
    let payload = open_envelope(PIPELINE_CKPT_FORMAT, &text).unwrap();

    assert_eq!(
        payload.get("layout").and_then(|v| v.as_u64()),
        Some(PIPELINE_CKPT_LAYOUT),
        "checkpoints must be stamped with the current layout"
    );
    let cursor = payload.get("cursor").and_then(|v| v.as_array()).unwrap();
    let trimmed = payload.get("trimmed").and_then(|v| v.as_array()).unwrap();
    let stream_len = payload.get("stream_len").and_then(|v| v.as_array()).unwrap();
    assert_eq!(cursor.len(), trace.config.n_vpes);
    assert_eq!(trimmed.len(), trace.config.n_vpes);
    for v in 0..trace.config.n_vpes {
        let consumed = cursor[v].as_u64().unwrap();
        let trim = trimmed[v].as_u64().unwrap();
        let len = stream_len[v].as_u64().unwrap();
        assert!(trim <= consumed, "vpe {}: trimmed {} > consumed {}", v, trim, consumed);
        assert_eq!(consumed - trim, len, "vpe {}: retained records mismatch", v);
        assert!(trim > 0, "vpe {}: history trimming should have dropped scored months", v);
    }

    // The cursor state must also *work*: a resume from disk replays to
    // a bit-identical run.
    let baseline = run_pipeline(&trace, &pca_cfg()).unwrap();
    let mut resumed_cfg = pca_cfg();
    resumed_cfg.checkpoint.dir = Some(dir.clone());
    resumed_cfg.checkpoint.resume = true;
    let resumed = run_pipeline(&trace, &resumed_cfg).unwrap();
    assert_same_months(&baseline, &resumed, "resume from compact cursor checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pre_cursor_layout_checkpoints_are_refused_and_run_restarts_fresh() {
    let trace = small_trace();
    let dir = scratch_dir("layout1");
    let mut cfg = pca_cfg();
    cfg.checkpoint.dir = Some(dir.clone());
    run_pipeline(&trace, &cfg).unwrap();

    // Downgrade every generation to the pre-cursor layout (resealing
    // keeps the checksums valid, so only the layout gate can refuse
    // them — a layout-1 payload has no cursor/trimmed state to trust).
    for gen in pipeline_ckpt::list_generations(&dir) {
        let path = pipeline_ckpt::generation_path(&dir, gen);
        let mut payload =
            open_envelope(PIPELINE_CKPT_FORMAT, &std::fs::read_to_string(&path).unwrap()).unwrap();
        if let serde_json::Value::Object(obj) = &mut payload {
            obj.insert("layout".into(), serde_json::json!(1));
        }
        std::fs::write(&path, seal_envelope(PIPELINE_CKPT_FORMAT, payload)).unwrap();
    }

    let baseline = run_pipeline(&trace, &pca_cfg()).unwrap();
    let mut resume = pca_cfg();
    resume.checkpoint.dir = Some(dir.clone());
    resume.checkpoint.resume = true;
    let run = run_pipeline(&trace, &resume).unwrap();
    assert_same_months(&baseline, &run, "layout-1 dir must fall back to a fresh run");
    let _ = std::fs::remove_dir_all(&dir);
}
