//! Crash-recovery lock for the monthly pipeline: a run killed at *any*
//! month boundary and resumed from its checkpoint directory must
//! produce a `PipelineRun` bitwise identical to an uninterrupted run —
//! at any thread count, and even when the newest checkpoint generation
//! is torn or corrupt (fallback to the previous generation).

use nfv_detect::pipeline::{
    run_pipeline, CrashPoint, DetectorKind, PipelineConfig, PipelineError, PipelineRun,
};
use nfv_detect::pipeline_ckpt;
use nfv_simnet::{FleetTrace, SimConfig, SimPreset};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

const MONTHS: usize = 6;

fn trace() -> &'static FleetTrace {
    static TRACE: OnceLock<FleetTrace> = OnceLock::new();
    TRACE.get_or_init(|| {
        let mut sim = SimConfig::preset(SimPreset::Fast, 11);
        sim.n_vpes = 3;
        sim.months = MONTHS;
        FleetTrace::simulate(sim)
    })
}

fn pca_cfg(threads: usize) -> PipelineConfig {
    PipelineConfig { detector: DetectorKind::Pca, threads, ..PipelineConfig::default() }
}

fn baseline() -> &'static PipelineRun {
    static RUN: OnceLock<PipelineRun> = OnceLock::new();
    RUN.get_or_init(|| run_pipeline(trace(), &pca_cfg(1)).unwrap())
}

fn scratch_dir(label: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "nfv_crash_resume_{}_{}_{}",
        std::process::id(),
        label,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Bitwise equality of two runs: event times, score bit patterns,
/// adaptation log, grouping, suppression windows, surfaced events.
fn assert_bitwise_identical(a: &PipelineRun, b: &PipelineRun, label: &str) {
    assert_eq!(a.months.len(), b.months.len(), "{label}: month count");
    for (ma, mb) in a.months.iter().zip(&b.months) {
        assert_eq!(ma.month, mb.month, "{label}: month index");
        assert_eq!(ma.per_vpe.len(), mb.per_vpe.len(), "{label}: vpe count");
        for (vpe, (ea, eb)) in ma.per_vpe.iter().zip(&mb.per_vpe).enumerate() {
            assert_eq!(ea.len(), eb.len(), "{label}: month {} vpe {} event count", ma.month, vpe);
            for (x, y) in ea.iter().zip(eb.iter()) {
                assert_eq!(x.time, y.time, "{label}: month {} vpe {} time", ma.month, vpe);
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "{label}: month {} vpe {} score bits",
                    ma.month,
                    vpe
                );
            }
        }
    }
    assert_eq!(a.adaptations, b.adaptations, "{label}: adaptations");
    assert_eq!(a.vocab, b.vocab, "{label}: vocab");
    assert_eq!(a.grouping.assignment, b.grouping.assignment, "{label}: grouping");
    assert_eq!(a.grouping.k, b.grouping.k, "{label}: group count");
    assert_eq!(
        a.grouping.modularity.to_bits(),
        b.grouping.modularity.to_bits(),
        "{label}: modularity bits"
    );
    assert_eq!(a.suppression, b.suppression, "{label}: suppression windows");
    assert_eq!(a.events, b.events, "{label}: surfaced events");
    let ids = |r: &PipelineRun| r.tickets.iter().map(|t| t.id).collect::<Vec<_>>();
    assert_eq!(ids(a), ids(b), "{label}: evaluated tickets");
}

fn expect_crash(cfg: &PipelineConfig, want: CrashPoint) {
    match run_pipeline(trace(), cfg) {
        Err(PipelineError::CrashInjected(p)) => assert_eq!(p, want, "wrong crash point"),
        Err(e) => panic!("expected injected crash {:?}, got error: {}", want, e),
        Ok(_) => panic!("expected injected crash {:?}, run completed", want),
    }
}

#[test]
fn kill_at_every_month_boundary_resumes_bit_identically() {
    for kill_at in 0..MONTHS {
        for threads in [1usize, 2, 4] {
            let dir = scratch_dir("kill");
            let mut cfg = pca_cfg(threads);
            cfg.checkpoint.dir = Some(dir.clone());
            cfg.checkpoint.crash = Some(CrashPoint::AfterMonth(kill_at));
            expect_crash(&cfg, CrashPoint::AfterMonth(kill_at));

            let mut cfg = pca_cfg(threads);
            cfg.checkpoint.dir = Some(dir.clone());
            cfg.checkpoint.resume = true;
            let resumed = run_pipeline(trace(), &cfg).unwrap();
            assert_bitwise_identical(
                baseline(),
                &resumed,
                &format!("kill at month {} / {} threads", kill_at, threads),
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn torn_final_save_falls_back_to_previous_generation() {
    let dir = scratch_dir("torn");
    let mut cfg = pca_cfg(2);
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.crash = Some(CrashPoint::MidSave(3));
    expect_crash(&cfg, CrashPoint::MidSave(3));

    // Generation 3 is a torn (truncated) file; resume must skip it and
    // redo months 3.. from generation 2, still bit-identically.
    assert!(pipeline_ckpt::generation_path(&dir, 3).exists(), "torn file must exist");
    let mut cfg = pca_cfg(4);
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.resume = true;
    let resumed = run_pipeline(trace(), &cfg).unwrap();
    assert_bitwise_identical(baseline(), &resumed, "torn gen 3 fallback");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checksum_corruption_falls_back_to_previous_generation() {
    let dir = scratch_dir("corrupt");
    let mut cfg = pca_cfg(1);
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.crash = Some(CrashPoint::AfterMonth(2));
    expect_crash(&cfg, CrashPoint::AfterMonth(2));

    // Flip one checksum hex digit of the newest generation: the file
    // stays valid JSON but fails envelope verification.
    let path = pipeline_ckpt::generation_path(&dir, 2);
    let text = std::fs::read_to_string(&path).unwrap();
    let at = text.find("\"checksum\"").expect("envelope has a checksum") + "\"checksum\":\"".len();
    let mut bytes = text.into_bytes();
    bytes[at] = if bytes[at] == b'f' { b'0' } else { b'f' };
    std::fs::write(&path, bytes).unwrap();

    let mut cfg = pca_cfg(2);
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.resume = true;
    let resumed = run_pipeline(trace(), &cfg).unwrap();
    assert_bitwise_identical(baseline(), &resumed, "corrupt gen 2 fallback");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sparse_checkpoint_cadence_redoes_skipped_months() {
    let dir = scratch_dir("every");
    let mut cfg = pca_cfg(1);
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.every = 2;
    cfg.checkpoint.crash = Some(CrashPoint::MidSave(3));
    expect_crash(&cfg, CrashPoint::MidSave(3));

    // Cadence 2 wrote generations 0 and 2; boundary 3 left a torn file.
    assert!(pipeline_ckpt::generation_path(&dir, 0).exists());
    assert!(!pipeline_ckpt::generation_path(&dir, 1).exists());
    assert!(pipeline_ckpt::generation_path(&dir, 2).exists());
    assert!(pipeline_ckpt::generation_path(&dir, 3).exists());

    let mut cfg = pca_cfg(2);
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.every = 2;
    cfg.checkpoint.resume = true;
    let resumed = run_pipeline(trace(), &cfg).unwrap();
    assert_bitwise_identical(baseline(), &resumed, "sparse cadence redo");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_empty_directory_starts_fresh() {
    let dir = scratch_dir("fresh");
    let mut cfg = pca_cfg(1);
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.resume = true;
    let run = run_pipeline(trace(), &cfg).unwrap();
    assert_bitwise_identical(baseline(), &run, "fresh start under --resume");
    // The fresh run itself checkpointed as it went (retention default 3).
    assert!(pipeline_ckpt::generation_path(&dir, MONTHS - 1).exists());
    assert_eq!(pipeline_ckpt::list_generations(&dir).len(), 3, "retention prunes to keep");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_under_a_different_config_is_rejected() {
    let dir = scratch_dir("mismatch");
    let mut cfg = pca_cfg(1);
    cfg.checkpoint.dir = Some(dir.clone());
    cfg.checkpoint.crash = Some(CrashPoint::AfterMonth(1));
    expect_crash(&cfg, CrashPoint::AfterMonth(1));

    let mut other = pca_cfg(1);
    other.trigger_quantile = 0.9;
    other.checkpoint.dir = Some(dir.clone());
    other.checkpoint.resume = true;
    match run_pipeline(trace(), &other) {
        Err(PipelineError::ResumeMismatch(msg)) => {
            assert!(msg.contains("fingerprint"), "unexpected message: {}", msg)
        }
        Err(e) => panic!("expected ResumeMismatch, got: {}", e),
        Ok(_) => panic!("expected ResumeMismatch, run completed"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lstm_detector_state_survives_crash_and_resume() {
    let mut sim = SimConfig::preset(SimPreset::Fast, 5);
    sim.n_vpes = 3;
    sim.months = 3;
    let trace = FleetTrace::simulate(sim);
    let mut cfg =
        PipelineConfig { detector: DetectorKind::Lstm, threads: 1, ..PipelineConfig::default() };
    cfg.lstm.epochs = 1;
    cfg.lstm.update_epochs = 1;
    cfg.lstm.max_train_windows = 400;
    let uninterrupted = run_pipeline(&trace, &cfg).unwrap();

    let dir = scratch_dir("lstm");
    let mut crashed = cfg.clone();
    crashed.threads = 2;
    crashed.checkpoint.dir = Some(dir.clone());
    crashed.checkpoint.crash = Some(CrashPoint::AfterMonth(1));
    match run_pipeline(&trace, &crashed) {
        Err(PipelineError::CrashInjected(_)) => {}
        other => panic!("expected injected crash, got {:?}", other.err().map(|e| e.to_string())),
    }

    let mut resume = cfg.clone();
    resume.threads = 4;
    resume.checkpoint.dir = Some(dir.clone());
    resume.checkpoint.resume = true;
    let resumed = run_pipeline(&trace, &resume).unwrap();
    assert_bitwise_identical(&uninterrupted, &resumed, "lstm crash/resume");
    let _ = std::fs::remove_dir_all(&dir);
}
