//! Principal component analysis via orthogonal power iteration.
//!
//! Used by the PCA anomaly detector (Xu et al., SOSP '09 — cited in the
//! paper's related work as the classic unsupervised console-log
//! approach), which flags points with a large residual outside the
//! principal subspace.

use nfv_tensor::vecops::{axpy, dot, norm2, normalize_l2};
use rand::Rng;

/// A fitted PCA model: data mean plus the leading principal components.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f32>,
    /// Orthonormal principal components, one per row.
    components: Vec<Vec<f32>>,
    /// Variance captured by each component.
    explained: Vec<f32>,
}

impl Pca {
    /// Fits `n_components` principal components with power iteration and
    /// Gram-Schmidt deflation.
    ///
    /// # Panics
    /// Panics on empty input, ragged rows, or `n_components == 0`.
    pub fn fit(data: &[Vec<f32>], n_components: usize, rng: &mut impl Rng) -> Pca {
        assert!(!data.is_empty(), "Pca: empty input");
        assert!(n_components > 0, "Pca: need at least one component");
        let dim = data[0].len();
        assert!(data.iter().all(|r| r.len() == dim), "Pca: ragged rows");
        let k = n_components.min(dim);

        // Center the data.
        let mut mean = vec![0.0f32; dim];
        for row in data {
            axpy(1.0, row, &mut mean);
        }
        for m in &mut mean {
            *m /= data.len() as f32;
        }
        let centered: Vec<Vec<f32>> = data
            .iter()
            .map(|row| row.iter().zip(mean.iter()).map(|(x, m)| x - m).collect())
            .collect();

        let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        for _ in 0..k {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            orthogonalize(&mut v, &components);
            if norm2(&v) < 1e-9 {
                break;
            }
            normalize_l2(&mut v);

            let mut eigenvalue = 0.0f32;
            for _ in 0..200 {
                // w = Cov * v computed as X' (X v) / n without forming Cov.
                let mut w = vec![0.0f32; dim];
                for row in &centered {
                    let proj = dot(row, &v);
                    axpy(proj, row, &mut w);
                }
                for x in &mut w {
                    *x /= centered.len() as f32;
                }
                orthogonalize(&mut w, &components);
                let n = norm2(&w);
                if n < 1e-12 {
                    eigenvalue = 0.0;
                    break;
                }
                normalize_l2(&mut w);
                let delta = 1.0 - dot(&w, &v).abs();
                v = w;
                // Rayleigh quotient for the eigenvalue.
                let mut cov_v = vec![0.0f32; dim];
                for row in &centered {
                    let proj = dot(row, &v);
                    axpy(proj, row, &mut cov_v);
                }
                eigenvalue = dot(&cov_v, &v) / centered.len() as f32;
                if delta < 1e-7 {
                    break;
                }
            }
            components.push(v);
            explained.push(eigenvalue.max(0.0));
        }
        Pca { mean, components, explained }
    }

    /// Number of fitted components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// The data mean subtracted before projection.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// The orthonormal principal components, one per row.
    pub fn components(&self) -> &[Vec<f32>] {
        &self.components
    }

    /// Rebuilds a model from its parts (checkpoint restore).
    ///
    /// # Panics
    /// Panics when `components`/`explained` lengths differ or any
    /// component's width differs from the mean's.
    pub fn from_parts(mean: Vec<f32>, components: Vec<Vec<f32>>, explained: Vec<f32>) -> Pca {
        assert_eq!(
            components.len(),
            explained.len(),
            "Pca::from_parts: components/explained length mismatch"
        );
        assert!(
            components.iter().all(|c| c.len() == mean.len()),
            "Pca::from_parts: component width mismatch"
        );
        Pca { mean, components, explained }
    }

    /// Variance captured by each component, descending.
    pub fn explained_variance(&self) -> &[f32] {
        &self.explained
    }

    /// Projects `x` onto the principal subspace (component coordinates).
    pub fn project(&self, x: &[f32]) -> Vec<f32> {
        let centered: Vec<f32> = x.iter().zip(self.mean.iter()).map(|(v, m)| v - m).collect();
        self.components.iter().map(|c| dot(c, &centered)).collect()
    }

    /// Squared residual of `x` outside the principal subspace — the
    /// anomaly score of the PCA detector (larger = more anomalous).
    pub fn residual_sq(&self, x: &[f32]) -> f32 {
        let centered: Vec<f32> = x.iter().zip(self.mean.iter()).map(|(v, m)| v - m).collect();
        let mut residual = centered.clone();
        for c in &self.components {
            let proj = dot(c, &centered);
            axpy(-proj, c, &mut residual);
        }
        dot(&residual, &residual)
    }
}

fn orthogonalize(v: &mut [f32], basis: &[Vec<f32>]) {
    for b in basis {
        let proj = dot(v, b);
        axpy(-proj, b, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    /// Data concentrated along the direction (1, 1)/sqrt(2) with tiny
    /// orthogonal noise.
    fn line_data(rng: &mut SmallRng, n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| {
                let t = rng.gen_range(-5.0f32..5.0);
                let noise = rng.gen_range(-0.05f32..0.05);
                vec![t + noise, t - noise]
            })
            .collect()
    }

    #[test]
    fn first_component_finds_dominant_direction() {
        let mut rng = SmallRng::seed_from_u64(41);
        let data = line_data(&mut rng, 200);
        let pca = Pca::fit(&data, 1, &mut rng);
        // The leading component must align with (1, 1)/sqrt(2) up to sign.
        let c0 = &pca.components[0];
        let alignment = dot(c0, &[1.0 / 2.0f32.sqrt(), 1.0 / 2.0f32.sqrt()]).abs();
        assert!(alignment > 0.999, "alignment = {}", alignment);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = SmallRng::seed_from_u64(17);
        let data: Vec<Vec<f32>> =
            (0..100).map(|_| (0..5).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let pca = Pca::fit(&data, 3, &mut rng);
        for i in 0..pca.n_components() {
            for j in 0..pca.n_components() {
                let d = dot(&pca.components[i], &pca.components[j]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-3, "<c{}, c{}> = {}", i, j, d);
            }
        }
    }

    #[test]
    fn residual_flags_off_manifold_points() {
        let mut rng = SmallRng::seed_from_u64(23);
        let data = line_data(&mut rng, 300);
        let pca = Pca::fit(&data, 1, &mut rng);
        let on = pca.residual_sq(&[2.0, 2.0]);
        let off = pca.residual_sq(&[2.0, -2.0]);
        assert!(off > on * 100.0, "on {} vs off {}", on, off);
    }

    #[test]
    fn explained_variance_is_descending() {
        let mut rng = SmallRng::seed_from_u64(31);
        // Anisotropic data: variance 25 along x, 1 along y, 0.01 along z.
        let data: Vec<Vec<f32>> = (0..400)
            .map(|_| {
                vec![
                    rng.gen_range(-5.0f32..5.0),
                    rng.gen_range(-1.0f32..1.0),
                    rng.gen_range(-0.1f32..0.1),
                ]
            })
            .collect();
        let pca = Pca::fit(&data, 3, &mut rng);
        let ev = pca.explained_variance();
        assert!(ev[0] > ev[1] && ev[1] > ev[2], "{:?}", ev);
    }
}
