//! ν-One-Class SVM (Schölkopf et al.) with an RBF kernel, solved by
//! pairwise SMO.
//!
//! This is the paper's shallow-learning baseline (§5.2): a model of the
//! normal syslog training data in a kernel feature space; new windows
//! whose decision value falls far below the learned offset are anomalous.
//!
//! Dual problem:
//!
//! ```text
//! min_a  1/2 * a' K a    s.t.  0 <= a_i <= 1/(nu*l),  sum a_i = 1
//! ```
//!
//! Decision function `f(x) = sum_i a_i k(x_i, x) - rho`; the anomaly
//! score reported by [`OneClassSvm::score`] is `rho - sum_i a_i k(x_i, x)`
//! so that *larger means more anomalous*, matching the rest of the
//! workspace.

use nfv_tensor::vecops::sq_dist;
use rand::Rng;

/// Configuration for [`OneClassSvm::fit`].
#[derive(Debug, Clone)]
pub struct OneClassSvmConfig {
    /// The ν parameter: an upper bound on the training outlier fraction
    /// and lower bound on the support-vector fraction. Must be in (0, 1].
    pub nu: f32,
    /// RBF kernel width; `None` selects the median heuristic
    /// (`gamma = 1 / median squared pairwise distance`).
    pub gamma: Option<f32>,
    /// SMO sweeps over the training set.
    pub max_passes: usize,
    /// Convergence tolerance on the largest alpha update in a pass.
    pub tol: f32,
    /// Cap on training points; larger inputs are uniformly subsampled to
    /// keep the kernel matrix tractable.
    pub max_train_points: usize,
}

impl Default for OneClassSvmConfig {
    fn default() -> Self {
        OneClassSvmConfig { nu: 0.1, gamma: None, max_passes: 60, tol: 1e-5, max_train_points: 600 }
    }
}

/// A fitted one-class SVM.
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    support_vectors: Vec<Vec<f32>>,
    alphas: Vec<f32>,
    rho: f32,
    gamma: f32,
}

impl OneClassSvm {
    /// Fits the model on normal data.
    ///
    /// # Panics
    /// Panics on an empty training set, ragged features, or `nu` outside
    /// `(0, 1]`.
    pub fn fit(data: &[Vec<f32>], cfg: &OneClassSvmConfig, rng: &mut impl Rng) -> OneClassSvm {
        assert!(!data.is_empty(), "OneClassSvm: empty training set");
        assert!(cfg.nu > 0.0 && cfg.nu <= 1.0, "OneClassSvm: nu must be in (0, 1]");
        let dim = data[0].len();
        assert!(data.iter().all(|p| p.len() == dim), "OneClassSvm: ragged features");

        // Subsample when the training set is too large for an n^2 kernel.
        let points: Vec<Vec<f32>> = if data.len() > cfg.max_train_points {
            let mut idx: Vec<usize> = (0..data.len()).collect();
            crate::sampling::shuffle(&mut idx, rng);
            idx.truncate(cfg.max_train_points);
            idx.into_iter().map(|i| data[i].clone()).collect()
        } else {
            data.to_vec()
        };
        let n = points.len();

        let gamma = cfg.gamma.unwrap_or_else(|| median_heuristic_gamma(&points));
        let kernel = |a: &[f32], b: &[f32]| (-gamma * sq_dist(a, b)).exp();

        // Precompute the kernel matrix.
        let mut k = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = kernel(&points[i], &points[j]);
                k[i][j] = v;
                k[j][i] = v;
            }
        }

        // Feasible start: uniform alphas satisfy the simplex constraint;
        // the box bound C = 1/(nu*n) >= 1/n always admits it.
        let c = 1.0 / (cfg.nu * n as f32);
        let mut alphas = vec![1.0 / n as f32; n];

        // Maintain g_i = (K a)_i incrementally.
        let mut g: Vec<f32> = (0..n).map(|i| (0..n).map(|j| alphas[j] * k[i][j]).sum()).collect();

        // Maximal-violating-pair SMO. KKT conditions at the optimum:
        // alpha_i = 0 -> g_i >= rho; 0 < alpha_i < C -> g_i = rho;
        // alpha_i = C -> g_i <= rho. A violating pair is (i, j) with
        // alpha_i < C, alpha_j > 0 and g_i < g_j: moving mass from j to i
        // strictly decreases the objective.
        let max_iters = cfg.max_passes * n;
        for _ in 0..max_iters {
            // i: smallest gradient among coordinates that can grow;
            // j: largest gradient among coordinates that can shrink.
            let mut i = usize::MAX;
            let mut j = usize::MAX;
            for t in 0..n {
                if alphas[t] < c - 1e-12 && (i == usize::MAX || g[t] < g[i]) {
                    i = t;
                }
                if alphas[t] > 1e-12 && (j == usize::MAX || g[t] > g[j]) {
                    j = t;
                }
            }
            if i == usize::MAX || j == usize::MAX || i == j || g[j] - g[i] < cfg.tol {
                break;
            }

            let eta = k[i][i] + k[j][j] - 2.0 * k[i][j];
            let delta_sum = alphas[i] + alphas[j];
            // Exact minimizer of the 2-variable subproblem, clipped to the
            // box [max(0, sum - C), min(C, sum)] for alpha_i.
            let ci = g[i] - alphas[i] * k[i][i] - alphas[j] * k[i][j];
            let cj = g[j] - alphas[i] * k[i][j] - alphas[j] * k[j][j];
            let lo = (delta_sum - c).max(0.0);
            let hi = delta_sum.min(c);
            let ai_new = if eta > 1e-12 {
                ((delta_sum * (k[j][j] - k[i][j]) + cj - ci) / eta).clamp(lo, hi)
            } else {
                // Degenerate curvature: move as far as the box allows in
                // the descent direction (g_i < g_j, so grow alpha_i).
                hi
            };
            let aj_new = delta_sum - ai_new;

            let di = ai_new - alphas[i];
            let dj = aj_new - alphas[j];
            if di.abs() < 1e-14 {
                break;
            }
            alphas[i] = ai_new;
            alphas[j] = aj_new;
            for t in 0..n {
                g[t] += di * k[t][i] + dj * k[t][j];
            }
        }

        // rho = average decision value over margin support vectors
        // (0 < alpha < C); fall back to all support vectors.
        let margin: Vec<usize> =
            (0..n).filter(|&i| alphas[i] > 1e-8 && alphas[i] < c - 1e-8).collect();
        let sv_set: Vec<usize> =
            if margin.is_empty() { (0..n).filter(|&i| alphas[i] > 1e-8).collect() } else { margin };
        let rho = sv_set.iter().map(|&i| g[i]).sum::<f32>() / sv_set.len().max(1) as f32;

        // Keep only the support vectors.
        let mut support_vectors = Vec::new();
        let mut sv_alphas = Vec::new();
        for i in 0..n {
            if alphas[i] > 1e-8 {
                support_vectors.push(points[i].clone());
                sv_alphas.push(alphas[i]);
            }
        }
        OneClassSvm { support_vectors, alphas: sv_alphas, rho, gamma }
    }

    /// Anomaly score for `x`: `rho - sum_i a_i k(x_i, x)`. Positive means
    /// outside the learned region (more anomalous).
    pub fn score(&self, x: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (sv, &a) in self.support_vectors.iter().zip(self.alphas.iter()) {
            acc += a * (-self.gamma * sq_dist(sv, x)).exp();
        }
        self.rho - acc
    }

    /// True when `x` is classified as an outlier (`score > 0`).
    pub fn is_outlier(&self, x: &[f32]) -> bool {
        self.score(x) > 0.0
    }

    /// Number of retained support vectors.
    pub fn support_vector_count(&self) -> usize {
        self.support_vectors.len()
    }

    /// The fitted kernel width.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// The retained support vectors.
    pub fn support_vectors(&self) -> &[Vec<f32>] {
        &self.support_vectors
    }

    /// Dual coefficients, aligned with [`OneClassSvm::support_vectors`].
    pub fn alphas(&self) -> &[f32] {
        &self.alphas
    }

    /// The decision-function offset.
    pub fn rho(&self) -> f32 {
        self.rho
    }

    /// Rebuilds a model from its parts (checkpoint restore).
    ///
    /// # Panics
    /// Panics when `support_vectors` and `alphas` lengths differ or the
    /// support vectors are ragged.
    pub fn from_parts(
        support_vectors: Vec<Vec<f32>>,
        alphas: Vec<f32>,
        rho: f32,
        gamma: f32,
    ) -> OneClassSvm {
        assert_eq!(
            support_vectors.len(),
            alphas.len(),
            "OneClassSvm::from_parts: sv/alpha length mismatch"
        );
        if let Some(first) = support_vectors.first() {
            let dim = first.len();
            assert!(
                support_vectors.iter().all(|sv| sv.len() == dim),
                "OneClassSvm::from_parts: ragged support vectors"
            );
        }
        OneClassSvm { support_vectors, alphas, rho, gamma }
    }
}

/// Median-of-squared-distances kernel-width heuristic (on a sample of
/// pairs when the set is large).
fn median_heuristic_gamma(points: &[Vec<f32>]) -> f32 {
    let n = points.len();
    if n < 2 {
        return 1.0;
    }
    let mut dists = Vec::new();
    let stride = (n * (n - 1) / 2 / 2000).max(1);
    let mut counter = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if counter.is_multiple_of(stride) {
                dists.push(sq_dist(&points[i], &points[j]));
            }
            counter += 1;
        }
    }
    dists.sort_by(f32::total_cmp);
    let median = nfv_tensor::stats::quantile_sorted(&dists, 0.5);
    if median > 1e-12 {
        1.0 / median
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn cluster(rng: &mut SmallRng, center: &[f32], spread: f32, n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| center.iter().map(|&c| c + rng.gen_range(-spread..spread)).collect())
            .collect()
    }

    #[test]
    fn inliers_score_below_outliers() {
        let mut rng = SmallRng::seed_from_u64(77);
        let train = cluster(&mut rng, &[0.0, 0.0, 0.0], 1.0, 150);
        let model = OneClassSvm::fit(&train, &OneClassSvmConfig::default(), &mut rng);

        let inlier_scores: Vec<f32> =
            cluster(&mut rng, &[0.0, 0.0, 0.0], 0.8, 30).iter().map(|p| model.score(p)).collect();
        let outlier_scores: Vec<f32> =
            cluster(&mut rng, &[8.0, 8.0, 8.0], 0.5, 30).iter().map(|p| model.score(p)).collect();

        let max_in = inlier_scores.iter().cloned().fold(f32::MIN, f32::max);
        let min_out = outlier_scores.iter().cloned().fold(f32::MAX, f32::min);
        assert!(
            min_out > max_in,
            "outliers should score above inliers: min_out {} vs max_in {}",
            min_out,
            max_in
        );
        assert!(outlier_scores.iter().all(|&s| s > 0.0), "far outliers must be flagged");
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        let mut rng = SmallRng::seed_from_u64(3);
        let train = cluster(&mut rng, &[0.0, 0.0], 1.0, 200);
        for &nu in &[0.05f32, 0.2] {
            let cfg = OneClassSvmConfig { nu, ..Default::default() };
            let model = OneClassSvm::fit(&train, &cfg, &mut rng);
            let outlier_frac =
                train.iter().filter(|p| model.is_outlier(p)).count() as f32 / train.len() as f32;
            // nu is an asymptotic bound; allow generous slack.
            assert!(
                outlier_frac < nu + 0.12,
                "nu={}: training outlier fraction {}",
                nu,
                outlier_frac
            );
        }
    }

    #[test]
    fn subsampling_keeps_model_usable() {
        let mut rng = SmallRng::seed_from_u64(5);
        let train = cluster(&mut rng, &[1.0, -1.0], 0.5, 400);
        let cfg = OneClassSvmConfig { max_train_points: 100, ..Default::default() };
        let model = OneClassSvm::fit(&train, &cfg, &mut rng);
        assert!(model.support_vector_count() <= 100);
        assert!(model.score(&[1.0, -1.0]) < model.score(&[10.0, 10.0]));
    }

    #[test]
    fn explicit_gamma_is_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        let train = cluster(&mut rng, &[0.0], 1.0, 50);
        let cfg = OneClassSvmConfig { gamma: Some(0.25), ..Default::default() };
        let model = OneClassSvm::fit(&train, &cfg, &mut rng);
        assert_eq!(model.gamma(), 0.25);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = OneClassSvm::fit(&[], &OneClassSvmConfig::default(), &mut rng);
    }
}
