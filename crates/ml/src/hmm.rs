//! Discrete hidden Markov model trained with Baum-Welch.
//!
//! The paper's related work covers HMM-based failure prediction (Liang
//! et al., Salfner & Malek). This module provides the substrate for the
//! workspace's HMM extension baseline: an HMM is trained on normal
//! template windows and an incoming log is scored by the negative log
//! of its one-step predictive probability under the model.
//!
//! All recursions use the standard per-step scaling, so likelihoods of
//! long sequences stay in range.

use rand::Rng;

/// Additive smoothing applied to all re-estimated probabilities.
const SMOOTHING: f64 = 1e-4;

/// A fitted discrete HMM.
#[derive(Debug, Clone)]
pub struct Hmm {
    /// Initial state distribution (length S).
    pi: Vec<f64>,
    /// Transition matrix (S x S, row-stochastic).
    a: Vec<Vec<f64>>,
    /// Emission matrix (S x V, row-stochastic).
    b: Vec<Vec<f64>>,
}

/// Configuration for [`Hmm::fit`].
#[derive(Debug, Clone, Copy)]
pub struct HmmConfig {
    /// Number of hidden states.
    pub states: usize,
    /// Baum-Welch iterations.
    pub iters: usize,
}

impl Default for HmmConfig {
    fn default() -> Self {
        HmmConfig { states: 8, iters: 20 }
    }
}

fn normalize(row: &mut [f64]) {
    let sum: f64 = row.iter().sum();
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    } else {
        let u = 1.0 / row.len() as f64;
        row.iter_mut().for_each(|v| *v = u);
    }
}

impl Hmm {
    /// Trains an HMM on observation sequences over a vocabulary of size
    /// `vocab` using Baum-Welch with random initialization.
    ///
    /// # Panics
    /// Panics when there are no non-empty sequences, `vocab == 0`, or a
    /// symbol is out of range.
    pub fn fit(sequences: &[Vec<usize>], vocab: usize, cfg: &HmmConfig, rng: &mut impl Rng) -> Hmm {
        assert!(vocab > 0, "Hmm: empty vocabulary");
        assert!(cfg.states > 0, "Hmm: need at least one state");
        let seqs: Vec<&Vec<usize>> = sequences.iter().filter(|s| !s.is_empty()).collect();
        assert!(!seqs.is_empty(), "Hmm: no non-empty training sequences");
        for s in &seqs {
            assert!(s.iter().all(|&x| x < vocab), "Hmm: symbol out of range");
        }
        let s_n = cfg.states;

        // Random row-stochastic initialization.
        let mut rand_row = |n: usize| {
            let mut row: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..1.5)).collect();
            normalize(&mut row);
            row
        };
        let mut model = Hmm {
            pi: rand_row(s_n),
            a: (0..s_n).map(|_| rand_row(s_n)).collect(),
            b: (0..s_n).map(|_| rand_row(vocab)).collect(),
        };

        for _ in 0..cfg.iters {
            // Accumulators for re-estimation.
            let mut pi_acc = vec![SMOOTHING; s_n];
            let mut a_acc = vec![vec![SMOOTHING; s_n]; s_n];
            let mut b_acc = vec![vec![SMOOTHING; vocab]; s_n];

            for seq in &seqs {
                let t_n = seq.len();
                let (alpha, scale) = model.forward_scaled(seq);
                let beta = model.backward_scaled(seq, &scale);

                // gamma[t][i] ∝ alpha[t][i] * beta[t][i].
                for t in 0..t_n {
                    let mut gamma: Vec<f64> = (0..s_n).map(|i| alpha[t][i] * beta[t][i]).collect();
                    normalize(&mut gamma);
                    if t == 0 {
                        for i in 0..s_n {
                            pi_acc[i] += gamma[i];
                        }
                    }
                    for i in 0..s_n {
                        b_acc[i][seq[t]] += gamma[i];
                    }
                }
                // xi[t][i][j] ∝ alpha[t][i] a[i][j] b[j][o_{t+1}] beta[t+1][j].
                for t in 0..t_n.saturating_sub(1) {
                    let mut total = 0.0;
                    let mut xi = vec![vec![0.0f64; s_n]; s_n];
                    for i in 0..s_n {
                        for j in 0..s_n {
                            let v = alpha[t][i]
                                * model.a[i][j]
                                * model.b[j][seq[t + 1]]
                                * beta[t + 1][j];
                            xi[i][j] = v;
                            total += v;
                        }
                    }
                    if total > 0.0 {
                        for i in 0..s_n {
                            for j in 0..s_n {
                                a_acc[i][j] += xi[i][j] / total;
                            }
                        }
                    }
                }
            }

            normalize(&mut pi_acc);
            model.pi = pi_acc;
            for i in 0..s_n {
                normalize(&mut a_acc[i]);
                normalize(&mut b_acc[i]);
            }
            model.a = a_acc;
            model.b = b_acc;
        }
        model
    }

    /// Number of hidden states.
    pub fn states(&self) -> usize {
        self.pi.len()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.b[0].len()
    }

    /// Initial state distribution.
    pub fn pi(&self) -> &[f64] {
        &self.pi
    }

    /// Transition matrix rows.
    pub fn transition(&self) -> &[Vec<f64>] {
        &self.a
    }

    /// Emission matrix rows.
    pub fn emission(&self) -> &[Vec<f64>] {
        &self.b
    }

    /// Rebuilds a model from its parts (checkpoint restore).
    ///
    /// # Panics
    /// Panics when the matrix shapes are inconsistent: `a` must be
    /// `S x S` and `b` must be `S x V` with `V > 0` for `S = pi.len()`.
    pub fn from_parts(pi: Vec<f64>, a: Vec<Vec<f64>>, b: Vec<Vec<f64>>) -> Hmm {
        let s_n = pi.len();
        assert!(s_n > 0, "Hmm::from_parts: empty state distribution");
        assert!(
            a.len() == s_n && a.iter().all(|row| row.len() == s_n),
            "Hmm::from_parts: transition matrix must be S x S"
        );
        assert!(
            b.len() == s_n && b.iter().all(|row| !row.is_empty() && row.len() == b[0].len()),
            "Hmm::from_parts: emission matrix must be S x V"
        );
        Hmm { pi, a, b }
    }

    /// Scaled forward pass; returns `(alpha, scale)` where `scale[t] =
    /// p(o_t | o_1..t-1)`.
    fn forward_scaled(&self, seq: &[usize]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let s_n = self.states();
        let mut alpha = vec![vec![0.0f64; s_n]; seq.len()];
        let mut scale = vec![0.0f64; seq.len()];
        for (i, a0) in alpha[0].iter_mut().enumerate() {
            *a0 = self.pi[i] * self.b[i][seq[0]];
        }
        scale[0] = alpha[0].iter().sum::<f64>().max(f64::MIN_POSITIVE);
        alpha[0].iter_mut().for_each(|v| *v /= scale[0]);
        for t in 1..seq.len() {
            for j in 0..s_n {
                let acc: f64 =
                    alpha[t - 1].iter().zip(self.a.iter()).map(|(&ap, row)| ap * row[j]).sum();
                alpha[t][j] = acc * self.b[j][seq[t]];
            }
            scale[t] = alpha[t].iter().sum::<f64>().max(f64::MIN_POSITIVE);
            alpha[t].iter_mut().for_each(|v| *v /= scale[t]);
        }
        (alpha, scale)
    }

    /// Scaled backward pass using the forward scale factors.
    fn backward_scaled(&self, seq: &[usize], scale: &[f64]) -> Vec<Vec<f64>> {
        let s_n = self.states();
        let t_n = seq.len();
        let mut beta = vec![vec![0.0f64; s_n]; t_n];
        beta[t_n - 1].iter_mut().for_each(|v| *v = 1.0 / scale[t_n - 1]);
        for t in (0..t_n - 1).rev() {
            let (cur, next) = beta.split_at_mut(t + 1);
            for (i, b_cur) in cur[t].iter_mut().enumerate() {
                let acc: f64 = next[0]
                    .iter()
                    .enumerate()
                    .map(|(j, &bn)| self.a[i][j] * self.b[j][seq[t + 1]] * bn)
                    .sum();
                *b_cur = acc / scale[t];
            }
        }
        beta
    }

    /// Total log-likelihood of a sequence.
    pub fn log_likelihood(&self, seq: &[usize]) -> f64 {
        if seq.is_empty() {
            return 0.0;
        }
        let (_, scale) = self.forward_scaled(seq);
        scale.iter().map(|&c| c.ln()).sum()
    }

    /// Negative log of the one-step predictive probability of the *last*
    /// symbol given the prefix: `-ln p(o_T | o_1..T-1)`. This is the
    /// anomaly score of the HMM detector.
    pub fn last_symbol_nll(&self, seq: &[usize]) -> f64 {
        assert!(!seq.is_empty(), "last_symbol_nll: empty sequence");
        let (_, scale) = self.forward_scaled(seq);
        -scale[seq.len() - 1].ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn cyclic_sequences(n: usize, len: usize) -> Vec<Vec<usize>> {
        (0..n).map(|start| (0..len).map(|i| (start + i) % 3).collect()).collect()
    }

    #[test]
    fn learns_a_cyclic_language() {
        let mut rng = SmallRng::seed_from_u64(3);
        let seqs = cyclic_sequences(6, 30);
        let hmm = Hmm::fit(&seqs, 3, &HmmConfig { states: 3, iters: 40 }, &mut rng);

        let cyclic: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let random: Vec<usize> = vec![0, 0, 2, 1, 1, 0, 2, 2, 1, 0, 0, 1, 2, 0, 2, 1, 0, 1, 1, 2];
        let ll_cyclic = hmm.log_likelihood(&cyclic) / cyclic.len() as f64;
        let ll_random = hmm.log_likelihood(&random) / random.len() as f64;
        assert!(ll_cyclic > ll_random + 0.3, "cyclic {} vs random {}", ll_cyclic, ll_random);
    }

    #[test]
    fn predictive_nll_flags_pattern_breaks() {
        let mut rng = SmallRng::seed_from_u64(9);
        let seqs = cyclic_sequences(6, 40);
        let hmm = Hmm::fit(&seqs, 4, &HmmConfig { states: 3, iters: 40 }, &mut rng);

        // Expected continuation 0,1,2,0,1 -> next is 2.
        let expected = vec![0usize, 1, 2, 0, 1, 2];
        // Broken continuation ends in the never-seen symbol 3.
        let broken = vec![0usize, 1, 2, 0, 1, 3];
        assert!(
            hmm.last_symbol_nll(&broken) > hmm.last_symbol_nll(&expected) + 1.0,
            "broken {} vs expected {}",
            hmm.last_symbol_nll(&broken),
            hmm.last_symbol_nll(&expected)
        );
    }

    #[test]
    fn likelihood_is_a_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let seqs = cyclic_sequences(4, 20);
        let hmm = Hmm::fit(&seqs, 3, &HmmConfig::default(), &mut rng);
        // Log-likelihood of any sequence is <= 0 (probabilities <= 1).
        assert!(hmm.log_likelihood(&[0, 1, 2, 0]) <= 1e-9);
        // Summing p over all single symbols gives ~1.
        let total: f64 = (0..3).map(|s| hmm.log_likelihood(&[s]).exp()).sum();
        assert!((total - 1.0).abs() < 1e-6, "sum over singletons {}", total);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let seqs = cyclic_sequences(4, 20);
        let a = Hmm::fit(&seqs, 3, &HmmConfig::default(), &mut SmallRng::seed_from_u64(1));
        let b = Hmm::fit(&seqs, 3, &HmmConfig::default(), &mut SmallRng::seed_from_u64(1));
        assert_eq!(a.log_likelihood(&[0, 1, 2]), b.log_likelihood(&[0, 1, 2]));
    }

    #[test]
    #[should_panic(expected = "symbol out of range")]
    fn out_of_range_symbols_are_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = Hmm::fit(&[vec![0, 5]], 3, &HmmConfig::default(), &mut rng);
    }
}
