//! TF-IDF vectorization of template-count windows.
//!
//! The autoencoder baseline (and the OC-SVM baseline) consume TF-IDF
//! features over time windows of syslog template counts, following the
//! paper's citation of Zhang et al. ("Automated IT system failure
//! prediction: A deep learning approach").

/// A fitted TF-IDF transformer over a fixed template vocabulary.
///
/// Term frequency is the raw count normalized by the window total;
/// inverse document frequency is the smoothed
/// `idf_t = ln((1 + N) / (1 + df_t)) + 1`, where a "document" is one
/// window.
#[derive(Debug, Clone)]
pub struct TfIdf {
    idf: Vec<f32>,
}

impl TfIdf {
    /// Learns IDF weights from training windows. Each window is a dense
    /// count vector over the vocabulary; all windows must share a length.
    pub fn fit(windows: &[Vec<f32>]) -> TfIdf {
        assert!(!windows.is_empty(), "TfIdf: no training windows");
        let dim = windows[0].len();
        assert!(windows.iter().all(|w| w.len() == dim), "TfIdf: ragged windows");
        let n = windows.len() as f32;
        let mut df = vec![0.0f32; dim];
        for w in windows {
            for (d, &count) in df.iter_mut().zip(w.iter()) {
                if count > 0.0 {
                    *d += 1.0;
                }
            }
        }
        let idf = df.iter().map(|&d| ((1.0 + n) / (1.0 + d)).ln() + 1.0).collect();
        TfIdf { idf }
    }

    /// Rebuilds a transformer from IDF weights captured by
    /// [`TfIdf::idf`] (checkpoint restore).
    pub fn from_idf(idf: Vec<f32>) -> TfIdf {
        assert!(!idf.is_empty(), "TfIdf::from_idf: empty weights");
        TfIdf { idf }
    }

    /// Vocabulary size.
    pub fn dim(&self) -> usize {
        self.idf.len()
    }

    /// Transforms one count window into L2-normalized TF-IDF features.
    pub fn transform(&self, window: &[f32]) -> Vec<f32> {
        assert_eq!(window.len(), self.dim(), "TfIdf::transform: width mismatch");
        let total: f32 = window.iter().sum();
        let mut out: Vec<f32> = if total > 0.0 {
            window.iter().zip(self.idf.iter()).map(|(&c, &idf)| (c / total) * idf).collect()
        } else {
            vec![0.0; self.dim()]
        };
        nfv_tensor::vecops::normalize_l2(&mut out);
        out
    }

    /// Transforms a batch of windows.
    pub fn transform_all(&self, windows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        windows.iter().map(|w| self.transform(w)).collect()
    }

    /// The learned IDF weights.
    pub fn idf(&self) -> &[f32] {
        &self.idf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rare_terms_get_higher_idf() {
        // Term 0 appears in every window, term 1 in only one.
        let windows = vec![vec![3.0, 0.0], vec![1.0, 0.0], vec![2.0, 5.0], vec![4.0, 0.0]];
        let tfidf = TfIdf::fit(&windows);
        assert!(tfidf.idf()[1] > tfidf.idf()[0]);
    }

    #[test]
    fn transform_is_l2_normalized() {
        let windows = vec![vec![1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0]];
        let tfidf = TfIdf::fit(&windows);
        let v = tfidf.transform(&[2.0, 2.0, 1.0]);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_window_maps_to_zero_vector() {
        let windows = vec![vec![1.0, 1.0]];
        let tfidf = TfIdf::fit(&windows);
        assert_eq!(tfidf.transform(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn absent_term_contributes_zero() {
        let windows = vec![vec![1.0, 1.0], vec![1.0, 0.0]];
        let tfidf = TfIdf::fit(&windows);
        let v = tfidf.transform(&[5.0, 0.0]);
        assert_eq!(v[1], 0.0);
        assert!(v[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let tfidf = TfIdf::fit(&[vec![1.0, 1.0]]);
        let _ = tfidf.transform(&[1.0]);
    }
}
