//! Classical machine-learning components of the reproduction.
//!
//! The paper combines its LSTM with several classical pieces:
//!
//! * [`kmeans`] — k-means++ clustering of vPEs by syslog distribution,
//!   with modularity-based selection of the group count K (§4.3);
//! * [`tfidf`] — TF-IDF features over template-count windows, the input
//!   representation of the autoencoder baseline (§5.2);
//! * [`ocsvm`] — the One-Class SVM baseline (Schölkopf ν-OC-SVM with an
//!   RBF kernel, solved by pairwise SMO);
//! * [`pca`] — principal component analysis, used for the console-log
//!   PCA detector of Xu et al. (an extension baseline from related work);
//! * [`metrics`] — precision / recall / F-measure and precision-recall
//!   curves, the paper's evaluation metrics (§5.2);
//! * [`sampling`] — minority-pattern over-sampling utilities (§4.2);
//! * [`hmm`] — a discrete HMM (Baum-Welch), substrate for the related-
//!   work HMM failure-prediction baseline.

pub mod hmm;
pub mod kmeans;
pub mod metrics;
pub mod ocsvm;
pub mod pca;
pub mod sampling;
pub mod tfidf;

pub use hmm::{Hmm, HmmConfig};
pub use kmeans::{KMeans, KMeansConfig};
pub use metrics::{ConfusionCounts, PrCurve, PrPoint};
pub use ocsvm::{OneClassSvm, OneClassSvmConfig};
pub use pca::Pca;
pub use tfidf::TfIdf;
