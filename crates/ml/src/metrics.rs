//! Anomaly-detection evaluation metrics: precision, recall, F-measure and
//! precision-recall curves — "the most widely used measure to evaluate
//! anomaly detection systems" per the paper (§4.2, citing Davis &
//! Goadrich).

/// Raw confusion counts for a binary detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Detected events that map to real anomalies.
    pub true_positives: usize,
    /// Detected events with no matching anomaly (false alarms).
    pub false_positives: usize,
    /// Real anomalies the detector missed.
    pub false_negatives: usize,
}

impl ConfusionCounts {
    /// Builds counts directly.
    pub fn new(true_positives: usize, false_positives: usize, false_negatives: usize) -> Self {
        ConfusionCounts { true_positives, false_positives, false_negatives }
    }

    /// Precision = TP / (TP + FP); 0 when nothing was detected.
    pub fn precision(&self) -> f32 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f32 / denom as f32
        }
    }

    /// Recall = TP / (TP + FN); 0 when there was nothing to detect.
    pub fn recall(&self) -> f32 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f32 / denom as f32
        }
    }

    /// F-measure: harmonic mean of precision and recall.
    pub fn f_measure(&self) -> f32 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// One point of a precision-recall curve, tagged with the threshold that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Detection threshold used.
    pub threshold: f32,
    /// Precision at this threshold.
    pub precision: f32,
    /// Recall at this threshold.
    pub recall: f32,
    /// F-measure at this threshold.
    pub f_measure: f32,
}

/// A precision-recall curve produced by sweeping a score threshold.
#[derive(Debug, Clone, Default)]
pub struct PrCurve {
    /// Points ordered by ascending threshold.
    pub points: Vec<PrPoint>,
}

impl PrCurve {
    /// Builds a PR curve by sweeping thresholds over scored samples.
    ///
    /// `scored` holds `(score, is_true_anomaly)` pairs where a *higher*
    /// score means *more anomalous*; a sample is flagged when
    /// `score >= threshold`. Thresholds are taken at every distinct score.
    pub fn from_scores(scored: &[(f32, bool)]) -> PrCurve {
        // Non-finite scores would break the sort and stall the tied-score
        // advance loop (NaN != NaN); they carry no ranking information, so
        // drop them up front.
        let scored: Vec<(f32, bool)> =
            scored.iter().filter(|(s, _)| s.is_finite()).copied().collect();
        let scored = scored.as_slice();
        let total_pos = scored.iter().filter(|(_, y)| *y).count();
        let mut order: Vec<usize> = (0..scored.len()).collect();
        order.sort_by(|&a, &b| scored[a].0.total_cmp(&scored[b].0));

        // Walk thresholds from the smallest score upward. At a threshold
        // equal to the i-th smallest score, samples [i..] are flagged.
        let mut points = Vec::new();
        let mut pos_below = 0usize; // true anomalies with score < threshold
        let mut i = 0usize;
        while i < order.len() {
            let threshold = scored[order[i]].0;
            let flagged = scored.len() - i;
            let tp = total_pos - pos_below;
            let fp = flagged - tp;
            let counts = ConfusionCounts::new(tp, fp, pos_below);
            points.push(PrPoint {
                threshold,
                precision: counts.precision(),
                recall: counts.recall(),
                f_measure: counts.f_measure(),
            });
            // Advance past all samples sharing this score.
            while i < order.len() && scored[order[i]].0 == threshold {
                if scored[order[i]].1 {
                    pos_below += 1;
                }
                i += 1;
            }
        }
        PrCurve { points }
    }

    /// The point with the highest F-measure (the paper's operating point).
    pub fn best_f_point(&self) -> Option<PrPoint> {
        self.points.iter().copied().max_by(|a, b| a.f_measure.total_cmp(&b.f_measure))
    }

    /// Area under the PR curve via trapezoidal integration over recall.
    pub fn auc(&self) -> f32 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let mut pts: Vec<(f32, f32)> =
            self.points.iter().map(|p| (p.recall, p.precision)).collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut area = 0.0f32;
        for w in pts.windows(2) {
            area += (w[1].0 - w[0].0) * 0.5 * (w[0].1 + w[1].1);
        }
        area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_basics() {
        let c = ConfusionCounts::new(8, 2, 2);
        assert!((c.precision() - 0.8).abs() < 1e-6);
        assert!((c.recall() - 0.8).abs() < 1e-6);
        assert!((c.f_measure() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn degenerate_counts_give_zero() {
        let c = ConfusionCounts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f_measure(), 0.0);
    }

    #[test]
    fn perfect_separation_reaches_p1_r1() {
        // All anomalies score 1.0, all normals 0.0.
        let scored = vec![(0.0, false), (0.0, false), (1.0, true), (1.0, true)];
        let curve = PrCurve::from_scores(&scored);
        let best = curve.best_f_point().unwrap();
        assert!((best.precision - 1.0).abs() < 1e-6);
        assert!((best.recall - 1.0).abs() < 1e-6);
        assert_eq!(best.threshold, 1.0);
    }

    #[test]
    fn recall_is_monotone_decreasing_in_threshold() {
        let scored: Vec<(f32, bool)> = (0..50).map(|i| (i as f32 * 0.02, i % 3 == 0)).collect();
        let curve = PrCurve::from_scores(&scored);
        for w in curve.points.windows(2) {
            assert!(w[0].threshold < w[1].threshold);
            assert!(w[0].recall >= w[1].recall);
        }
        // Lowest threshold flags everything: recall 1.
        assert!((curve.points[0].recall - 1.0).abs() < 1e-6);
    }

    #[test]
    fn auc_of_random_scores_is_near_base_rate() {
        // With scores independent of labels, precision ~= base rate at
        // every threshold, so AUC-PR ~= base rate.
        let scored: Vec<(f32, bool)> = (0..1000)
            .map(|i| {
                let score = (i * 37 % 1000) as f32 / 1000.0;
                let label = i % 5 == 0; // base rate 0.2
                (score, label)
            })
            .collect();
        let auc = PrCurve::from_scores(&scored).auc();
        assert!((auc - 0.2).abs() < 0.07, "auc = {}", auc);
    }

    #[test]
    fn nan_scores_are_dropped_not_hung() {
        let scored = vec![(0.5, true), (f32::NAN, false), (0.9, false)];
        let curve = PrCurve::from_scores(&scored);
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points.iter().all(|p| p.threshold.is_finite()));
    }

    #[test]
    fn tied_scores_are_collapsed_into_one_point() {
        let scored = vec![(0.5, true), (0.5, false), (0.5, true)];
        let curve = PrCurve::from_scores(&scored);
        assert_eq!(curve.points.len(), 1);
        let p = curve.points[0];
        assert!((p.precision - 2.0 / 3.0).abs() < 1e-6);
        assert!((p.recall - 1.0).abs() < 1e-6);
    }
}
