//! K-means clustering with k-means++ seeding and modularity-based
//! selection of the cluster count.
//!
//! The paper groups vPEs by syslog-distribution similarity and "chooses
//! the number of groups K based on the modularity" (§4.3). We implement
//! that as: run k-means for each candidate K, compute the Newman
//! modularity of the induced partition on the cosine-similarity graph of
//! the points, and keep the K with the highest modularity.

use nfv_tensor::vecops::{cosine_similarity, sq_dist};
use rand::Rng;

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Number of random restarts; the best-inertia run wins.
    pub restarts: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 4, max_iters: 100, restarts: 4 }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids, one `Vec<f32>` per cluster.
    pub centroids: Vec<Vec<f32>>,
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f32,
}

impl KMeans {
    /// Fits k-means to `points` (each an equal-length feature vector).
    ///
    /// # Panics
    /// Panics when `points` is empty, the vectors are ragged, or
    /// `cfg.k == 0` or exceeds the point count.
    pub fn fit(points: &[Vec<f32>], cfg: &KMeansConfig, rng: &mut impl Rng) -> KMeans {
        assert!(!points.is_empty(), "KMeans: no points");
        assert!(cfg.k > 0, "KMeans: k must be positive");
        assert!(cfg.k <= points.len(), "KMeans: k {} exceeds point count {}", cfg.k, points.len());
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "KMeans: ragged points");

        let mut best: Option<KMeans> = None;
        for _ in 0..cfg.restarts.max(1) {
            let run = Self::fit_once(points, cfg, rng);
            if best.as_ref().is_none_or(|b| run.inertia < b.inertia) {
                best = Some(run);
            }
        }
        best.expect("at least one restart")
    }

    fn fit_once(points: &[Vec<f32>], cfg: &KMeansConfig, rng: &mut impl Rng) -> KMeans {
        let mut centroids = kmeanspp_seed(points, cfg.k, rng);
        let mut assignments = vec![0usize; points.len()];
        let dim = points[0].len();

        for _ in 0..cfg.max_iters {
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let c = nearest_centroid(p, &centroids).0;
                if assignments[i] != c {
                    assignments[i] = c;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0.0f32; dim]; cfg.k];
            let mut counts = vec![0usize; cfg.k];
            for (p, &a) in points.iter().zip(assignments.iter()) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(p.iter()) {
                    *s += v;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(counts.iter())) {
                if count > 0 {
                    for (cv, &sv) in c.iter_mut().zip(sum.iter()) {
                        *cv = sv / count as f32;
                    }
                } else {
                    // Re-seed an empty cluster at a random point.
                    *c = points[rng.gen_range(0..points.len())].clone();
                }
            }
            if !changed {
                break;
            }
        }

        let inertia =
            points.iter().zip(assignments.iter()).map(|(p, &a)| sq_dist(p, &centroids[a])).sum();
        KMeans { centroids, assignments, inertia }
    }

    /// Assigns a new point to its nearest centroid.
    pub fn predict(&self, point: &[f32]) -> usize {
        nearest_centroid(point, &self.centroids).0
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

fn nearest_centroid(p: &[f32], centroids: &[Vec<f32>]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(p, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: each next seed is drawn with probability
/// proportional to its squared distance from the nearest existing seed.
fn kmeanspp_seed(points: &[Vec<f32>], k: usize, rng: &mut impl Rng) -> Vec<Vec<f32>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f32> = points.iter().map(|p| nearest_centroid(p, &centroids).1).collect();
        let total: f32 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing seeds; pick randomly.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            if target < d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

/// Newman modularity of a partition over a weighted similarity graph.
///
/// The graph has edge weight `max(cos_sim(i, j), 0)` between every pair of
/// distinct points. Modularity is
/// `Q = (1 / 2m) * sum_ij [A_ij - k_i k_j / 2m] * delta(c_i, c_j)`.
pub fn partition_modularity(points: &[Vec<f32>], assignments: &[usize]) -> f32 {
    assert_eq!(points.len(), assignments.len(), "modularity: length mismatch");
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let mut adj = vec![vec![0.0f32; n]; n];
    let mut degree = vec![0.0f32; n];
    let mut two_m = 0.0f32;
    for i in 0..n {
        for j in (i + 1)..n {
            let w = cosine_similarity(&points[i], &points[j]).max(0.0);
            adj[i][j] = w;
            adj[j][i] = w;
            degree[i] += w;
            degree[j] += w;
            two_m += 2.0 * w;
        }
    }
    if two_m <= 0.0 {
        return 0.0;
    }
    let mut q = 0.0f32;
    for i in 0..n {
        for j in 0..n {
            if assignments[i] == assignments[j] {
                q += adj[i][j] - degree[i] * degree[j] / two_m;
            }
        }
    }
    q / two_m
}

/// Runs k-means for each K in `k_range` and returns the fit whose
/// partition maximizes [`partition_modularity`] (the paper's criterion
/// for choosing the number of vPE groups).
pub fn fit_best_k(
    points: &[Vec<f32>],
    k_range: std::ops::RangeInclusive<usize>,
    rng: &mut impl Rng,
) -> (KMeans, f32) {
    let mut best: Option<(KMeans, f32)> = None;
    for k in k_range {
        if k > points.len() {
            break;
        }
        let cfg = KMeansConfig { k, ..Default::default() };
        let fit = KMeans::fit(points, &cfg, rng);
        let q = partition_modularity(points, &fit.assignments);
        if best.as_ref().is_none_or(|(_, bq)| q > *bq) {
            best = Some((fit, q));
        }
    }
    best.expect("non-empty k range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    /// Four well-separated blobs in 2-D.
    fn blobs(rng: &mut SmallRng) -> (Vec<Vec<f32>>, Vec<usize>) {
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)];
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (li, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..12 {
                points.push(vec![cx + rng.gen_range(-0.5..0.5), cy + rng.gen_range(-0.5..0.5)]);
                labels.push(li);
            }
        }
        (points, labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = SmallRng::seed_from_u64(5);
        let (points, labels) = blobs(&mut rng);
        let fit = KMeans::fit(&points, &KMeansConfig { k: 4, ..Default::default() }, &mut rng);
        // Every ground-truth blob must map to exactly one cluster.
        for li in 0..4 {
            let clusters: std::collections::HashSet<usize> = labels
                .iter()
                .zip(fit.assignments.iter())
                .filter(|(&l, _)| l == li)
                .map(|(_, &a)| a)
                .collect();
            assert_eq!(clusters.len(), 1, "blob {} split across clusters", li);
        }
        assert!(fit.inertia < 50.0, "inertia too high: {}", fit.inertia);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let mut rng = SmallRng::seed_from_u64(9);
        let (points, _) = blobs(&mut rng);
        let fit = KMeans::fit(&points, &KMeansConfig { k: 4, ..Default::default() }, &mut rng);
        for (p, &a) in points.iter().zip(fit.assignments.iter()) {
            assert_eq!(fit.predict(p), a);
        }
    }

    #[test]
    fn k_equals_one_gives_centroid_at_mean() {
        let points = vec![vec![0.0f32, 0.0], vec![2.0, 4.0]];
        let mut rng = SmallRng::seed_from_u64(1);
        let fit = KMeans::fit(&points, &KMeansConfig { k: 1, ..Default::default() }, &mut rng);
        assert_eq!(fit.centroids[0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds point count")]
    fn k_larger_than_points_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = KMeans::fit(&[vec![1.0]], &KMeansConfig { k: 2, ..Default::default() }, &mut rng);
    }

    #[test]
    fn modularity_prefers_true_partition() {
        // Two orthogonal direction groups: high intra-cos, zero inter-cos.
        let points = vec![
            vec![1.0f32, 0.0],
            vec![0.9, 0.05],
            vec![1.0, 0.1],
            vec![0.0, 1.0],
            vec![0.05, 0.9],
            vec![0.1, 1.0],
        ];
        let good = vec![0, 0, 0, 1, 1, 1];
        let bad = vec![0, 1, 0, 1, 0, 1];
        let q_good = partition_modularity(&points, &good);
        let q_bad = partition_modularity(&points, &bad);
        assert!(q_good > q_bad, "q_good {} <= q_bad {}", q_good, q_bad);
        assert!(q_good > 0.0);
    }

    #[test]
    fn fit_best_k_selects_four_for_four_direction_groups() {
        // Distribution-like points in 8-D with 4 distinct support patterns,
        // mimicking 4 latent vPE groups.
        let mut rng = SmallRng::seed_from_u64(13);
        let mut points = Vec::new();
        for g in 0..4usize {
            for _ in 0..10 {
                let mut p = vec![0.01f32; 8];
                p[2 * g] = 0.6 + rng.gen_range(-0.05..0.05);
                p[2 * g + 1] = 0.3 + rng.gen_range(-0.05..0.05);
                points.push(p);
            }
        }
        let (fit, q) = fit_best_k(&points, 2..=8, &mut rng);
        assert_eq!(fit.k(), 4, "expected K=4, got {} (Q={})", fit.k(), q);
    }

    #[test]
    fn modularity_of_single_cluster_is_zero_ish() {
        let points = vec![vec![1.0f32, 0.0], vec![0.9, 0.1], vec![1.0, 0.05]];
        let q = partition_modularity(&points, &[0, 0, 0]);
        // Putting everything in one cluster yields Q ~= 0 by definition.
        assert!(q.abs() < 0.3, "q = {}", q);
    }
}
