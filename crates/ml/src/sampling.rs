//! Sampling utilities for the minority-pattern over-sampling loop (§4.2).
//!
//! After each LSTM training round, the paper replays the training data,
//! finds the *normal* patterns the model still misclassifies as
//! anomalies, over-samples those, randomly samples the rest, and
//! continues training on the mixture.

use rand::Rng;

/// Builds an index multiset that over-samples `minority` indices
/// `boost`-fold and keeps a uniform random `majority_keep` fraction of
/// the remaining indices, then shuffles the result.
///
/// `total` is the size of the original dataset; `minority` lists the
/// misclassified (hard) indices.
pub fn oversample_indices(
    total: usize,
    minority: &[usize],
    boost: usize,
    majority_keep: f32,
    rng: &mut impl Rng,
) -> Vec<usize> {
    assert!(boost >= 1, "oversample_indices: boost must be >= 1");
    assert!(
        (0.0..=1.0).contains(&majority_keep),
        "oversample_indices: majority_keep must be in [0, 1]"
    );
    assert!(minority.iter().all(|&i| i < total), "oversample_indices: minority index out of range");
    let minority_set: std::collections::HashSet<usize> = minority.iter().copied().collect();
    let mut out = Vec::new();
    for &i in minority {
        for _ in 0..boost {
            out.push(i);
        }
    }
    for i in 0..total {
        if !minority_set.contains(&i) && rng.gen::<f32>() < majority_keep {
            out.push(i);
        }
    }
    shuffle(&mut out, rng);
    out
}

/// Fisher-Yates shuffle.
pub fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

/// Uniform reservoir sample of `k` items from an iterator of unknown
/// length. Returns fewer than `k` items when the stream is shorter.
pub fn reservoir_sample<T, I: Iterator<Item = T>>(iter: I, k: usize, rng: &mut impl Rng) -> Vec<T> {
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.enumerate() {
        if reservoir.len() < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn minority_indices_are_boosted() {
        let mut rng = SmallRng::seed_from_u64(1);
        let out = oversample_indices(100, &[3, 7], 5, 1.0, &mut rng);
        let c3 = out.iter().filter(|&&i| i == 3).count();
        let c7 = out.iter().filter(|&&i| i == 7).count();
        assert_eq!(c3, 5);
        assert_eq!(c7, 5);
        // All majority kept once.
        assert_eq!(out.len(), 98 + 10);
    }

    #[test]
    fn majority_keep_fraction_is_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let out = oversample_indices(10_000, &[], 1, 0.3, &mut rng);
        let frac = out.len() as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "kept {}", frac);
    }

    #[test]
    fn zero_keep_returns_only_minority() {
        let mut rng = SmallRng::seed_from_u64(3);
        let out = oversample_indices(50, &[1, 2], 3, 0.0, &mut rng);
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|&i| i == 1 || i == 2));
    }

    #[test]
    fn reservoir_sample_is_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut hits = [0usize; 10];
        for _ in 0..2000 {
            let s = reservoir_sample(0..10usize, 3, &mut rng);
            assert_eq!(s.len(), 3);
            for i in s {
                hits[i] += 1;
            }
        }
        // Each element should be picked ~600 times (2000 * 3/10).
        for (i, &h) in hits.iter().enumerate() {
            assert!((h as f32 - 600.0).abs() < 120.0, "element {}: {}", i, h);
        }
    }

    #[test]
    fn reservoir_sample_short_stream() {
        let mut rng = SmallRng::seed_from_u64(5);
        let s = reservoir_sample(0..2usize, 5, &mut rng);
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..100).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }
}
