//! Criterion microbenchmarks for the performance-critical components:
//! matrix kernels, LSTM training/inference steps, signature-tree
//! matching, k-means, OC-SVM fitting, and the fleet simulator itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nfv_detect::codec::LogCodec;
use nfv_ml::{KMeans, KMeansConfig, OneClassSvm, OneClassSvmConfig};
use nfv_nn::model::SeqBatch;
use nfv_nn::{Adam, SequenceModel, SequenceModelConfig};
use nfv_simnet::{FleetTrace, SimConfig, SimPreset};
use nfv_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    for n in [64usize, 128] {
        let a = Matrix::from_fn(n, n, |r, q| ((r * 31 + q * 7) % 13) as f32 * 0.1);
        let b = Matrix::from_fn(n, n, |r, q| ((r * 17 + q * 3) % 11) as f32 * 0.1);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_function(format!("matmul_{n}x{n}"), |bencher| {
            bencher.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn make_batch(
    rng: &mut SmallRng,
    batch: usize,
    window: usize,
    vocab: usize,
) -> (SeqBatch, Vec<usize>) {
    let ids = (0..batch).map(|_| (0..window).map(|_| rng.gen_range(0..vocab)).collect()).collect();
    let gaps = (0..batch).map(|_| (0..window).map(|_| rng.gen::<f32>()).collect()).collect();
    let targets = (0..batch).map(|_| rng.gen_range(0..vocab)).collect();
    (SeqBatch { ids, gaps }, targets)
}

fn bench_lstm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm");
    let cfg = SequenceModelConfig {
        vocab: 64,
        embed_dim: 16,
        hidden: 32,
        lstm_layers: 2,
        use_gap_feature: true,
    };
    let mut rng = SmallRng::seed_from_u64(1);
    let model = SequenceModel::new(cfg, &mut rng);
    let (batch, targets) = make_batch(&mut rng, 64, 10, 64);

    group.throughput(Throughput::Elements(64));
    group.bench_function("train_step_b64_t10", |bencher| {
        bencher.iter_batched(
            || {
                let m = SequenceModel::from_checkpoint(&model.to_checkpoint());
                let opt = Adam::new(1e-3, &m.param_shapes());
                (m, opt)
            },
            |(mut m, mut opt)| m.train_step(&batch, &targets, &mut opt),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("predict_b64_t10", |bencher| {
        bencher.iter(|| std::hint::black_box(model.predict_probs(&batch)));
    });
    group.finish();
}

fn bench_signature_tree(c: &mut Criterion) {
    let trace = FleetTrace::simulate({
        let mut s = SimConfig::preset(SimPreset::Fast, 3);
        s.months = 2;
        s.n_vpes = 4;
        s
    });
    let sample: Vec<_> = trace.messages(0).iter().take(4000).cloned().collect();
    let codec = LogCodec::train(&sample, 8);
    let lines: Vec<String> = trace.messages(1).iter().take(1000).map(|m| m.text.clone()).collect();

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(lines.len() as u64));
    group.bench_function("match_1000_messages", |bencher| {
        bencher.iter(|| {
            let mut acc = 0usize;
            for l in &lines {
                acc += codec.encode_text(l);
            }
            std::hint::black_box(acc)
        });
    });
    group.bench_function("train_codec_4000_messages", |bencher| {
        bencher.iter(|| std::hint::black_box(LogCodec::train(&sample, 8)));
    });
    group.finish();
}

fn bench_ml(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let points: Vec<Vec<f32>> = (0..200)
        .map(|i| {
            let cx = (i % 4) as f32 * 5.0;
            (0..16).map(|_| cx + rng.gen_range(-0.5..0.5)).collect()
        })
        .collect();

    let mut group = c.benchmark_group("ml");
    group.bench_function("kmeans_200x16_k4", |bencher| {
        bencher.iter_batched(
            || SmallRng::seed_from_u64(9),
            |mut r| KMeans::fit(&points, &KMeansConfig { k: 4, ..Default::default() }, &mut r),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("ocsvm_fit_200x16", |bencher| {
        bencher.iter_batched(
            || SmallRng::seed_from_u64(11),
            |mut r| OneClassSvm::fit(&points, &OneClassSvmConfig::default(), &mut r),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet");
    group.sample_size(10);
    group.bench_function("simulate_fast_preset", |bencher| {
        bencher.iter(|| {
            let mut cfg = SimConfig::preset(SimPreset::Fast, 5);
            cfg.months = 2;
            cfg.n_vpes = 4;
            std::hint::black_box(FleetTrace::simulate(cfg).total_messages())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_lstm,
    bench_signature_tree,
    bench_ml,
    bench_simulator
);
criterion_main!(benches);
