//! Fleet-scale scoring benchmark: a synthetic 10,000-vPE month scored
//! within a fixed memory budget, with the batched cross-vPE path gated
//! bit-identical against the one-vPE-at-a-time reference.
//!
//! The fleet is synthesized on demand ([`MegaFleet`]) so raw text never
//! accumulates: each vPE's log is rendered, encoded against the single
//! shared codec table, trimmed to a scoring-context tail of month 0
//! plus month 1, and dropped. What stays resident is O(groups) models
//! plus compact per-vPE streams — the ownership model this benchmark
//! exists to validate at scale.
//!
//! Exit is non-zero when either gate fails:
//! * every vPE's scored events must match the per-vPE reference path
//!   bitwise (times equal, scores equal as `f32` bit patterns);
//! * peak RSS (`VmHWM`) must stay within the budget.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fleet10k \
//!     [-- --fast --vpes N --seed N --json PATH --rss-budget-mib=N --threads=N]
//! ```
//!
//! Defaults: 10,000 vPEs (512 with `--fast`), budget 1024 MiB (512 MiB
//! under 4096 vPEs). Results land in `results/BENCH_fleet10k.json`
//! unless `--json` overrides the path.

use nfv_bench::BenchArgs;
use nfv_detect::codec::LogCodec;
use nfv_detect::detector::AnomalyDetector;
use nfv_detect::group_store::GroupModelStore;
use nfv_detect::grouping::Grouping;
use nfv_detect::lstm_detector::{LstmDetector, LstmDetectorConfig};
use nfv_simnet::{MegaFleet, SimConfig};
use nfv_syslog::time::month_start;
use nfv_syslog::LogStream;
use std::time::Instant;

/// Peak resident set size of this process in MiB, from `VmHWM` in
/// `/proc/self/status`. `None` off Linux (the gate is then skipped).
fn vm_hwm_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Per-group trainer vPEs: the first few members carry the pooled
/// month-0 training data so training cost stays O(groups), not O(vPEs).
const TRAINERS_PER_GROUP: usize = 4;
/// vPEs sampled (evenly across the fleet) to mine the shared codec.
const CODEC_SAMPLE_VPES: usize = 32;

fn main() {
    let mut rss_budget_mib: Option<f64> = None;
    let mut threads: usize = 4;
    let args = BenchArgs::parse_with(|flag| {
        if let Some(v) = flag.strip_prefix("--rss-budget-mib=") {
            rss_budget_mib = v.parse().ok();
            rss_budget_mib.is_some()
        } else if let Some(v) = flag.strip_prefix("--threads=") {
            threads = v.parse().unwrap_or(threads);
            true
        } else {
            false
        }
    });
    let n_vpes = args.vpes.unwrap_or(if args.fast { 512 } else { 10_000 });
    let budget_mib = rss_budget_mib.unwrap_or(if n_vpes >= 4096 { 1024.0 } else { 512.0 });
    let window = 6usize;

    let t_all = Instant::now();
    let fleet = MegaFleet::new(SimConfig::mega(n_vpes, 2, args.seed));
    let (m1, m2) = (month_start(1), month_start(2));

    // ---- Shared codec: mined from a thin sample of the fleet. ----
    let stride = (n_vpes / CODEC_SAMPLE_VPES).max(1);
    let mut sample = Vec::new();
    for v in (0..n_vpes).step_by(stride) {
        sample.extend(fleet.synthesize(v).into_iter().filter(|m| m.timestamp < m1));
    }
    let codec = LogCodec::train(&sample, 32);
    let vocab = codec.vocab_size();
    drop(sample);
    eprintln!("codec: {} templates from {} sampled vPEs", vocab, n_vpes.div_ceil(stride));

    // ---- Synthesize, encode, trim: one vPE resident at a time. ----
    // Grouping comes from the simulator's latent roles — at this scale
    // the benchmark measures scoring, not cluster recovery (which
    // fig3/ablation already evaluate at paper scale).
    let grouping = Grouping::from_assignment(fleet.topology.vpes.iter().map(|v| v.group).collect());
    let members = grouping.members();
    let trainers: Vec<Vec<usize>> =
        members.iter().map(|m| m.iter().copied().take(TRAINERS_PER_GROUP).collect()).collect();

    let t_encode = Instant::now();
    let mut streams: Vec<LogStream> = Vec::with_capacity(n_vpes);
    let mut pools: Vec<Vec<LogStream>> = vec![Vec::new(); grouping.k];
    let mut total_messages = 0usize;
    let mut retained_records = 0usize;
    for v in 0..n_vpes {
        let msgs = fleet.synthesize(v);
        total_messages += msgs.len();
        let mut stream = codec.encode_stream(&msgs);
        drop(msgs);
        let pre = stream.records().partition_point(|r| r.time < m1);
        let g = grouping.group_of(v);
        if trainers[g].contains(&v) {
            pools[g].push(LogStream::from_records(stream.records()[..pre].to_vec()));
        }
        // Keep month 1 plus a window+1 scoring-context tail of month 0
        // (the same margin the pipeline's history trimming uses).
        stream.drop_front(pre.saturating_sub(window + 1));
        retained_records += stream.len();
        streams.push(stream);
    }
    let encode_secs = t_encode.elapsed().as_secs_f64();
    eprintln!(
        "encoded {} messages -> {} retained records across {} vPEs in {:.1}s",
        total_messages, retained_records, n_vpes, encode_secs
    );

    // ---- One model per group, trained on pooled month-0 data. ----
    let t_train = Instant::now();
    let detectors: Vec<Box<dyn AnomalyDetector>> = pools
        .iter()
        .enumerate()
        .map(|(g, pool)| {
            let mut det = LstmDetector::new(LstmDetectorConfig {
                vocab,
                window,
                embed_dim: 8,
                hidden: 16,
                epochs: if args.fast { 1 } else { 2 },
                max_train_windows: 4_000,
                threads,
                seed: args.seed + 100 + g as u64,
                ..Default::default()
            });
            let refs: Vec<&LogStream> = pool.iter().collect();
            det.fit(&refs);
            Box::new(det) as Box<dyn AnomalyDetector>
        })
        .collect();
    let train_secs = t_train.elapsed().as_secs_f64();
    drop(pools);
    let store = GroupModelStore::new(grouping, detectors);

    // ---- Batched cross-vPE scoring (the refactored path). ----
    let t_batched = Instant::now();
    let batched = store.score_fleet(&streams, m1, m2, threads);
    let batched_secs = t_batched.elapsed().as_secs_f64();
    let events: usize = batched.iter().map(|e| e.len()).sum();
    eprintln!("batched: {} events in {:.2}s", events, batched_secs);

    // ---- Per-vPE reference (the pre-refactor path) + bitwise gate. ----
    let t_ref = Instant::now();
    let mut mismatches = 0usize;
    for (v, got) in batched.iter().enumerate() {
        let want = store.detector_for(v).score(&streams[v], m1, m2);
        if got.len() != want.len()
            || got
                .iter()
                .zip(&want)
                .any(|(a, b)| a.time != b.time || a.score.to_bits() != b.score.to_bits())
        {
            mismatches += 1;
        }
    }
    let per_vpe_secs = t_ref.elapsed().as_secs_f64();
    eprintln!("per-vPE reference: {:.2}s, {} mismatching vPEs", per_vpe_secs, mismatches);

    let rss_mib = vm_hwm_mib();
    let total_secs = t_all.elapsed().as_secs_f64();
    let speedup = per_vpe_secs / batched_secs.max(1e-9);

    println!("vpes\tgroups\tvocab\tevents\tbatched_s\tper_vpe_s\tspeedup\trss_mib");
    println!(
        "{}\t{}\t{}\t{}\t{:.2}\t{:.2}\t{:.2}x\t{}",
        n_vpes,
        store.k(),
        vocab,
        events,
        batched_secs,
        per_vpe_secs,
        speedup,
        rss_mib.map_or("n/a".into(), |m| format!("{:.0}", m)),
    );

    let value = serde_json::json!({
        "n_vpes": n_vpes,
        "months_scored": 1,
        "groups": store.k(),
        "vocab": vocab,
        "total_messages": total_messages,
        "retained_records": retained_records,
        "events_scored": events,
        "threads": threads,
        "host_cores": std::thread::available_parallelism().map_or(1, usize::from),
        "encode_secs": encode_secs,
        "train_secs": train_secs,
        "batched_secs": batched_secs,
        "per_vpe_secs": per_vpe_secs,
        "speedup_vs_per_vpe": speedup,
        "total_secs": total_secs,
        "bit_identical": mismatches == 0,
        "rss_hwm_mib": rss_mib,
        "rss_budget_mib": budget_mib,
        "seed": args.seed,
        "fast": args.fast,
    });
    let path = args.json.clone().unwrap_or_else(|| "results/BENCH_fleet10k.json".into());
    std::fs::create_dir_all(std::path::Path::new(&path).parent().unwrap_or(".".as_ref())).ok();
    std::fs::write(&path, serde_json::to_string_pretty(&value).expect("serializable"))
        .unwrap_or_else(|e| eprintln!("failed to write {}: {}", path, e));
    eprintln!("wrote {}", path);

    let mut failed = false;
    if mismatches > 0 {
        eprintln!("FAIL: batched scoring diverged from the per-vPE path on {} vPEs", mismatches);
        failed = true;
    }
    if let Some(m) = rss_mib {
        if m > budget_mib {
            eprintln!("FAIL: peak RSS {:.0} MiB exceeds budget {:.0} MiB", m, budget_mib);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
