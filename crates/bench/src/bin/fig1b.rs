//! Figure 1(b): CDF of non-duplicated ticket inter-arrival time per vPE.
//!
//! Paper calibration targets: no two non-duplicated tickets closer than
//! 40 minutes; 80% of consecutive tickets more than 10 hours apart; 25%
//! more than 1000 hours apart.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fig1b [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_simnet::tickets::generate_tickets;
use nfv_simnet::TicketCause;
use nfv_syslog::time::HOUR;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.sim_config();
    let tickets = generate_tickets(&cfg);

    // Per-vPE inter-arrival of non-duplicated fault tickets, in hours.
    // Maintenance is excluded: it is pre-scheduled (predictable by
    // construction) and its weekly-to-monthly periodicity would cap the
    // observable gap distribution.
    let mut gaps_h: Vec<f32> = Vec::new();
    for vpe in 0..cfg.n_vpes {
        let mut times: Vec<u64> = tickets
            .iter()
            .filter(|t| {
                t.vpe == vpe
                    && t.cause != TicketCause::Duplicate
                    && t.cause != TicketCause::Maintenance
            })
            .map(|t| t.report_time)
            .collect();
        times.sort_unstable();
        for w in times.windows(2) {
            gaps_h.push((w[1] - w[0]) as f32 / HOUR as f32);
        }
    }

    println!("hours\tcdf");
    // Log-spaced evaluation points from 0.1 h to 10000 h, like the
    // paper's log-x axis.
    let points: Vec<f32> = (0..=50).map(|i| 0.1f32 * 10f32.powf(i as f32 * 0.1)).collect();
    let cdf = nfv_tensor::stats::ecdf_at(&gaps_h, &points);
    for (p, c) in points.iter().zip(cdf.iter()) {
        println!("{:.2}\t{:.3}", p, c);
    }

    let over = |h: f32| gaps_h.iter().filter(|&&g| g > h).count() as f64 / gaps_h.len() as f64;
    println!("\n# {} inter-arrival samples", gaps_h.len());
    println!(
        "# min gap: {:.2} h (paper: > 40 min)",
        gaps_h.iter().cloned().fold(f32::MAX, f32::min)
    );
    println!("# P(gap > 10 h)   = {:.2} (paper: 0.80)", over(10.0));
    println!("# P(gap > 1000 h) = {:.2} (paper: 0.25)", over(1000.0));

    args.maybe_write_json(&serde_json::json!({
        "points_hours": points,
        "cdf": cdf,
        "p_over_10h": over(10.0),
        "p_over_1000h": over(1000.0),
    }));
}
