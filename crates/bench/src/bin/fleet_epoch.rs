//! `fleet_epoch` benchmark: one training epoch plus one month of fleet
//! scoring at several thread counts, exercising the deterministic
//! data-parallel paths end to end — the sharded trainer inside
//! [`LstmDetector`] and the per-vPE scoring fan-out the pipeline uses.
//!
//! Every thread count must produce bit-identical scores (the shard
//! layout and chunk boundaries are fixed; threads are pure scheduling),
//! so the benchmark doubles as a determinism gate: it exits non-zero if
//! any run diverges from the single-threaded one. The `--min-speedup`
//! gate is only enforced when the machine actually has at least as many
//! cores as the largest requested thread count — on a smaller box the
//! wall-clock claim is unverifiable and the gate is skipped with a
//! warning (the determinism check still runs).
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fleet_epoch -- \
//!     [--fast] [--seed N] [--json PATH] [--threads 1,2,4] [--min-speedup X]
//! ```

use nfv_detect::par::par_blocks;
use nfv_detect::{AnomalyDetector, LstmDetector, LstmDetectorConfig, ScoredEvent};
use nfv_syslog::{LogRecord, LogStream};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;
use std::time::Instant;

struct Args {
    fast: bool,
    seed: u64,
    json: Option<String>,
    threads: Vec<usize>,
    min_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut out =
        Args { fast: false, seed: 42, json: None, threads: vec![1, 2, 4], min_speedup: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => out.fast = true,
            "--seed" => {
                out.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    usage("--seed needs an integer");
                })
            }
            "--json" => {
                out.json = Some(args.next().unwrap_or_else(|| usage("--json needs a path")))
            }
            "--threads" => {
                let list = args.next().unwrap_or_else(|| usage("--threads needs a list"));
                out.threads = list
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&t| t >= 1)
                            .unwrap_or_else(|| usage("--threads wants positive integers"))
                    })
                    .collect();
            }
            "--min-speedup" => {
                out.min_speedup =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        usage("--min-speedup needs a number");
                    }))
            }
            other => usage(&format!("unknown flag {:?}", other)),
        }
    }
    // The serial run anchors both the determinism check and the speedup
    // baseline, so it is always measured first.
    if !out.threads.contains(&1) {
        out.threads.insert(0, 1);
    }
    out.threads.sort_unstable();
    out.threads.dedup();
    out
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {}", msg);
    eprintln!(
        "usage: fleet_epoch [--fast] [--seed N] [--json PATH] \
         [--threads 1,2,4] [--min-speedup X]"
    );
    std::process::exit(2)
}

/// Synthetic per-vPE template stream: a repeating multi-template cycle
/// with seeded jitter, enough structure for the LSTM to have a real
/// gradient signal without simulating a whole fleet.
fn synth_stream(vpe: usize, events: usize, vocab: usize, seed: u64) -> LogStream {
    let mut rng = SmallRng::seed_from_u64(seed ^ ((vpe as u64) << 24));
    let mut records = Vec::with_capacity(events);
    let mut time = 0u64;
    for i in 0..events {
        time += rng.gen_range(5..40);
        let template = if rng.gen::<f32>() < 0.2 {
            rng.gen_range(1..vocab)
        } else {
            1 + (i + vpe) % (vocab - 1)
        };
        records.push(LogRecord { time, template });
    }
    LogStream::from_records(records)
}

struct RunResult {
    threads: usize,
    train_ms: f64,
    score_ms: f64,
    scores: Vec<Vec<ScoredEvent>>,
}

fn run_once(streams: &[LogStream], cfg: &LstmDetectorConfig, threads: usize) -> RunResult {
    // One knob, just like the pipeline: the run's thread count also
    // drives the GEMM row-panel fan-out (bit-identical to serial).
    nfv_tensor::gemm::set_threads(threads);
    let mut cfg = cfg.clone();
    cfg.threads = threads;
    let mut det = LstmDetector::new(cfg);
    let refs: Vec<&LogStream> = streams.iter().collect();

    let t0 = Instant::now();
    det.fit(&refs);
    let train_ms = t0.elapsed().as_secs_f64() * 1e3;

    // One month of fleet scoring, fanned out per vPE exactly as the
    // pipeline does it.
    let vpe_ids: Vec<usize> = (0..streams.len()).collect();
    let t1 = Instant::now();
    let scores = par_blocks(&vpe_ids, threads, |_, block| {
        block.iter().map(|&v| det.score(&streams[v], 0, u64::MAX)).collect::<Vec<_>>()
    });
    let score_ms = t1.elapsed().as_secs_f64() * 1e3;

    RunResult { threads, train_ms, score_ms, scores }
}

fn main() {
    let args = parse_args();
    let (n_vpes, events, vocab) = if args.fast { (4, 2_000, 24) } else { (8, 8_000, 32) };
    let cfg = LstmDetectorConfig {
        vocab,
        epochs: 1,
        oversample_rounds: 0,
        max_train_windows: if args.fast { 4_000 } else { 20_000 },
        seed: args.seed,
        ..Default::default()
    };
    let streams: Vec<LogStream> =
        (0..n_vpes).map(|v| synth_stream(v, events, vocab, args.seed)).collect();
    let total_events: usize = streams.iter().map(|s| s.len()).sum();
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    println!(
        "config\tvpes {} events {} vocab {} cores {} threads {:?}",
        n_vpes, total_events, vocab, cores, args.threads
    );

    let runs: Vec<RunResult> = args.threads.iter().map(|&t| run_once(&streams, &cfg, t)).collect();

    let baseline = &runs[0];
    assert_eq!(baseline.threads, 1, "the serial run anchors the comparison");
    let base_total = baseline.train_ms + baseline.score_ms;

    let mut bit_identical = true;
    for run in &runs[1..] {
        if run.scores != baseline.scores {
            bit_identical = false;
            eprintln!("FAIL: threads={} scores diverged from the serial run", run.threads);
        }
    }

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>9}",
        "threads", "train_ms", "score_ms", "total_ms", "speedup"
    );
    for run in &runs {
        let total = run.train_ms + run.score_ms;
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x",
            run.threads,
            run.train_ms,
            run.score_ms,
            total,
            base_total / total
        );
    }
    println!("bit_identical\t{}", bit_identical);

    if let Some(path) = &args.json {
        let value = serde_json::json!({
            "bench": "fleet_epoch",
            "config": {
                "n_vpes": n_vpes,
                "events": total_events,
                "vocab": vocab,
                "epochs": cfg.epochs,
                "batch_size": cfg.batch_size,
                "max_train_windows": cfg.max_train_windows,
                "seed": args.seed,
                "fast": args.fast,
            },
            "cores": cores,
            "bit_identical": bit_identical,
            "runs": runs.iter().map(|r| serde_json::json!({
                "threads": r.threads,
                "train_ms": r.train_ms,
                "score_ms": r.score_ms,
                "total_ms": r.train_ms + r.score_ms,
                "speedup": base_total / (r.train_ms + r.score_ms),
            })).collect::<Vec<_>>(),
        });
        std::fs::write(path, serde_json::to_string_pretty(&value).expect("serializable"))
            .unwrap_or_else(|e| eprintln!("failed to write {}: {}", path, e));
        eprintln!("wrote {}", path);
    }

    if !bit_identical {
        std::process::exit(1);
    }
    if let Some(min) = args.min_speedup {
        let max_threads = *args.threads.last().expect("non-empty");
        if cores < max_threads {
            eprintln!(
                "note: skipping --min-speedup gate: {} cores < {} requested threads \
                 (determinism was still verified)",
                cores, max_threads
            );
        } else {
            let best = runs
                .iter()
                .map(|r| base_total / (r.train_ms + r.score_ms))
                .fold(f64::MIN, f64::max);
            if best < min {
                eprintln!("FAIL: best speedup {:.2}x below required {:.2}x", best, min);
                std::process::exit(1);
            }
        }
    }
}
