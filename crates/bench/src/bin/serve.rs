//! `serve` benchmark: sustained single-core throughput of the streaming
//! serving runtime — raw syslog line in, LSTM-scored window out.
//!
//! One thread plays both producer and scorer: lines are offered to the
//! bounded ring in batches and swept through the [`ServeCore`]'s batched
//! scoring path ([`OnlineMonitor`] → `observe_batch` → chunked LSTM
//! GEMMs). The monitor is trained on the same clean cadence first
//! (excluded from the timed region), so the measured loop is exactly
//! what `nfvpredict serve` runs in steady state on one core
//! (`LstmDetectorConfig.threads = 1`).
//!
//! The bench asserts the runtime's robustness invariants while timing
//! it: capacity and budget are sized so a keeping-up scorer drops
//! nothing, occupancy must stay within the fixed ring bound, and
//! accounting must be exact. `--min-rate` turns the throughput into a
//! regression gate.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin serve -- \
//!     [--fast] [--seed N] [--json PATH] [--min-rate LINES_PER_SEC]
//! ```

use nfv_detect::serve::{ServeConfig, ServeCore, ServeState};
use nfv_detect::supervisor::{FleetMonitor, FleetMonitorConfig};
use nfv_detect::{
    AnomalyDetector, LogCodec, LstmDetector, LstmDetectorConfig, MappingConfig, ModelBundle,
    OnlineMonitor,
};
use nfv_simnet::{LoadGen, LoadSpec};
use std::time::Instant;

struct Args {
    fast: bool,
    seed: u64,
    json: Option<String>,
    min_rate: Option<f64>,
}

fn parse_args() -> Args {
    let mut out = Args { fast: false, seed: 42, json: None, min_rate: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => out.fast = true,
            "--seed" => {
                out.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"))
            }
            "--json" => {
                out.json = Some(args.next().unwrap_or_else(|| usage("--json needs a path")))
            }
            "--min-rate" => {
                out.min_rate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--min-rate needs a number")),
                )
            }
            other => usage(&format!("unknown flag {:?}", other)),
        }
    }
    out
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {}", msg);
    eprintln!("usage: serve [--fast] [--seed N] [--json PATH] [--min-rate LINES_PER_SEC]");
    std::process::exit(2)
}

/// Trains the same tiny monitor the serve CLI self-trains: cyclic
/// heartbeat chatter, window-4 LSTM, threshold above every training
/// score.
fn trained_monitor(gen: &LoadGen) -> OnlineMonitor {
    let train = gen.training_messages(24);
    let codec = LogCodec::train(&train, 4);
    let mut det = LstmDetector::new(LstmDetectorConfig {
        vocab: codec.vocab_size(),
        window: 4,
        embed_dim: 6,
        hidden: 10,
        epochs: 3,
        max_train_windows: 2000,
        threads: 1,
        ..Default::default()
    });
    let stream = codec.encode_stream(&train);
    det.fit(&[&stream]);
    let max_score = det.score(&stream, 0, u64::MAX).iter().map(|e| e.score).fold(0.0f32, f32::max);
    let bundle = ModelBundle::pack(&codec, &det, max_score * 1.05, &MappingConfig::default());
    bundle.try_unpack_shared().expect("freshly packed bundle").monitor()
}

fn main() {
    let args = parse_args();
    let total_lines: u64 = if args.fast { 200_000 } else { 1_000_000 };
    // Offer/sweep granularity; budget comfortably above it so a
    // keeping-up scorer never drops.
    const BATCH: u64 = 512;
    let spec = LoadSpec { feeds: 1, base_rate: BATCH, seed: args.seed, ..Default::default() };

    eprintln!("training the monitor (untimed)...");
    let monitor = trained_monitor(&LoadGen::new(spec.clone()));
    let fleet = FleetMonitor::new(
        vec![monitor],
        FleetMonitorConfig { reorder_window: 0, ..Default::default() },
    );
    let cfg = ServeConfig { capacity: 8192, tick_budget: 2048, ..Default::default() };
    let capacity = cfg.capacity;
    let mut core = ServeCore::new(fleet, cfg);

    // Pre-render the input so line generation is excluded from the
    // timed region (one "tick" of the generator = one BATCH of lines).
    eprintln!("rendering {} input lines (untimed)...", total_lines);
    let mut gen = LoadGen::new(spec);
    let ticks = total_lines / BATCH;
    let batches: Vec<Vec<String>> = (0..ticks).map(|t| gen.tick_lines(t, 0)).collect();

    eprintln!("streaming {} lines through the serving runtime...", total_lines);
    let t0 = Instant::now();
    for batch in &batches {
        for line in batch {
            core.offer(0, line).expect("feed 0 exists and its port is held");
        }
        core.sweep();
    }
    core.finish();
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = core.stats();
    let f = stats.feeds[0];
    let rate = f.delivered as f64 / elapsed;
    let p50_us = stats.latency.quantile_ns(0.50) as f64 / 1e3;
    let p99_us = stats.latency.quantile_ns(0.99) as f64 / 1e3;

    // Robustness invariants, asserted on the measured run itself.
    assert_eq!(
        f.lines_in,
        f.delivered + f.dropped_overflow + f.dropped_shed,
        "accounting must be exact"
    );
    assert!(f.peak_occupancy <= capacity, "ring must stay within its fixed bound");
    assert_eq!(stats.state, ServeState::Healthy, "nominal load must finish healthy");

    println!("lines\t{}", f.lines_in);
    println!("scored\t{}", f.delivered);
    println!("dropped\t{}", f.dropped_overflow + f.dropped_shed);
    println!("elapsed_s\t{:.3}", elapsed);
    println!("lines_per_sec\t{:.0}", rate);
    println!("latency_p50_us\t{:.0}", p50_us);
    println!("latency_p99_us\t{:.0}", p99_us);
    println!("peak_occupancy\t{} (capacity {})", f.peak_occupancy, capacity);

    if let Some(path) = &args.json {
        let value = serde_json::json!({
            "bench": "serve",
            "config": {
                "lines": total_lines,
                "batch": BATCH,
                "capacity": capacity,
                "tick_budget": 2048,
                "threads": 1,
                "seed": args.seed,
                "fast": args.fast,
            },
            "lines_in": f.lines_in,
            "scored": f.delivered,
            "dropped": f.dropped_overflow + f.dropped_shed,
            "elapsed_s": elapsed,
            "lines_per_sec": rate,
            "latency_p50_us": p50_us,
            "latency_p99_us": p99_us,
            "peak_occupancy": f.peak_occupancy,
            "state": format!("{:?}", stats.state),
        });
        std::fs::write(path, serde_json::to_string_pretty(&value).expect("serializable"))
            .unwrap_or_else(|e| eprintln!("failed to write {}: {}", path, e));
        eprintln!("wrote {}", path);
    }

    if let Some(min) = args.min_rate {
        if rate < min {
            eprintln!("FAIL: {:.0} lines/s below required {:.0} lines/s", rate, min);
            std::process::exit(1);
        }
    }
}
