//! Figure 6: precision-recall comparison of LSTM vs Autoencoder vs
//! One-Class SVM (plus the PCA and HMM extension baselines), all with
//! the same customization and adaptation mechanisms.
//!
//! Paper findings: the deep approaches clearly beat the shallow OC-SVM;
//! LSTM edges out the Autoencoder (operating precision 0.82 vs 0.77) by
//! capturing sequential structure.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fig6 [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_detect::eval;
use nfv_detect::pipeline::{run_pipeline, DetectorKind};
use nfv_detect::report::format_prc;
use nfv_simnet::FleetTrace;

fn main() {
    let args = BenchArgs::parse();
    let trace = FleetTrace::simulate(args.sim_config());
    eprintln!("simulated {} messages, {} tickets", trace.total_messages(), trace.tickets.len());

    let kinds = [
        ("lstm", DetectorKind::Lstm),
        ("autoencoder", DetectorKind::Autoencoder),
        ("ocsvm", DetectorKind::Ocsvm),
        ("pca", DetectorKind::Pca),
        ("hmm", DetectorKind::Hmm),
    ];
    let mut json = serde_json::Map::new();
    let mut summary = Vec::new();
    for (name, kind) in kinds {
        let cfg = args.pipeline_config(kind);
        let run = run_pipeline(&trace, &cfg).unwrap();
        let curve = eval::sweep_prc(&run, &cfg.mapping, 40);
        println!("{}", format_prc(name, &curve));
        if let Some(best) = curve.best_f_point() {
            summary.push((name, best));
        }
        json.insert(
            name.to_string(),
            serde_json::json!(curve
                .points
                .iter()
                .map(|p| (p.threshold, p.precision, p.recall, p.f_measure))
                .collect::<Vec<_>>()),
        );
    }

    println!("# summary (operating points):");
    for (name, best) in &summary {
        println!(
            "#   {:<12} precision={:.2} recall={:.2} f={:.2}",
            name, best.precision, best.recall, best.f_measure
        );
    }
    args.maybe_write_json(&serde_json::Value::Object(json));
}
