//! Figure 7: F-measure over the 18-month window for three variants —
//! a single global model (baseline), per-group customized models
//! ("vPE cust"), and customized models with post-update transfer-learning
//! adaptation ("vPE cust + adapt").
//!
//! Paper findings: customization lifts the F-measure throughout; the
//! software update (late in the window) makes stale models surge in
//! false alarms (~14x) and crater in F; adaptation recovers within the
//! update month using one week of fresh data.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fig7 [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_detect::eval;
use nfv_detect::pipeline::{run_pipeline, DetectorKind, PipelineConfig};
use nfv_simnet::FleetTrace;

type ConfigTweak = Box<dyn Fn(&mut PipelineConfig)>;

fn main() {
    let mut args = BenchArgs::parse();
    if args.fast {
        // Fig 7 needs the update event; extend the fast run around it.
        eprintln!("note: --fast uses a 8-month window with an update at month 5");
    }
    let mut sim = args.sim_config();
    if args.fast {
        sim.months = 8;
        sim.update_month = Some(5);
    }
    let trace = FleetTrace::simulate(sim.clone());
    eprintln!(
        "simulated {} messages, {} tickets, update month {:?}",
        trace.total_messages(),
        trace.tickets.len(),
        sim.update_month
    );
    args.fast |= false;

    let variants: [(&str, ConfigTweak); 3] = [
        (
            "baseline",
            Box::new(|c: &mut PipelineConfig| {
                c.customize = false;
                c.adapt = false;
            }),
        ),
        (
            "vpe_cust",
            Box::new(|c: &mut PipelineConfig| {
                c.customize = true;
                c.adapt = false;
            }),
        ),
        (
            "vpe_cust_adapt",
            Box::new(|c: &mut PipelineConfig| {
                c.customize = true;
                c.adapt = true;
            }),
        ),
    ];

    let mut json = serde_json::Map::new();
    let mut tables: Vec<(String, Vec<eval::MonthlyMetric>)> = Vec::new();
    for (name, tweak) in &variants {
        let mut cfg = args.pipeline_config(DetectorKind::Lstm);
        tweak(&mut cfg);
        let run = run_pipeline(&trace, &cfg).unwrap();
        // Operating threshold chosen on the pre-update months only, then
        // held fixed across the timeline (an operator cannot retune on
        // the future).
        let pre_update_months = sim.update_month.unwrap_or(sim.months);
        let pre_run = nfv_detect::pipeline::PipelineRun {
            months: run.months.iter().filter(|m| m.month < pre_update_months).cloned().collect(),
            ..run.clone()
        };
        let curve = eval::sweep_prc(&pre_run, &cfg.mapping, 32);
        let threshold = curve.best_f_point().map(|p| p.threshold).unwrap_or(1.0);
        let metrics = eval::monthly_metrics(&run, &cfg.mapping, threshold);
        if !run.adaptations.is_empty() {
            eprintln!("{}: adaptations fired at {:?}", name, run.adaptations);
        }
        json.insert(
            name.to_string(),
            serde_json::json!(metrics
                .iter()
                .map(|m| (m.month, m.f_measure, m.precision, m.recall, m.false_alarms_per_day))
                .collect::<Vec<_>>()),
        );
        tables.push((name.to_string(), metrics));
    }

    // Print aligned monthly table.
    print!("month");
    for (name, _) in &tables {
        print!("\t{}_f\t{}_fa", name, name);
    }
    println!();
    let n_months = tables[0].1.len();
    for i in 0..n_months {
        print!("{}", tables[0].1[i].month);
        for (_, metrics) in &tables {
            print!("\t{:.3}\t{:.2}", metrics[i].f_measure, metrics[i].false_alarms_per_day);
        }
        println!();
    }

    // Update-month impact summary (the x14 false-alarm surge).
    if let Some(u) = sim.update_month {
        println!("\n# update impact (false alarms per day, before -> update month):");
        for (name, metrics) in &tables {
            let before: f32 = metrics
                .iter()
                .filter(|m| m.month < u && m.month + 3 >= u)
                .map(|m| m.false_alarms_per_day)
                .sum::<f32>()
                / 3.0;
            let at: f32 = metrics
                .iter()
                .filter(|m| m.month == u || m.month == u + 1)
                .map(|m| m.false_alarms_per_day)
                .fold(0.0, f32::max);
            let factor = if before > 0.0 { at / before } else { f32::NAN };
            println!("#   {:<16} {:.2} -> {:.2}  (x{:.1})", name, before, at, factor);
        }
    }

    args.maybe_write_json(&serde_json::Value::Object(json));
}
