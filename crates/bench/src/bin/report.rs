//! Aggregates every `results/BENCH_*.json` into one canonical report
//! and, given a baseline report, gates on performance regressions.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin report -- \
//!     [--dir results] [--out results/REPORT.json] \
//!     [--baseline results/BASELINE.json] [--max-regress 0.5] \
//!     [--repeats 1] [--noise-floor 0.0]
//! ```
//!
//! The report maps each benchmark's name (the `BENCH_<name>.json` stem)
//! to its parsed JSON payload, alongside a sorted list of the names
//! covered and a *machine calibration* number: the wall time of a fixed
//! serial GEMM workload, measured at aggregation time. Unparseable
//! files are reported and skipped, not fatal: a half-written benchmark
//! result should not hide every other number.
//!
//! ## Regression gating
//!
//! With `--baseline PATH` the current report is diffed against a
//! previously written report. For every benchmark present in both, a
//! fixed table of headline metrics is compared; the run fails (exit 1)
//! when any metric regresses by more than `--max-regress` (a fraction;
//! default 0.5, generous on purpose — shared CI runners are noisy).
//!
//! Two kinds of normalization keep the gate honest across machines:
//!
//! - **calibration** — wall-clock metrics (times, rates) are scaled by
//!   the ratio of the two reports' calibration times, so a slower
//!   runner is compared against what the baseline *would have* measured
//!   on it, not against the faster machine's absolute numbers;
//! - **config matching** — a metric is only compared when the
//!   benchmark's recorded config is identical in both reports (a
//!   `--fast` run is incomparable to a full run); mismatches are
//!   reported as skips, never failures.
//!
//! The gate is also *variance-aware*: with `--repeats N` the
//! calibration workload is measured N times and the relative spread
//! across repeats (a direct read of how noisy this runner is right now)
//! is added to `--max-regress`, so a jittery machine widens its own
//! tolerance instead of flaking. `--noise-floor F` sets a lower bound
//! on that measured noise for runners known to misbehave in ways a
//! short calibration cannot see.

use std::path::PathBuf;
use std::time::Instant;

use nfv_tensor::{gemm, Matrix};
use serde_json::Value;

/// How a gated metric is compared.
enum Kind {
    /// Wall-clock duration: lower is better, calibration-scaled.
    Time,
    /// Throughput: higher is better, calibration-scaled (inverse).
    Rate,
    /// Dimensionless ratio (e.g. a speedup): higher is better, not
    /// calibration-scaled — ratios transfer across machines as-is.
    RatioHi,
    /// Resource ceiling (e.g. peak RSS): lower is better, not scaled.
    Resource,
}

/// The headline metric table: benchmark name, dotted path into its
/// payload (array indices as bare numbers), comparison kind.
const GATES: &[(&str, &str, Kind)] = &[
    ("train_step", "trainer_ms_per_step", Kind::Time),
    ("fleet_epoch", "runs.0.total_ms", Kind::Time),
    ("serve", "lines_per_sec", Kind::Rate),
    ("fleet10k", "total_secs", Kind::Time),
    ("fleet10k", "rss_hwm_mib", Kind::Resource),
    ("gemm", "lstm_geomean_speedup", Kind::RatioHi),
    ("pool_overhead", "pool_us_per_batch", Kind::Time),
];

/// Keys that identify a comparable fleet10k run (it records its config
/// flat at the top level rather than under a `config` object).
const FLEET10K_CONFIG_KEYS: &[&str] =
    &["n_vpes", "seed", "fast", "threads", "groups", "rss_budget_mib"];

fn main() {
    let mut dir = PathBuf::from("results");
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut max_regress = 0.5f64;
    let mut repeats = 1usize;
    let mut noise_floor = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => {
                dir = PathBuf::from(args.next().unwrap_or_else(|| usage("--dir needs a path")))
            }
            "--out" => {
                out =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a path"))))
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--baseline needs a path")),
                ))
            }
            "--max-regress" => {
                max_regress = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &f64| f > 0.0)
                    .unwrap_or_else(|| usage("--max-regress needs a positive fraction"))
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage("--repeats needs a positive integer"))
            }
            "--noise-floor" => {
                noise_floor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &f64| f >= 0.0)
                    .unwrap_or_else(|| usage("--noise-floor needs a non-negative fraction"))
            }
            other => usage(&format!("unknown flag {:?}", other)),
        }
    }
    let out = out.unwrap_or_else(|| dir.join("REPORT.json"));

    let mut entries: Vec<(String, PathBuf)> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter_map(|p| {
                let stem = p.file_stem()?.to_str()?;
                let name = stem.strip_prefix("BENCH_")?;
                (p.extension()? == "json").then(|| (name.to_string(), p.clone()))
            })
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {}", dir.display(), e);
            std::process::exit(2);
        }
    };
    entries.sort();

    let mut benches = serde_json::Map::new();
    let mut skipped = Vec::new();
    for (name, path) in &entries {
        let parsed = std::fs::read_to_string(path).ok().and_then(|s| serde_json::from_str(&s).ok());
        match parsed {
            Some(v) => {
                benches.insert(name.clone(), v);
            }
            None => {
                eprintln!("skipping unparseable {}", path.display());
                skipped.push(name.clone());
            }
        }
    }
    if benches.is_empty() {
        eprintln!("error: no parseable BENCH_*.json under {}", dir.display());
        std::process::exit(1);
    }

    // Best-of-repeats is the machine yardstick; the spread across
    // repeats is the measured noise the gate widens its tolerance by.
    let cals: Vec<f64> = (0..repeats).map(|_| calibrate_ms()).collect();
    let cal_ms = cals.iter().copied().fold(f64::MAX, f64::min);
    let cal_max = cals.iter().copied().fold(0.0f64, f64::max);
    let measured_noise = if cal_ms > 0.0 { (cal_max - cal_ms) / cal_ms } else { 0.0 };
    let noise = measured_noise.max(noise_floor);
    let names: Vec<&String> = benches.keys().collect();
    println!(
        "aggregated {} benchmarks: {} (calibration {:.2} ms over {} repeat(s), noise {:.1}%)",
        names.len(),
        names.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", "),
        cal_ms,
        repeats,
        noise * 100.0
    );
    let report = serde_json::json!({
        "format": "nfv-bench-report",
        "version": 2,
        "calibration_gemm_ms": cal_ms,
        "calibration_repeats": repeats,
        "calibration_noise": measured_noise,
        "benchmarks": Value::Object(benches),
        "skipped": skipped,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&report).expect("serializable"))
        .unwrap_or_else(|e| {
            eprintln!("error: failed to write {}: {}", out.display(), e);
            std::process::exit(1);
        });
    println!("wrote {}", out.display());

    if let Some(base_path) = baseline {
        let base: Value = std::fs::read_to_string(&base_path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_else(|| {
                eprintln!("error: cannot parse baseline {}", base_path.display());
                std::process::exit(2);
            });
        if !gate(&report, &base, max_regress, noise) {
            std::process::exit(1);
        }
    }
}

/// Times a fixed serial GEMM workload — the machine-speed yardstick the
/// regression gate scales wall-clock metrics by. Serial (and min-of-5)
/// so the number depends on single-core speed, not on thread settings
/// or scheduler luck.
fn calibrate_ms() -> f64 {
    let a = Matrix::from_fn(128, 128, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.13 - 0.8);
    let b = Matrix::from_fn(128, 128, |r, c| ((r * 17 + c * 3) % 11) as f32 * 0.17 - 0.9);
    let mut out = Matrix::default();
    gemm::with_threads(1, || {
        let mut best = f64::MAX;
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..8 {
                a.matmul_into(&b, &mut out);
            }
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        std::hint::black_box(&out);
        best
    })
}

/// Looks up a dotted path (`runs.0.total_ms`) in a JSON value.
fn lookup<'v>(mut v: &'v Value, path: &str) -> Option<&'v Value> {
    for seg in path.split('.') {
        v = match seg.parse::<usize>() {
            Ok(i) => v.as_array()?.get(i)?,
            Err(_) => v.get(seg)?,
        };
    }
    Some(v)
}

/// The part of a benchmark payload that must match for its numbers to
/// be comparable: the `config` object when the bench records one, else
/// (fleet10k) a fixed set of top-level keys.
fn config_of(name: &str, payload: &Value) -> Value {
    if let Some(cfg) = payload.get("config") {
        return cfg.clone();
    }
    let mut m = serde_json::Map::new();
    if name == "fleet10k" {
        for key in FLEET10K_CONFIG_KEYS {
            if let Some(v) = payload.get(key) {
                m.insert(key.to_string(), v.clone());
            }
        }
    }
    Value::Object(m)
}

/// Diffs `report` against `base` over the metric table. Returns false
/// when any comparable metric regresses by more than `max_regress`
/// plus the runner's measured (or floored) calibration `noise`.
fn gate(report: &Value, base: &Value, max_regress: f64, noise: f64) -> bool {
    let cur_cal = report.get("calibration_gemm_ms").and_then(Value::as_f64);
    let base_cal = base.get("calibration_gemm_ms").and_then(Value::as_f64);
    // Scale > 1 means this machine is slower than the baseline's.
    let scale = match (cur_cal, base_cal) {
        (Some(c), Some(b)) if c > 0.0 && b > 0.0 => c / b,
        _ => {
            eprintln!("note: baseline has no calibration; comparing unscaled");
            1.0
        }
    };
    let threshold = max_regress + noise;
    println!(
        "gate: machine scale {:.2}x vs baseline, max regress {:.0}% + noise {:.1}% = {:.1}%",
        scale,
        max_regress * 100.0,
        noise * 100.0,
        threshold * 100.0
    );

    let (cur_b, base_b) = match (report.get("benchmarks"), base.get("benchmarks")) {
        (Some(c), Some(b)) => (c, b),
        _ => {
            eprintln!("error: baseline is not an nfv-bench report");
            return false;
        }
    };

    let mut failed = false;
    let mut compared = 0usize;
    for (name, path, kind) in GATES {
        let (cur_p, base_p) = match (cur_b.get(name), base_b.get(name)) {
            (Some(c), Some(b)) => (c, b),
            _ => continue, // bench not present on one side: nothing to gate
        };
        if config_of(name, cur_p) != config_of(name, base_p) {
            println!("gate: skip {}.{} (config differs from baseline)", name, path);
            continue;
        }
        let (cur, base_v) = match (
            lookup(cur_p, path).and_then(Value::as_f64),
            lookup(base_p, path).and_then(Value::as_f64),
        ) {
            (Some(c), Some(b)) if b > 0.0 => (c, b),
            _ => continue,
        };
        // `expected` is the baseline metric translated to this machine;
        // `regress` is the fractional shortfall against it (0 = parity,
        // negative = improvement).
        let (expected, regress) = match kind {
            Kind::Time => (base_v * scale, cur / (base_v * scale) - 1.0),
            Kind::Rate => (base_v / scale, (base_v / scale) / cur - 1.0),
            Kind::RatioHi => (base_v, base_v / cur - 1.0),
            Kind::Resource => (base_v, cur / base_v - 1.0),
        };
        compared += 1;
        let verdict = if regress > threshold { "FAIL" } else { "ok" };
        println!(
            "gate: {:>4} {}.{} = {:.3} vs expected {:.3} ({:+.1}%)",
            verdict,
            name,
            path,
            cur,
            expected,
            regress * 100.0
        );
        if regress > threshold {
            failed = true;
        }
    }
    if compared == 0 {
        println!("gate: no comparable metrics (all configs differ?) — passing vacuously");
    }
    if failed {
        eprintln!("FAIL: at least one metric regressed beyond the threshold");
    }
    !failed
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {}", msg);
    eprintln!(
        "usage: report [--dir DIR] [--out PATH] [--baseline PATH] [--max-regress FRACTION] \
         [--repeats N] [--noise-floor FRACTION]"
    );
    std::process::exit(2)
}
