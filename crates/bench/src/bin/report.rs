//! Aggregates every `results/BENCH_*.json` into one canonical report,
//! the first cut of a regression-gating surface: one file, one schema,
//! stable keys, so a later CI step can diff two reports instead of
//! globbing and parsing each benchmark's ad-hoc output.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin report [-- --dir results --out results/REPORT.json]
//! ```
//!
//! The report maps each benchmark's name (the `BENCH_<name>.json` stem)
//! to its parsed JSON payload, alongside a sorted list of the names
//! covered. Unparseable files are reported and skipped, not fatal: a
//! half-written benchmark result should not hide every other number.

use std::path::PathBuf;

fn main() {
    let mut dir = PathBuf::from("results");
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => {
                dir = PathBuf::from(args.next().unwrap_or_else(|| usage("--dir needs a path")))
            }
            "--out" => {
                out =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a path"))))
            }
            other => usage(&format!("unknown flag {:?}", other)),
        }
    }
    let out = out.unwrap_or_else(|| dir.join("REPORT.json"));

    let mut entries: Vec<(String, PathBuf)> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter_map(|p| {
                let stem = p.file_stem()?.to_str()?;
                let name = stem.strip_prefix("BENCH_")?;
                (p.extension()? == "json").then(|| (name.to_string(), p.clone()))
            })
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {}", dir.display(), e);
            std::process::exit(2);
        }
    };
    entries.sort();

    let mut benches = serde_json::Map::new();
    let mut skipped = Vec::new();
    for (name, path) in &entries {
        let parsed = std::fs::read_to_string(path).ok().and_then(|s| serde_json::from_str(&s).ok());
        match parsed {
            Some(v) => {
                benches.insert(name.clone(), v);
            }
            None => {
                eprintln!("skipping unparseable {}", path.display());
                skipped.push(name.clone());
            }
        }
    }
    if benches.is_empty() {
        eprintln!("error: no parseable BENCH_*.json under {}", dir.display());
        std::process::exit(1);
    }

    let names: Vec<&String> = benches.keys().collect();
    println!(
        "aggregated {} benchmarks: {}",
        names.len(),
        names.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
    );
    let report = serde_json::json!({
        "format": "nfv-bench-report",
        "version": 1,
        "benchmarks": benches,
        "skipped": skipped,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&report).expect("serializable"))
        .unwrap_or_else(|e| {
            eprintln!("error: failed to write {}: {}", out.display(), e);
            std::process::exit(1);
        });
    println!("wrote {}", out.display());
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {}", msg);
    eprintln!("usage: report [--dir DIR] [--out PATH]");
    std::process::exit(2)
}
