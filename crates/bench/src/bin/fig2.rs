//! Figure 2: non-maintenance tickets across time and vPEs (scatter),
//! sorted by per-vPE ticket volume.
//!
//! The paper's observations: the pattern is non-periodic and
//! vPE-dependent, a few vPEs have many more tickets than others, and
//! rare correlated core-router incidents hit many vPEs in the same
//! interval.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fig2 [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_simnet::tickets::generate_tickets;
use nfv_simnet::TicketCause;
use nfv_syslog::time::DAY;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.sim_config();
    let tickets = generate_tickets(&cfg);

    let mut per_vpe: Vec<Vec<u64>> = vec![Vec::new(); cfg.n_vpes];
    for t in tickets.iter().filter(|t| t.cause != TicketCause::Maintenance) {
        per_vpe[t.vpe].push(t.report_time);
    }
    // Sort vPEs by ticket volume (the figure's y-axis ordering).
    let mut order: Vec<usize> = (0..cfg.n_vpes).collect();
    order.sort_by_key(|&v| per_vpe[v].len());

    println!("vpe_rank\tvpe_id\tticket_count\tdays");
    let mut scatter = Vec::new();
    for (rank, &vpe) in order.iter().enumerate() {
        let days: Vec<f64> = per_vpe[vpe].iter().map(|&t| t as f64 / DAY as f64).collect();
        let day_strs: Vec<String> = days.iter().map(|d| format!("{:.1}", d)).collect();
        println!("{}\t{}\t{}\t{}", rank, vpe, days.len(), day_strs.join(","));
        scatter.push(serde_json::json!({ "rank": rank, "vpe": vpe, "days": days }));
    }

    let counts: Vec<usize> = order.iter().map(|&v| per_vpe[v].len()).collect();
    println!(
        "\n# volume skew: min {} / median {} / max {} tickets per vPE",
        counts.first().unwrap_or(&0),
        counts.get(counts.len() / 2).unwrap_or(&0),
        counts.last().unwrap_or(&0)
    );
    let core = tickets.iter().filter(|t| t.core_incident).count();
    println!(
        "# correlated core-incident tickets: {} ({} incidents configured)",
        core, cfg.core_incidents
    );

    args.maybe_write_json(&serde_json::json!({ "scatter": scatter }));
}
