//! Figure 1(a): monthly ticket root-cause mix (percent of all tickets).
//!
//! The paper observes maintenance dominating, with duplicated and
//! circuit tickets the next two major contributors, and a highly skewed
//! overall mix.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fig1a [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_simnet::tickets::generate_tickets;
use nfv_simnet::TicketCause;
use nfv_syslog::time::month_index;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.sim_config();
    let tickets = generate_tickets(&cfg);

    let causes = TicketCause::ALL;
    let mut monthly = vec![vec![0usize; causes.len()]; cfg.months];
    for t in &tickets {
        let m = month_index(t.report_time).min(cfg.months - 1);
        let c = causes.iter().position(|&c| c == t.cause).expect("known cause");
        monthly[m][c] += 1;
    }

    print!("month");
    for c in causes {
        print!("\t{}", c.label());
    }
    println!("\ttotal");
    let mut rows = Vec::new();
    for (m, counts) in monthly.iter().enumerate() {
        let total: usize = counts.iter().sum();
        print!("{}", m);
        let mut row = Vec::new();
        for &c in counts {
            let pct = if total == 0 { 0.0 } else { 100.0 * c as f64 / total as f64 };
            print!("\t{:.1}", pct);
            row.push(pct);
        }
        println!("\t{}", total);
        rows.push(row);
    }

    // Aggregate mix for the headline claim.
    let mut agg = vec![0usize; causes.len()];
    for t in &tickets {
        agg[causes.iter().position(|&c| c == t.cause).expect("known cause")] += 1;
    }
    println!("\n# aggregate mix over {} tickets:", tickets.len());
    for (c, &n) in causes.iter().zip(agg.iter()) {
        println!("#   {:<12} {:>5.1}%", c.label(), 100.0 * n as f64 / tickets.len() as f64);
    }

    args.maybe_write_json(&serde_json::json!({
        "causes": causes.iter().map(|c| c.label()).collect::<Vec<_>>(),
        "monthly_percent": rows,
    }));
}
