//! `pool_overhead` benchmark: what a parallel region *costs* to open.
//!
//! The pipeline fans out many small batches per epoch (one per training
//! batch, one per scoring chunk), so dispatch overhead is paid thousands
//! of times per run. This harness measures the per-batch cost of the two
//! dispatch strategies the repo has used:
//!
//! - **spawn**: create fresh OS threads for every batch via
//!   [`std::thread::scope`] — what the trainer and `par_blocks` did
//!   before the persistent pool;
//! - **pool**: enqueue the same tasks on the long-lived [`nfv_pool`]
//!   workers — a queue handoff instead of a thread spawn.
//!
//! Both strategies run the identical task bodies over identical data, so
//! the difference is pure dispatch overhead. The numbers are wall-clock
//! and machine-dependent; the interesting outputs are the *ratio* and
//! the per-task overhead in nanoseconds, which transfer across machines
//! better than absolute times.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin pool_overhead -- \
//!     [--fast] [--json PATH] [--batches N] [--tasks N]
//! ```

use std::hint::black_box;
use std::time::Instant;

struct Args {
    fast: bool,
    json: Option<String>,
    batches: Option<usize>,
    tasks: Option<usize>,
}

fn parse_args() -> Args {
    let mut out = Args { fast: false, json: None, batches: None, tasks: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => out.fast = true,
            "--json" => {
                out.json = Some(args.next().unwrap_or_else(|| usage("--json needs a path")))
            }
            "--batches" => {
                out.batches = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    usage("--batches needs an integer");
                }))
            }
            "--tasks" => {
                out.tasks = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&t| t >= 1)
                        .unwrap_or_else(|| usage("--tasks needs a positive integer")),
                )
            }
            other => usage(&format!("unknown flag {:?}", other)),
        }
    }
    out
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {}", msg);
    eprintln!("usage: pool_overhead [--fast] [--json PATH] [--batches N] [--tasks N]");
    std::process::exit(2)
}

/// A small but non-trivial task body: enough arithmetic that the
/// compiler cannot fold the fan-out away, small enough that dispatch
/// cost still dominates (mirroring a per-shard gradient step on a tiny
/// batch, the pipeline's worst case for overhead).
fn task_body(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }
    x
}

/// One batch dispatched as fresh OS threads (the pre-pool strategy).
fn batch_spawn(seeds: &[u64], out: &mut [u64]) {
    std::thread::scope(|s| {
        for (seed, slot) in seeds.iter().zip(out.iter_mut()) {
            let seed = *seed;
            s.spawn(move || *slot = task_body(seed));
        }
    });
}

/// One batch dispatched on the persistent pool.
fn batch_pool(seeds: &[u64], out: &mut [u64]) {
    nfv_pool::global().scope(|s| {
        for (seed, slot) in seeds.iter().zip(out.iter_mut()) {
            let seed = *seed;
            s.spawn(move || *slot = task_body(seed));
        }
    });
}

/// Times `batches` repetitions of `run` over fresh outputs, returning
/// (total_seconds, checksum). The checksum keeps the work observable.
fn measure(batches: usize, seeds: &[u64], mut run: impl FnMut(&[u64], &mut [u64])) -> (f64, u64) {
    let mut out = vec![0u64; seeds.len()];
    let mut checksum = 0u64;
    let t0 = Instant::now();
    for b in 0..batches {
        run(black_box(seeds), &mut out);
        checksum = checksum.wrapping_add(out[b % out.len()]);
    }
    (t0.elapsed().as_secs_f64(), black_box(checksum))
}

fn main() {
    let args = parse_args();
    let batches = args.batches.unwrap_or(if args.fast { 300 } else { 2_000 });
    let tasks = args.tasks.unwrap_or(8);
    let workers = nfv_pool::global().size();
    let seeds: Vec<u64> = (0..tasks as u64).map(|t| t * 0x9e3779b97f4a7c15 + 1).collect();

    // Warm both paths (first pool dispatch pays thread creation; first
    // spawn batch pays allocator warm-up) before timing.
    let (_, warm_a) = measure(8, &seeds, batch_spawn);
    let (_, warm_b) = measure(8, &seeds, batch_pool);
    assert_eq!(warm_a, warm_b, "both strategies must compute identical results");

    let (spawn_s, sum_spawn) = measure(batches, &seeds, batch_spawn);
    let (pool_s, sum_pool) = measure(batches, &seeds, batch_pool);
    assert_eq!(sum_spawn, sum_pool, "both strategies must compute identical results");

    let spawn_us = spawn_s * 1e6 / batches as f64;
    let pool_us = pool_s * 1e6 / batches as f64;
    let per_task_saved_ns = (spawn_us - pool_us) * 1e3 / tasks as f64;

    println!("config\tbatches {} tasks {} pool_workers {}", batches, tasks, workers);
    println!("{:<12} {:>16} {:>16}", "strategy", "us_per_batch", "ns_per_task");
    println!("{:<12} {:>16.2} {:>16.1}", "spawn", spawn_us, spawn_us * 1e3 / tasks as f64);
    println!("{:<12} {:>16.2} {:>16.1}", "pool", pool_us, pool_us * 1e3 / tasks as f64);
    println!("speedup\t{:.2}x", spawn_us / pool_us);
    println!("saved_per_task\t{:.0}ns", per_task_saved_ns);

    if let Some(path) = &args.json {
        let value = serde_json::json!({
            "bench": "pool_overhead",
            "config": {
                "batches": batches,
                "tasks_per_batch": tasks,
                "pool_workers": workers,
                "fast": args.fast,
            },
            "spawn_us_per_batch": spawn_us,
            "pool_us_per_batch": pool_us,
            "dispatch_speedup": spawn_us / pool_us,
            "saved_per_task_ns": per_task_saved_ns,
        });
        std::fs::write(path, serde_json::to_string_pretty(&value).expect("serializable"))
            .unwrap_or_else(|e| eprintln!("failed to write {}: {}", path, e));
        eprintln!("wrote {}", path);
    }
}
