//! Figure 3: quantiles over time of the cosine similarity between each
//! vPE's monthly syslog distribution and the fleet aggregate, with vPEs
//! sorted by similarity — plus the §3.3 statistic on month-over-month
//! similarity around the software update.
//!
//! Paper observations: only about a third of vPEs track the aggregate
//! closely (similarity > 0.8), ~5 vPEs fall below 0.5, and the software
//! update drops month-over-month similarity from > 0.8 to < 0.4 on
//! affected vPEs.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fig3 [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_simnet::FleetTrace;
use nfv_syslog::time::month_start;
use nfv_tensor::stats::five_number_summary;
use nfv_tensor::vecops::cosine_similarity;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.sim_config();
    let trace = FleetTrace::simulate(cfg.clone());
    let vocab = trace.catalog.set.len();

    let streams: Vec<_> = (0..cfg.n_vpes).map(|v| trace.ground_truth_stream(v)).collect();

    // Per-vPE, per-month cosine similarity to the aggregated fleet
    // distribution of the same month.
    let mut per_vpe_sims: Vec<Vec<f32>> = vec![Vec::new(); cfg.n_vpes];
    for m in 0..cfg.months {
        let (start, end) = (month_start(m), month_start(m + 1));
        let mut agg = vec![0.0f32; vocab];
        for s in &streams {
            for r in s.slice_time(start, end) {
                agg[r.template] += 1.0;
            }
        }
        for (v, s) in streams.iter().enumerate() {
            let dist = s.template_distribution(vocab, start, end);
            per_vpe_sims[v].push(cosine_similarity(&dist, &agg));
        }
    }

    // Sort vPEs by median similarity (the figure's x ordering).
    let mut order: Vec<usize> = (0..cfg.n_vpes).collect();
    order.sort_by(|&a, &b| {
        let ma = nfv_tensor::stats::quantile(&per_vpe_sims[a], 0.5).unwrap();
        let mb = nfv_tensor::stats::quantile(&per_vpe_sims[b], 0.5).unwrap();
        ma.total_cmp(&mb)
    });

    println!("rank\tvpe\tmin\tq25\tmedian\tq75\tmax");
    let mut rows = Vec::new();
    for (rank, &v) in order.iter().enumerate() {
        let (min, q25, med, q75, max) = five_number_summary(&per_vpe_sims[v]).unwrap();
        println!("{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}", rank, v, min, q25, med, q75, max);
        rows.push(serde_json::json!({
            "vpe": v, "min": min, "q25": q25, "median": med, "q75": q75, "max": max
        }));
    }

    let medians: Vec<f32> = (0..cfg.n_vpes)
        .map(|v| nfv_tensor::stats::quantile(&per_vpe_sims[v], 0.5).unwrap())
        .collect();
    let above_08 = medians.iter().filter(|&&m| m > 0.8).count();
    let below_05 = medians.iter().filter(|&&m| m < 0.5).count();
    println!("\n# vPEs with median similarity > 0.8: {} / {} (paper: ~1/3)", above_08, cfg.n_vpes);
    println!("# vPEs with median similarity < 0.5: {} (paper: 5)", below_05);

    // §3.3: month-over-month similarity across the update boundary.
    let mut update_stats = serde_json::Value::Null;
    if let Some(plan) = &trace.update {
        let update_month = cfg.update_month.expect("update configured");
        let mom = |v: usize, m: usize| {
            let d1 = streams[v].template_distribution(vocab, month_start(m), month_start(m + 1));
            let d2 =
                streams[v].template_distribution(vocab, month_start(m + 1), month_start(m + 2));
            cosine_similarity(&d1, &d2)
        };
        let mut affected = Vec::new();
        let mut unaffected = Vec::new();
        for (v, stream) in streams.iter().enumerate() {
            // Compare the month before rollout with the month after.
            let before = mom(v, update_month.saturating_sub(2));
            let across = {
                let pre = stream.template_distribution(
                    vocab,
                    month_start(update_month - 1),
                    month_start(update_month),
                );
                let post = stream.template_distribution(
                    vocab,
                    month_start(update_month + 1),
                    month_start(update_month + 2),
                );
                cosine_similarity(&pre, &post)
            };
            if plan.time_of[v].is_some() {
                affected.push((before, across));
            } else {
                unaffected.push((before, across));
            }
        }
        let mean = |xs: &[(f32, f32)], f: fn(&(f32, f32)) -> f32| {
            xs.iter().map(f).sum::<f32>() / xs.len().max(1) as f32
        };
        println!("\n# software update (month {}):", update_month);
        println!(
            "#   affected vPEs:   month-over-month similarity {:.2} before, {:.2} across the update (paper: >0.8 -> <0.4)",
            mean(&affected, |x| x.0),
            mean(&affected, |x| x.1)
        );
        println!(
            "#   unaffected vPEs: {:.2} before, {:.2} across",
            mean(&unaffected, |x| x.0),
            mean(&unaffected, |x| x.1)
        );
        update_stats = serde_json::json!({
            "affected_before": mean(&affected, |x| x.0),
            "affected_across": mean(&affected, |x| x.1),
            "unaffected_across": mean(&unaffected, |x| x.1),
        });
    }

    args.maybe_write_json(&serde_json::json!({
        "per_vpe": rows,
        "above_0.8": above_08,
        "below_0.5": below_05,
        "update": update_stats,
    }));
}
