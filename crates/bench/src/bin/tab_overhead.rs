//! §5.2 "Reducing Training Overhead" table: how much training data the
//! two mechanisms save.
//!
//! Part A — initial training: with vPE clustering, one month of pooled
//! group data reaches the quality that three months of a vPE's own data
//! would (paper: 3 months -> 1 month).
//!
//! Part B — post-update recovery: transfer-learning adaptation on one
//! week of post-update data reaches the quality that retraining from
//! scratch only achieves with months of data (paper: 3 months -> 1 week).
//!
//! ```text
//! cargo run --release -p nfv-bench --bin tab_overhead [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_detect::codec::LogCodec;
use nfv_detect::detector::AnomalyDetector;
use nfv_detect::eval::{fleet_mapping, sweep_prc};
use nfv_detect::grouping::Grouping;
use nfv_detect::lstm_detector::{LstmDetector, LstmDetectorConfig};
use nfv_detect::mapping::MappingConfig;
use nfv_detect::pipeline::{MonthScores, PipelineRun};
use nfv_simnet::{FleetTrace, SimConfig, SimPreset, TicketCause};
use nfv_syslog::time::{month_start, DAY};
use nfv_syslog::LogStream;

fn ticket_free(
    stream: &LogStream,
    trace: &FleetTrace,
    vpe: usize,
    start: u64,
    end: u64,
) -> LogStream {
    nfv_detect::pipeline::ticket_free(stream, &trace.tickets_for(vpe), 3 * DAY, start, end)
}

/// Scores the fleet over a test month and returns the best F-measure.
fn best_f(
    detector_of: &dyn Fn(usize) -> usize,
    detectors: &[LstmDetector],
    streams: &[LogStream],
    trace: &FleetTrace,
    test_month: usize,
    mapping: &MappingConfig,
) -> (f32, f32, f32) {
    let (start, end) = (month_start(test_month), month_start(test_month + 1));
    let per_vpe: Vec<Vec<nfv_detect::ScoredEvent>> = (0..streams.len())
        .map(|v| detectors[detector_of(v)].score(&streams[v], start, end))
        .collect();
    let tickets = trace
        .tickets
        .iter()
        .filter(|t| {
            t.cause != TicketCause::Maintenance && t.report_time >= start && t.report_time < end
        })
        .copied()
        .collect();
    let suppression = (0..streams.len())
        .map(|v| {
            trace
                .tickets_for(v)
                .iter()
                .filter(|t| t.cause == TicketCause::Maintenance)
                .map(|t| (t.report_time, t.repair_time))
                .collect()
        })
        .collect();
    let run = PipelineRun {
        months: vec![MonthScores { month: test_month, per_vpe }],
        rollups: vec![],
        tickets,
        adaptations: vec![],
        grouping: Grouping::single(streams.len()),
        vocab: 0,
        suppression,
        events: vec![],
    };
    let curve = sweep_prc(&run, mapping, 32);
    match curve.best_f_point() {
        Some(p) => {
            let counts = fleet_mapping(&run, p.threshold, mapping).confusion();
            (counts.f_measure(), counts.precision(), counts.recall())
        }
        None => (0.0, 0.0, 0.0),
    }
}

fn lstm_cfg(args: &BenchArgs, vocab: usize, seed: u64) -> LstmDetectorConfig {
    let mut cfg = args.pipeline_config(nfv_detect::DetectorKind::Lstm).lstm;
    cfg.vocab = vocab;
    cfg.seed = seed;
    cfg
}

fn main() {
    let args = BenchArgs::parse();
    let mapping = MappingConfig::default();

    // ---------- Part A: initial training-data budget. ----------
    let sim = if args.fast {
        let mut c = SimConfig::preset(SimPreset::Fast, args.seed);
        c.months = 5;
        c.n_vpes = 8;
        c
    } else {
        let mut c = SimConfig::preset(SimPreset::Full, args.seed);
        c.months = 5;
        c.update_month = None;
        c
    };
    let trace = FleetTrace::simulate(sim.clone());
    eprintln!("part A: {} messages", trace.total_messages());

    let mut sample = Vec::new();
    for v in 0..sim.n_vpes {
        sample.extend(trace.messages(v).iter().filter(|m| m.timestamp < month_start(1)).cloned());
    }
    let codec = LogCodec::train(&sample, 16);
    let vocab = codec.vocab_size();
    let streams: Vec<LogStream> =
        (0..sim.n_vpes).map(|v| codec.encode_stream(trace.messages(v))).collect();

    let grouping = Grouping::cluster(&streams, vocab, 0, month_start(1), 2..=6, args.seed);
    let test_month = 4;

    println!("# Part A: initial training (test month {})", test_month);
    println!("variant\tf\tprecision\trecall");
    let mut json_a = serde_json::Map::new();
    for (name, months, pooled) in
        [("own-1mo", 1usize, false), ("own-3mo", 3, false), ("cluster-1mo", 1, true)]
    {
        let end = month_start(months);
        let mut detectors: Vec<LstmDetector> = Vec::new();
        let group_of: Box<dyn Fn(usize) -> usize> = if pooled {
            let members = grouping.members();
            for (g, group_members) in members.iter().enumerate() {
                let mut det = LstmDetector::new(lstm_cfg(&args, vocab, 1000 + g as u64));
                let pools: Vec<LogStream> = group_members
                    .iter()
                    .map(|&v| ticket_free(&streams[v], &trace, v, 0, end))
                    .collect();
                det.fit(&pools.iter().collect::<Vec<_>>());
                detectors.push(det);
            }
            let g = grouping.clone();
            Box::new(move |v| g.group_of(v))
        } else {
            for (v, stream) in streams.iter().enumerate() {
                let mut det = LstmDetector::new(lstm_cfg(&args, vocab, 2000 + v as u64));
                let own = ticket_free(stream, &trace, v, 0, end);
                det.fit(&[&own]);
                detectors.push(det);
            }
            Box::new(|v| v)
        };
        let (f, p, r) = best_f(&group_of, &detectors, &streams, &trace, test_month, &mapping);
        println!("{}\t{:.3}\t{:.3}\t{:.3}", name, f, p, r);
        json_a.insert(name.to_string(), serde_json::json!({ "f": f, "p": p, "r": r }));
    }
    println!("# paper: clustering cuts the initial data need from 3 months to 1 month\n");

    // ---------- Part B: post-update recovery budget. ----------
    let sim_b = if args.fast {
        let mut c = SimConfig::preset(SimPreset::Fast, args.seed + 1);
        c.months = 7;
        c.n_vpes = 8;
        c.update_month = Some(2);
        c
    } else {
        let mut c = SimConfig::preset(SimPreset::Full, args.seed + 1);
        c.months = 8;
        c.update_month = Some(2);
        c
    };
    let trace_b = FleetTrace::simulate(sim_b.clone());
    eprintln!("part B: {} messages", trace_b.total_messages());
    let update_month = sim_b.update_month.expect("configured");
    // Everything from this month onward is fully post-update.
    let post_start_month = update_month + 1;
    let test_month_b = sim_b.months - 1;

    let mut sample_b = Vec::new();
    for v in 0..sim_b.n_vpes {
        sample_b
            .extend(trace_b.messages(v).iter().filter(|m| m.timestamp < month_start(1)).cloned());
    }
    let mut codec_b = LogCodec::train(&sample_b, 24);
    // Refresh with a post-update week so new templates have dense ids
    // for every variant (variants differ in *model* training, not codec).
    let mut week = Vec::new();
    for v in 0..sim_b.n_vpes {
        week.extend(
            trace_b
                .messages(v)
                .iter()
                .filter(|m| {
                    m.timestamp >= month_start(post_start_month)
                        && m.timestamp < month_start(post_start_month) + 7 * DAY
                })
                .cloned(),
        );
    }
    codec_b.refresh(&week);
    let vocab_b = codec_b.vocab_size();
    let streams_b: Vec<LogStream> =
        (0..sim_b.n_vpes).map(|v| codec_b.encode_stream(trace_b.messages(v))).collect();
    let grouping_b = Grouping::cluster(&streams_b, vocab_b, 0, month_start(1), 2..=6, args.seed);
    let members_b = grouping_b.members();

    // Teacher models: trained on the pre-update months.
    let teachers: Vec<LstmDetector> = members_b
        .iter()
        .enumerate()
        .map(|(g, ms)| {
            let mut det = LstmDetector::new(lstm_cfg(&args, vocab_b, 3000 + g as u64));
            let pools: Vec<LogStream> = ms
                .iter()
                .map(|&v| ticket_free(&streams_b[v], &trace_b, v, 0, month_start(update_month)))
                .collect();
            det.fit(&pools.iter().collect::<Vec<_>>());
            det
        })
        .collect();

    println!(
        "# Part B: post-update recovery (update month {}, test month {})",
        update_month, test_month_b
    );
    println!("variant\tdata\tf\tprecision\trecall");
    let mut json_b = serde_json::Map::new();
    let post0 = month_start(post_start_month);
    let spans: [(&str, u64, bool); 5] = [
        ("stale-teacher", 0, false),
        ("adapt-transfer", 7 * DAY, true),
        ("scratch", 7 * DAY, false),
        ("scratch", 30 * DAY, false),
        ("scratch", 60 * DAY, false),
    ];
    for (kind, span, transfer) in spans {
        let detectors: Vec<LstmDetector> = members_b
            .iter()
            .enumerate()
            .map(|(g, ms)| {
                let pools: Vec<LogStream> = ms
                    .iter()
                    .map(|&v| ticket_free(&streams_b[v], &trace_b, v, post0, post0 + span))
                    .collect();
                let refs: Vec<&LogStream> = pools.iter().collect();
                if transfer {
                    let mut student = LstmDetector::new(lstm_cfg(&args, vocab_b, 4000 + g as u64));
                    student.copy_weights_from(&teachers[g]);
                    student.adapt(&refs);
                    student
                } else if span == 0 {
                    let mut stale = LstmDetector::new(lstm_cfg(&args, vocab_b, 4500 + g as u64));
                    stale.copy_weights_from(&teachers[g]);
                    stale
                } else {
                    let mut fresh = LstmDetector::new(lstm_cfg(&args, vocab_b, 5000 + g as u64));
                    fresh.fit(&refs);
                    fresh
                }
            })
            .collect();
        let g = grouping_b.clone();
        let (f, p, r) = best_f(
            &move |v| g.group_of(v),
            &detectors,
            &streams_b,
            &trace_b,
            test_month_b,
            &mapping,
        );
        let label = if span == 0 {
            "-".to_string()
        } else if span < 30 * DAY {
            format!("{}d", span / DAY)
        } else {
            format!("{}mo", span / (30 * DAY))
        };
        println!("{}\t{}\t{:.3}\t{:.3}\t{:.3}", kind, label, f, p, r);
        json_b.insert(format!("{}-{}", kind, label), serde_json::json!({ "f": f, "p": p, "r": r }));
    }
    println!("# paper: transfer learning cuts recovery from ~3 months of data to 1 week");

    args.maybe_write_json(&serde_json::json!({ "part_a": json_a, "part_b": json_b }));
}
