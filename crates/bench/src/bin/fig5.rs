//! Figure 5: precision-recall curves of the LSTM detector for different
//! predictive periods (1 hour, 1 day, 2 days).
//!
//! The paper reports that performance converges at a 1-day predictive
//! period, with the operating point around precision 0.80 / recall 0.81
//! and ~0.6 false alarms per day across all vPEs.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fig5 [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_detect::eval;
use nfv_detect::pipeline::{run_pipeline, DetectorKind};
use nfv_detect::report::format_prc;
use nfv_simnet::FleetTrace;
use nfv_syslog::time::{DAY, HOUR};

fn main() {
    let args = BenchArgs::parse();
    let trace = FleetTrace::simulate(args.sim_config());
    eprintln!(
        "simulated {} messages, {} tickets on {} vPEs",
        trace.total_messages(),
        trace.tickets.len(),
        trace.config.n_vpes
    );

    let cfg = args.pipeline_config(DetectorKind::Lstm);
    let run = run_pipeline(&trace, &cfg).unwrap();

    let mut json_curves = serde_json::Map::new();
    for (label, period) in [("1h", HOUR), ("1day", DAY), ("2day", 2 * DAY)] {
        let mut mapping = cfg.mapping;
        mapping.predictive_period = period;
        let curve = eval::sweep_prc(&run, &mapping, 40);
        println!("{}", format_prc(&format!("LSTM, predictive period {}", label), &curve));
        if period == DAY {
            if let Some(best) = curve.best_f_point() {
                let fa = eval::false_alarms_per_day(&run, &mapping, best.threshold);
                println!("# false alarms per day at operating point: {:.2}\n", fa);
            }
        }
        json_curves.insert(
            label.to_string(),
            serde_json::json!(curve
                .points
                .iter()
                .map(|p| (p.threshold, p.precision, p.recall, p.f_measure))
                .collect::<Vec<_>>()),
        );
    }
    args.maybe_write_json(&serde_json::Value::Object(json_curves));
}
