//! `train_step` micro-benchmark: the refactored in-place training path
//! ([`Trainer`] + workspace kernels) against a faithful re-creation of
//! the pre-refactor allocating implementation.
//!
//! The baseline below reproduces the old code path operation for
//! operation: fresh matrices for every matmul, per-step gradient
//! matrices, dense `a * b^T` dot loops for the backward products, and a
//! dense embedding-gradient table per batch. Both sides start from
//! identical weights and train on the same fixed batch, so their loss
//! trajectories must agree — the benchmark fails if they diverge, which
//! guards against "optimizing" the math into something different.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin train_step -- \
//!     [--fast] [--seed N] [--json PATH] [--min-speedup X]
//! ```

use nfv_nn::activation::sigmoid;
use nfv_nn::{
    Adam, Optimizer, SeqView, SequenceModel, SequenceModelConfig, Trainable, Trainer, TrainerConfig,
};
use nfv_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

// ---------------------------------------------------------------------
// Pre-refactor reference kernels: allocate the output, skip zero scalars.
// ---------------------------------------------------------------------

/// Old `a.matmul(b)`: ikj loop over a fresh zeroed output.
fn matmul_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            let out_row = out.row_mut(i);
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Old `a.matmul_tn(b)` (`a^T * b`): accumulate over the shared row index.
fn matmul_tn_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows());
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let b_row = b.row(i);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = out.row_mut(k);
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Old `a.matmul_nt(b)` (`a * b^T`): one dot product per output element.
fn matmul_nt_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols());
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = a_row.iter().zip(b.row(j).iter()).map(|(x, y)| x * y).sum();
        }
    }
    out
}

fn sum_rows_ref(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        let src = a.row(r);
        let dst = out.row_mut(0);
        for (o, &v) in dst.iter_mut().zip(src.iter()) {
            *o += v;
        }
    }
    out
}

// ---------------------------------------------------------------------
// Pre-refactor reference model: owned weight copies, allocating layers.
// ---------------------------------------------------------------------

struct RefLstm {
    wx: Matrix,
    wh: Matrix,
    b: Matrix,
    hidden: usize,
}

struct RefStep {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    gates: Matrix,
    tanh_c: Matrix,
}

impl RefLstm {
    fn forward_seq(&self, xs: &[Matrix]) -> (Vec<Matrix>, Vec<RefStep>) {
        let batch = xs[0].rows();
        let hd = self.hidden;
        let mut outs = Vec::with_capacity(xs.len());
        let mut steps = Vec::with_capacity(xs.len());
        let mut h = Matrix::zeros(batch, hd);
        let mut c = Matrix::zeros(batch, hd);
        for x in xs {
            let h_prev = h.clone();
            let c_prev = c.clone();
            let mut gates = matmul_ref(x, &self.wx);
            let zh = matmul_ref(&h_prev, &self.wh);
            gates.add_assign(&zh);
            gates.add_row_broadcast(self.b.row(0));
            for r in 0..batch {
                let row = gates.row_mut(r);
                for k in 0..hd {
                    row[k] = sigmoid(row[k]); // i
                    row[hd + k] = sigmoid(row[hd + k]); // f
                    row[2 * hd + k] = row[2 * hd + k].tanh(); // g
                    row[3 * hd + k] = sigmoid(row[3 * hd + k]); // o
                }
            }
            let mut tanh_c = Matrix::zeros(batch, hd);
            for r in 0..batch {
                let g_row = gates.row(r);
                for k in 0..hd {
                    let ct = g_row[hd + k] * c_prev.get(r, k) + g_row[k] * g_row[2 * hd + k];
                    let tc = ct.tanh();
                    c.set(r, k, ct);
                    tanh_c.set(r, k, tc);
                    h.set(r, k, g_row[3 * hd + k] * tc);
                }
            }
            outs.push(h.clone());
            steps.push(RefStep { x: x.clone(), h_prev, c_prev, gates, tanh_c });
        }
        (outs, steps)
    }

    /// Returns `(dxs, dwx, dwh, db)`.
    fn backward_seq(&self, steps: &[RefStep], d_hs: &[Matrix]) -> (Vec<Matrix>, [Matrix; 3]) {
        let t_len = steps.len();
        let batch = steps[0].x.rows();
        let hd = self.hidden;
        let mut dwx = Matrix::zeros(self.wx.rows(), self.wx.cols());
        let mut dwh = Matrix::zeros(self.wh.rows(), self.wh.cols());
        let mut db = Matrix::zeros(1, 4 * hd);
        let mut dxs = vec![Matrix::zeros(0, 0); t_len];
        let mut dh_next = Matrix::zeros(batch, hd);
        let mut dc_next = Matrix::zeros(batch, hd);
        for t in (0..t_len).rev() {
            let step = &steps[t];
            let mut dh = d_hs[t].clone();
            dh.add_assign(&dh_next);
            let mut dz = Matrix::zeros(batch, 4 * hd);
            let mut dc_prev = Matrix::zeros(batch, hd);
            for r in 0..batch {
                let gates = step.gates.row(r);
                for k in 0..hd {
                    let i = gates[k];
                    let f = gates[hd + k];
                    let g = gates[2 * hd + k];
                    let o = gates[3 * hd + k];
                    let tc = step.tanh_c.get(r, k);
                    let dh_v = dh.get(r, k);

                    let do_ = dh_v * tc;
                    let dtc = dh_v * o;
                    let dc = dc_next.get(r, k) + dtc * (1.0 - tc * tc);

                    let di = dc * g;
                    let df = dc * step.c_prev.get(r, k);
                    let dg = dc * i;
                    dc_prev.set(r, k, dc * f);

                    let row = dz.row_mut(r);
                    row[k] = di * i * (1.0 - i);
                    row[hd + k] = df * f * (1.0 - f);
                    row[2 * hd + k] = dg * (1.0 - g * g);
                    row[3 * hd + k] = do_ * o * (1.0 - o);
                }
            }
            dwx.add_assign(&matmul_tn_ref(&step.x, &dz));
            dwh.add_assign(&matmul_tn_ref(&step.h_prev, &dz));
            db.add_assign(&sum_rows_ref(&dz));
            dxs[t] = matmul_nt_ref(&dz, &self.wx);
            dh_next = matmul_nt_ref(&dz, &self.wh);
            dc_next = dc_prev;
        }
        (dxs, [dwx, dwh, db])
    }
}

struct RefModel {
    table: Matrix,
    layers: Vec<RefLstm>,
    head_w: Matrix,
    head_b: Matrix,
    embed: usize,
    use_gap: bool,
}

impl RefModel {
    /// Copies the weights of a freshly initialized [`SequenceModel`] so
    /// both benchmark sides start from identical parameters.
    fn from_model(model: &SequenceModel) -> RefModel {
        let cfg = model.config().clone();
        let params = model.params();
        let mut layers = Vec::with_capacity(cfg.lstm_layers);
        for l in 0..cfg.lstm_layers {
            layers.push(RefLstm {
                wx: params[1 + 3 * l].clone(),
                wh: params[2 + 3 * l].clone(),
                b: params[3 + 3 * l].clone(),
                hidden: cfg.hidden,
            });
        }
        RefModel {
            table: params[0].clone(),
            layers,
            head_w: params[params.len() - 2].clone(),
            head_b: params[params.len() - 1].clone(),
            embed: cfg.embed_dim,
            use_gap: cfg.use_gap_feature,
        }
    }

    /// The pre-refactor `train_step`: full forward, full BPTT, fresh
    /// gradient matrices, clip, one Adam step. Returns the batch loss.
    fn train_step(
        &mut self,
        ids: &[Vec<usize>],
        gaps: &[Vec<f32>],
        targets: &[usize],
        opt: &mut Adam,
    ) -> f32 {
        let batch = ids.len();
        let t_len = ids[0].len();
        let in0 = self.embed + usize::from(self.use_gap);

        let xs: Vec<Matrix> = (0..t_len)
            .map(|t| {
                let mut x = Matrix::zeros(batch, in0);
                for r in 0..batch {
                    x.row_mut(r)[..self.embed].copy_from_slice(self.table.row(ids[r][t]));
                    if self.use_gap {
                        x.set(r, in0 - 1, gaps[r][t]);
                    }
                }
                x
            })
            .collect();

        let mut caches = Vec::with_capacity(self.layers.len());
        let mut seq = xs;
        for layer in &self.layers {
            let (outs, steps) = layer.forward_seq(&seq);
            caches.push(steps);
            seq = outs;
        }
        let top = seq.last().expect("non-empty window");
        let mut logits = matmul_ref(top, &self.head_w);
        logits.add_row_broadcast(self.head_b.row(0));
        let (loss, dlogits) = nfv_nn::loss::softmax_cross_entropy(&logits, targets);

        // Head backward (identity activation).
        let dhead_w = matmul_tn_ref(top, &dlogits);
        let dhead_b = sum_rows_ref(&dlogits);
        let mut d_seq = vec![Matrix::zeros(batch, self.layers[0].hidden); t_len];
        d_seq[t_len - 1] = matmul_nt_ref(&dlogits, &self.head_w);

        let mut lstm_grads: Vec<[Matrix; 3]> = Vec::with_capacity(self.layers.len());
        for (layer, steps) in self.layers.iter().zip(caches.iter()).rev() {
            let (dxs, grads) = layer.backward_seq(steps, &d_seq);
            lstm_grads.push(grads);
            d_seq = dxs;
        }
        lstm_grads.reverse();

        // One fresh per-timestep table added into the total, exactly as
        // the old `Embedding::backward` + `add_assign` sequence did.
        let mut dtable = Matrix::zeros(self.table.rows(), self.embed);
        for (t, dx) in d_seq.iter().enumerate() {
            let mut dtable_t = Matrix::zeros(self.table.rows(), self.embed);
            for (r, window) in ids.iter().enumerate() {
                let src = &dx.row(r)[..self.embed];
                let dst = dtable_t.row_mut(window[t]);
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d += s;
                }
            }
            dtable.add_assign(&dtable_t);
        }

        let mut grads = vec![dtable];
        for [dwx, dwh, db] in lstm_grads {
            grads.extend([dwx, dwh, db]);
        }
        grads.extend([dhead_w, dhead_b]);
        for g in &mut grads {
            g.clip_inplace(5.0);
        }
        let grad_refs: Vec<Option<&Matrix>> = grads.iter().map(Some).collect();
        let mut params: Vec<&mut Matrix> = Vec::with_capacity(grads.len());
        params.push(&mut self.table);
        for layer in &mut self.layers {
            params.push(&mut layer.wx);
            params.push(&mut layer.wh);
            params.push(&mut layer.b);
        }
        params.push(&mut self.head_w);
        params.push(&mut self.head_b);
        opt.step(&mut params, &grad_refs);
        loss
    }
}

// ---------------------------------------------------------------------

struct Args {
    fast: bool,
    seed: u64,
    json: Option<String>,
    min_speedup: Option<f32>,
}

fn parse_args() -> Args {
    let mut out = Args { fast: false, seed: 1, json: None, min_speedup: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => out.fast = true,
            "--seed" => {
                out.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    usage("--seed needs an integer");
                })
            }
            "--json" => {
                out.json = Some(args.next().unwrap_or_else(|| usage("--json needs a path")))
            }
            "--min-speedup" => {
                out.min_speedup =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        usage("--min-speedup needs a number");
                    }))
            }
            other => usage(&format!("unknown flag {:?}", other)),
        }
    }
    out
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {}", msg);
    eprintln!("usage: train_step [--fast] [--seed N] [--json PATH] [--min-speedup X]");
    std::process::exit(2)
}

fn main() {
    let args = parse_args();
    let (warmup, iters) = if args.fast { (5, 30) } else { (20, 300) };
    let cfg = SequenceModelConfig::default();
    let batch = 64usize;
    let window = 10usize;

    let mut rng = SmallRng::seed_from_u64(args.seed);
    let model = SequenceModel::new(cfg.clone(), &mut rng);
    let ids: Vec<Vec<usize>> =
        (0..batch).map(|_| (0..window).map(|_| rng.gen_range(0..cfg.vocab)).collect()).collect();
    let gaps: Vec<Vec<f32>> =
        (0..batch).map(|_| (0..window).map(|_| rng.gen::<f32>()).collect()).collect();
    let targets: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..cfg.vocab)).collect();

    // Baseline: the pre-refactor allocating implementation.
    let mut reference = RefModel::from_model(&model);
    let mut ref_opt = Adam::new(1e-3, &model.param_shapes());
    let mut ref_losses = Vec::with_capacity(warmup + iters);
    for _ in 0..warmup {
        ref_losses.push(reference.train_step(&ids, &gaps, &targets, &mut ref_opt));
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        ref_losses.push(reference.train_step(&ids, &gaps, &targets, &mut ref_opt));
    }
    let baseline_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    // Refactored path: Trainer + in-place kernels, same starting weights.
    let mut optimized = model;
    let shapes = optimized.param_shapes();
    let mut trainer = Trainer::new(
        TrainerConfig { batch_size: batch, shuffle: false, ..Default::default() },
        Adam::new(1e-3, &shapes),
        &shapes,
    );
    let view = SeqView { ids: &ids, gaps: &gaps, targets: &targets };
    let indices: Vec<usize> = (0..batch).collect();
    for _ in 0..warmup {
        trainer.train_batch(&mut optimized, &view, &indices).expect("finite loss");
    }
    let t1 = Instant::now();
    for _ in 0..iters {
        trainer.train_batch(&mut optimized, &view, &indices).expect("finite loss");
    }
    let trainer_ms = t1.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let max_loss_diff = ref_losses
        .iter()
        .zip(trainer.step_losses().iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let speedup = baseline_ms / trainer_ms;

    println!(
        "config\tvocab {} embed {} hidden {} layers {} batch {} window {}",
        cfg.vocab, cfg.embed_dim, cfg.hidden, cfg.lstm_layers, batch, window
    );
    println!("baseline\t{:.3} ms/step", baseline_ms);
    println!("trainer\t{:.3} ms/step", trainer_ms);
    println!("speedup\t{:.2}x", speedup);
    println!("max |loss diff| over {} steps\t{:.3e}", warmup + iters, max_loss_diff);

    if let Some(path) = &args.json {
        let value = serde_json::json!({
            "bench": "train_step",
            "config": {
                "vocab": cfg.vocab,
                "embed_dim": cfg.embed_dim,
                "hidden": cfg.hidden,
                "lstm_layers": cfg.lstm_layers,
                "use_gap_feature": cfg.use_gap_feature,
                "batch": batch,
                "window": window,
                "lr": 1e-3,
                "seed": args.seed,
                "fast": args.fast,
                "warmup": warmup,
                "iters": iters,
            },
            "baseline_ms_per_step": baseline_ms,
            "trainer_ms_per_step": trainer_ms,
            "speedup": speedup,
            "max_loss_diff": max_loss_diff,
        });
        std::fs::write(path, serde_json::to_string_pretty(&value).expect("serializable"))
            .unwrap_or_else(|e| eprintln!("failed to write {}: {}", path, e));
        eprintln!("wrote {}", path);
    }

    if max_loss_diff > 1e-5 {
        eprintln!("FAIL: trajectories diverged (max |loss diff| {:.3e})", max_loss_diff);
        std::process::exit(1);
    }
    if let Some(min) = args.min_speedup {
        if (speedup as f32) < min {
            eprintln!("FAIL: speedup {:.2}x below required {:.2}x", speedup, min);
            std::process::exit(1);
        }
    }
}
