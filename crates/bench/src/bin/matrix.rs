//! Scenario x detector ablation matrix.
//!
//! Crosses every member of the detector zoo with operational scenarios
//! beyond the paper's baseline fault universe, and reports per cell the
//! operating-point F-measure, precision, recall, false-alarm rate and
//! wall-clock runtime, as one JSON report. The scenarios:
//!
//! * `baseline` — the preset fault universe as-is;
//! * `bursty` — elevated ticket rate (duplicate storms, dense faults);
//! * `migration` — planned vPE migrations: loud hypervisor chatter with
//!   no ticket, suppressed by the evaluation like maintenance. Punishes
//!   detectors that cannot absorb expected-but-unusual chatter;
//! * `chain-failure` — root hardware faults cascading circuit trouble
//!   across a behaviour group in topology order: correlated, rolling
//!   tickets a detector should predict.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin matrix [-- --fast]
//! cargo run --release -p nfv-bench --bin matrix -- --fast --smoke
//! ```
//!
//! `--smoke` shrinks the grid to 2 scenarios x 3 detectors and asserts
//! the report's CI gate (each sequence detector beats at least one
//! baseline detector on at least one scenario), exiting non-zero on
//! violation; CI runs it on every push.

use std::time::Instant;

use nfv_bench::BenchArgs;
use nfv_detect::eval;
use nfv_detect::pipeline::{run_pipeline, DetectorKind, PipelineConfig};
use nfv_simnet::{FleetTrace, SimConfig};

/// One cell of the matrix.
struct Cell {
    scenario: &'static str,
    detector: &'static str,
    f: f32,
    precision: f32,
    recall: f32,
    fa_per_day: f32,
    runtime_secs: f64,
}

fn scenario_config(base: &SimConfig, scenario: &str) -> SimConfig {
    let mut cfg = base.clone();
    match scenario {
        "baseline" => {}
        "bursty" => cfg.ticket_rate *= 2.5,
        "migration" => cfg.migrations = 2 * cfg.months.max(1),
        "chain-failure" => cfg.chain_failures = cfg.months.max(1) / 2 + 1,
        other => unreachable!("unknown scenario {}", other),
    }
    cfg
}

fn detector_kind(name: &str) -> DetectorKind {
    match name {
        "lstm" => DetectorKind::Lstm,
        "gru" => DetectorKind::Gru,
        "autoencoder" => DetectorKind::Autoencoder,
        "ocsvm" => DetectorKind::Ocsvm,
        "pca" => DetectorKind::Pca,
        "hmm" => DetectorKind::Hmm,
        other => unreachable!("unknown detector {}", other),
    }
}

fn evaluate(trace: &FleetTrace, cfg: &PipelineConfig) -> (f32, f32, f32, f32) {
    let run = run_pipeline(trace, cfg).expect("pipeline run");
    let curve = eval::sweep_prc(&run, &cfg.mapping, 32);
    match curve.best_f_point() {
        Some(best) => (
            best.f_measure,
            best.precision,
            best.recall,
            eval::false_alarms_per_day(&run, &cfg.mapping, best.threshold),
        ),
        None => (0.0, 0.0, 0.0, 0.0),
    }
}

/// The CI gate: every sequence detector (the tentpole additions) must
/// beat at least one non-sequence baseline on at least one scenario.
fn gate_violations(cells: &[Cell], sequence: &[&str], baselines: &[&str]) -> Vec<String> {
    let best_f = |detector: &str, scenario: &str| {
        cells.iter().find(|c| c.detector == detector && c.scenario == scenario).map(|c| c.f)
    };
    let scenarios: Vec<&str> = {
        let mut s: Vec<&str> = cells.iter().map(|c| c.scenario).collect();
        s.dedup();
        s
    };
    let mut violations = Vec::new();
    for &seq in sequence {
        let wins = scenarios.iter().any(|&sc| {
            let Some(f_seq) = best_f(seq, sc) else { return false };
            baselines.iter().filter_map(|&b| best_f(b, sc)).any(|f_base| f_seq > f_base)
        });
        if !wins {
            violations.push(format!("{} never beats any baseline on any scenario", seq));
        }
    }
    violations
}

fn main() {
    let mut smoke = false;
    let args = BenchArgs::parse_with(|flag| {
        if flag == "--smoke" {
            smoke = true;
            true
        } else {
            false
        }
    });

    let (scenarios, detectors): (Vec<&str>, Vec<&str>) = if smoke {
        (vec!["baseline", "migration"], vec!["gru", "pca", "hmm"])
    } else {
        (
            vec!["baseline", "bursty", "migration", "chain-failure"],
            vec!["lstm", "gru", "autoencoder", "ocsvm", "pca", "hmm"],
        )
    };
    let sequence: Vec<&str> =
        detectors.iter().copied().filter(|d| matches!(*d, "lstm" | "gru")).collect();
    let baselines: Vec<&str> =
        detectors.iter().copied().filter(|d| !matches!(*d, "lstm" | "gru")).collect();

    let base_sim = args.sim_config();
    let mut cells: Vec<Cell> = Vec::new();
    println!("scenario\tdetector\tf\tprecision\trecall\tfa_per_day\truntime_s");
    for &scenario in &scenarios {
        let trace = FleetTrace::simulate(scenario_config(&base_sim, scenario));
        eprintln!(
            "scenario {}: {} messages, {} tickets",
            scenario,
            trace.total_messages(),
            trace.tickets.len()
        );
        for &detector in &detectors {
            let cfg = args.pipeline_config(detector_kind(detector));
            let started = Instant::now();
            let (f, precision, recall, fa_per_day) = evaluate(&trace, &cfg);
            let runtime_secs = started.elapsed().as_secs_f64();
            println!(
                "{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.2}\t{:.1}",
                scenario, detector, f, precision, recall, fa_per_day, runtime_secs
            );
            cells.push(Cell { scenario, detector, f, precision, recall, fa_per_day, runtime_secs });
        }
    }

    let violations = gate_violations(&cells, &sequence, &baselines);

    let mut by_scenario = serde_json::Map::new();
    for &scenario in &scenarios {
        let mut by_detector = serde_json::Map::new();
        for c in cells.iter().filter(|c| c.scenario == scenario) {
            by_detector.insert(
                c.detector.to_string(),
                serde_json::json!({
                    "f": c.f,
                    "precision": c.precision,
                    "recall": c.recall,
                    "fa_per_day": c.fa_per_day,
                    "runtime_secs": c.runtime_secs,
                }),
            );
        }
        by_scenario.insert(scenario.to_string(), serde_json::Value::Object(by_detector));
    }
    let report = serde_json::json!({
        "seed": args.seed,
        "fast": args.fast,
        "smoke": smoke,
        "scenarios": by_scenario,
        "gate_violations": violations.clone(),
    });
    args.maybe_write_json(&report);
    if args.json.is_none() {
        println!("{}", serde_json::to_string_pretty(&report).expect("serializable"));
    }

    if !violations.is_empty() {
        eprintln!("matrix gate FAILED:");
        for v in &violations {
            eprintln!("  {}", v);
        }
        if smoke {
            std::process::exit(1);
        }
    }
}
