//! Figure 8: probability of detecting an anomaly related to a ticket at
//! several offsets around ticket generation (-15 min, -5 min, 0,
//! +5 min, +15 min), per non-duplicated ticket type and across all.
//!
//! Paper answers reproduced here: circuit tickets show pre-ticket
//! anomalies most often (74%), then software (55%), cable (40%),
//! hardware (28%); ~80% of tickets show anomalies within 15 minutes
//! after generation; long (>= 15 min) leads are relatively more common
//! for cable/hardware than for circuit.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin fig8 [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_detect::eval::{self, FIG8_OFFSETS};
use nfv_detect::pipeline::{run_pipeline, DetectorKind};
use nfv_detect::report::format_detection_table;
use nfv_simnet::FleetTrace;

fn main() {
    let args = BenchArgs::parse();
    let trace = FleetTrace::simulate(args.sim_config());
    eprintln!("simulated {} messages, {} tickets", trace.total_messages(), trace.tickets.len());

    let cfg = args.pipeline_config(DetectorKind::Lstm);
    let run = run_pipeline(&trace, &cfg).unwrap();
    let curve = eval::sweep_prc(&run, &cfg.mapping, 40);
    let threshold = curve.best_f_point().map(|p| p.threshold).unwrap_or(1.0);
    eprintln!("operating threshold: {:.4}", threshold);

    let rows = eval::per_type_detection(&run, &cfg.mapping, threshold, &FIG8_OFFSETS);
    println!("{}", format_detection_table(&rows, &FIG8_OFFSETS));

    println!("# paper reference (pre-ticket detection, 0 min column):");
    println!("#   Circuit 0.74, Software 0.55, Cable 0.40, Hardware 0.28");
    println!("# paper reference (+15 min column): ~0.80 across tickets");

    // Q4: does any single warning cluster serve several tickets?
    let mut multi = 0usize;
    let mut clusters_total = 0usize;
    for vpe in 0..run.n_vpes() {
        let events = run.events_for(vpe);
        let clusters = nfv_detect::mapping::warning_clusters(&events, threshold, &cfg.mapping);
        // Q4 asks about independent troubles; duplicates trail their
        // parent ticket within hours by definition, so they are excluded
        // here (as the paper's "rare and well-separated" framing implies).
        let tickets: Vec<_> = run
            .tickets
            .iter()
            .filter(|t| t.vpe == vpe && t.cause != nfv_simnet::TicketCause::Duplicate)
            .copied()
            .collect();
        multi += nfv_detect::triage::clusters_spanning_multiple_tickets(
            &clusters,
            &tickets,
            &cfg.mapping,
        );
        clusters_total += clusters.len();
    }
    println!(
        "# Q4: {} of {} warning clusters span more than one ticket (paper: never \
         observed; tickets are rare and well separated)",
        multi, clusters_total
    );

    args.maybe_write_json(&serde_json::json!({
        "offsets_sec": FIG8_OFFSETS,
        "rows": rows
            .iter()
            .map(|(c, rates, n)| serde_json::json!({
                "type": c.map_or("All", |c| c.label()),
                "rates": rates,
                "tickets": n,
            }))
            .collect::<Vec<_>>(),
    }));
}
