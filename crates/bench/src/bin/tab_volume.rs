//! §2 statistic: vPE syslogs have ~77% less volume than pPE syslogs
//! with comparable ticket counts, and far fewer physical-layer
//! messages — virtualization hides lower-layer events.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin tab_volume [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_detect::report::format_kv;
use nfv_simnet::ppe::{physical_fraction, simulate_ppe, volume_comparison};
use nfv_simnet::FleetTrace;

fn main() {
    let args = BenchArgs::parse();
    let cfg = args.sim_config();
    let trace = FleetTrace::simulate(cfg.clone());

    // Compare a handful of vPEs against matched pPEs.
    let sample = cfg.n_vpes.min(6);
    let mut reductions = Vec::new();
    let mut rows = Vec::new();
    for vpe in 0..sample {
        let vpe_stream = trace.ground_truth_stream(vpe);
        let ppe_stream = simulate_ppe(&cfg, &trace.catalog, cfg.seed ^ (vpe as u64 + 99));
        let (v, p, reduction) = volume_comparison(&vpe_stream, &ppe_stream);
        reductions.push(reduction);
        rows.push((
            format!("vpe{:02} vs ppe{:02}", vpe, vpe),
            format!(
                "{} vs {} messages, reduction {:.0}%, physical fraction {:.2} vs {:.2}",
                v,
                p,
                reduction * 100.0,
                physical_fraction(&vpe_stream, &trace.catalog),
                physical_fraction(&ppe_stream, &trace.catalog)
            ),
        ));
    }
    let mean_reduction = reductions.iter().sum::<f64>() / reductions.len() as f64;
    rows.push((
        "mean volume reduction".to_string(),
        format!("{:.0}% (paper: 77%)", mean_reduction * 100.0),
    ));
    println!("{}", format_kv("vPE vs pPE syslog volume", &rows));

    args.maybe_write_json(&serde_json::json!({
        "mean_reduction": mean_reduction,
        "paper_reduction": 0.77,
    }));
}
