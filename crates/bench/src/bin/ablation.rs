//! Ablation study of the design choices the paper fixes without a full
//! sensitivity analysis (listed in DESIGN.md):
//!
//! * window length k (the number of preceding templates the LSTM sees);
//! * the inter-arrival gap feature (the paper feeds `(m_i, t_i-t_{i-1})`
//!   tuples rather than bare template ids);
//! * minority-pattern over-sampling rounds (§4.2);
//! * the warning-cluster rule (>= 2 anomalies within a minute, §5.1)
//!   versus alerting on single anomalies.
//!
//! Each variant runs the identical pipeline; the table reports the
//! operating-point F-measure, precision, recall, and false alarms/day.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin ablation [-- --fast]
//! ```

use nfv_bench::BenchArgs;
use nfv_detect::eval;
use nfv_detect::pipeline::{run_pipeline, DetectorKind, PipelineConfig};
use nfv_simnet::FleetTrace;

fn evaluate(trace: &FleetTrace, cfg: &PipelineConfig) -> (f32, f32, f32, f32) {
    let run = run_pipeline(trace, cfg).unwrap();
    let curve = eval::sweep_prc(&run, &cfg.mapping, 32);
    match curve.best_f_point() {
        Some(best) => (
            best.f_measure,
            best.precision,
            best.recall,
            eval::false_alarms_per_day(&run, &cfg.mapping, best.threshold),
        ),
        None => (0.0, 0.0, 0.0, 0.0),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let trace = FleetTrace::simulate(args.sim_config());
    eprintln!("simulated {} messages, {} tickets", trace.total_messages(), trace.tickets.len());

    let base = args.pipeline_config(DetectorKind::Lstm);
    let variants: Vec<(String, PipelineConfig)> = vec![
        ("reference".into(), base.clone()),
        ("window k=4".into(), {
            let mut c = base.clone();
            c.lstm.window = 4;
            c
        }),
        ("window k=20".into(), {
            let mut c = base.clone();
            c.lstm.window = 20;
            c
        }),
        ("no gap feature".into(), {
            let mut c = base.clone();
            c.lstm.use_gap_feature = false;
            c
        }),
        ("no oversampling".into(), {
            let mut c = base.clone();
            c.lstm.oversample_rounds = 0;
            c
        }),
        ("single-anomaly warnings".into(), {
            let mut c = base.clone();
            c.mapping.min_cluster = 1;
            c
        }),
    ];

    println!("variant\tf\tprecision\trecall\tfalse_alarms_per_day");
    let mut json = serde_json::Map::new();
    for (name, cfg) in variants {
        let (f, p, r, fa) = evaluate(&trace, &cfg);
        println!("{}\t{:.3}\t{:.3}\t{:.3}\t{:.2}", name, f, p, r, fa);
        json.insert(name, serde_json::json!({ "f": f, "p": p, "r": r, "fa_per_day": fa }));
    }
    args.maybe_write_json(&serde_json::Value::Object(json));
}
