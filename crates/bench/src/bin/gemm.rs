//! GEMM backend micro-benchmark: the packed/SIMD kernels behind the
//! `matmul_*` entry points against faithful copies of the pre-PR scalar
//! loops, swept over the exact matrix shapes the paper's detectors
//! train with.
//!
//! The sweep covers every product the 2-layer LSTM training step issues
//! (gate forward `x·Wx` / `h·Wh`, head forward, BPTT weight gradients
//! `xᵀ·dz` / `hᵀ·dz`, and the `dz·Wᵀ` input deltas) plus the
//! autoencoder baseline's dense layers. Each shape is checked for
//! agreement against the old kernel before timing — bitwise under
//! default features, tolerance under `fast-gemm` — so the speedup can
//! never come from computing something different.
//!
//! `--min-speedup X` gates on the **geometric mean over the LSTM
//! training shapes** (the fleet hot path); the autoencoder shapes are
//! reported but not gated.
//!
//! ```text
//! cargo run --release -p nfv-bench --bin gemm -- \
//!     [--fast] [--seed N] [--json PATH] [--min-speedup X]
//! ```

use nfv_tensor::{gemm, Matrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

// ---------------------------------------------------------------------
// Pre-PR reference kernels (the loops `Matrix::matmul_*` shipped before
// the packed backend, zero-skips and unrolling included).
// ---------------------------------------------------------------------

fn old_matmul_acc(lhs: &Matrix, rhs: &Matrix, out: &mut Matrix) {
    let n = rhs.cols();
    let cols = lhs.cols();
    for i in 0..lhs.rows() {
        let lhs_row = lhs.row(i);
        let out_row = out.row_mut(i);
        let base = rhs.as_slice();
        let mut k = 0;
        while k + 4 <= cols {
            let (a0, a1, a2, a3) = (lhs_row[k], lhs_row[k + 1], lhs_row[k + 2], lhs_row[k + 3]);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                k += 4;
                continue;
            }
            let r0 = &base[k * n..(k + 1) * n];
            let r1 = &base[(k + 1) * n..(k + 2) * n];
            let r2 = &base[(k + 2) * n..(k + 3) * n];
            let r3 = &base[(k + 3) * n..(k + 4) * n];
            for j in 0..n {
                let mut acc = out_row[j];
                acc += a0 * r0[j];
                acc += a1 * r1[j];
                acc += a2 * r2[j];
                acc += a3 * r3[j];
                out_row[j] = acc;
            }
            k += 4;
        }
        while k < cols {
            let a = lhs_row[k];
            if a != 0.0 {
                let rhs_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
            k += 1;
        }
    }
}

fn old_matmul_tn_acc(lhs: &Matrix, rhs: &Matrix, out: &mut Matrix) {
    let n = rhs.cols();
    let mut i = 0;
    while i + 2 <= lhs.rows() {
        let l0 = lhs.row(i);
        let l1 = lhs.row(i + 1);
        let r0 = rhs.row(i);
        let r1 = rhs.row(i + 1);
        for k in 0..lhs.cols() {
            let (a0, a1) = (l0[k], l1[k]);
            if a0 == 0.0 && a1 == 0.0 {
                continue;
            }
            let out_row = out.row_mut(k);
            for j in 0..n {
                let mut acc = out_row[j];
                acc += a0 * r0[j];
                acc += a1 * r1[j];
                out_row[j] = acc;
            }
        }
        i += 2;
    }
    if i < lhs.rows() {
        let lhs_row = lhs.row(i);
        let rhs_row = rhs.row(i);
        for (k, &a) in lhs_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let out_row = out.row_mut(k);
            for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                *o += a * b;
            }
        }
    }
}

fn old_matmul_nt_into(lhs: &Matrix, rhs: &Matrix, out: &mut Matrix) {
    out.reset(lhs.rows(), rhs.rows());
    for i in 0..lhs.rows() {
        for j in 0..rhs.rows() {
            let mut acc = 0.0f32;
            for (a, b) in lhs.row(i).iter().zip(rhs.row(j).iter()) {
                acc += a * b;
            }
            out.set(i, j, acc);
        }
    }
}

// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Form {
    Nn,
    Tn,
    Nt,
}

struct Case {
    /// "lstm" cases are gated by `--min-speedup`; "autoencoder" cases are
    /// informational.
    group: &'static str,
    name: &'static str,
    form: Form,
    /// lhs shape; rhs shape follows from the form and `n`.
    m: usize,
    k: usize,
    n: usize,
}

/// The default detector configuration: `SequenceModelConfig` vocab 64,
/// embed 16 (+1 gap feature), hidden 32, 2 LSTM layers, batch 64 — and
/// the autoencoder baseline's `[vocab, 32, 8, 32, vocab]` stack.
fn cases() -> Vec<Case> {
    let (batch, in0, hidden, vocab) = (64usize, 17usize, 32usize, 64usize);
    let gates = 4 * hidden;
    vec![
        Case { group: "lstm", name: "fwd x·Wx (l0)", form: Form::Nn, m: batch, k: in0, n: gates },
        Case {
            group: "lstm",
            name: "fwd x·Wx (l1)",
            form: Form::Nn,
            m: batch,
            k: hidden,
            n: gates,
        },
        Case { group: "lstm", name: "fwd h·Wh", form: Form::Nn, m: batch, k: hidden, n: gates },
        Case { group: "lstm", name: "fwd head", form: Form::Nn, m: batch, k: hidden, n: vocab },
        Case {
            group: "lstm", name: "bptt xᵀ·dz (l0)", form: Form::Tn, m: batch, k: in0, n: gates
        },
        Case {
            group: "lstm", name: "bptt hᵀ·dz", form: Form::Tn, m: batch, k: hidden, n: gates
        },
        Case { group: "lstm", name: "bptt dz·Wxᵀ", form: Form::Nt, m: batch, k: gates, n: in0 },
        Case {
            group: "lstm", name: "bptt dz·Whᵀ", form: Form::Nt, m: batch, k: gates, n: hidden
        },
        Case { group: "autoencoder", name: "enc v·W1", form: Form::Nn, m: batch, k: vocab, n: 32 },
        Case { group: "autoencoder", name: "enc h·W2", form: Form::Nn, m: batch, k: 32, n: 8 },
        Case { group: "autoencoder", name: "dec h·W4", form: Form::Nn, m: batch, k: 32, n: vocab },
        Case {
            group: "autoencoder",
            name: "grad hᵀ·dz",
            form: Form::Tn,
            m: batch,
            k: 32,
            n: vocab,
        },
    ]
}

struct Args {
    fast: bool,
    seed: u64,
    json: Option<String>,
    min_speedup: Option<f32>,
}

fn parse_args() -> Args {
    let mut out = Args { fast: false, seed: 1, json: None, min_speedup: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => out.fast = true,
            "--seed" => {
                out.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    usage("--seed needs an integer");
                })
            }
            "--json" => {
                out.json = Some(args.next().unwrap_or_else(|| usage("--json needs a path")))
            }
            "--min-speedup" => {
                out.min_speedup =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        usage("--min-speedup needs a number");
                    }))
            }
            other => usage(&format!("unknown flag {:?}", other)),
        }
    }
    out
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {}", msg);
    eprintln!("usage: gemm [--fast] [--seed N] [--json PATH] [--min-speedup X]");
    std::process::exit(2)
}

fn random_matrix(rng: &mut SmallRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 2.0 - 1.0)
}

/// Times `f` over enough repetitions to fill roughly `budget_ms`, then
/// reports the mean per call in nanoseconds (best of `reps` batches).
fn time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

fn main() {
    let args = parse_args();
    let (reps, iters) = if args.fast { (3, 400) } else { (7, 4000) };
    let mut rng = SmallRng::seed_from_u64(args.seed);
    let exact = gemm::default_backend_bit_exact();

    println!("kernel\t{}", gemm::active_kernel());
    println!(
        "{:<12} {:<18} {:>14} {:>12} {:>12} {:>9}",
        "group", "case", "shape", "old ns", "new ns", "speedup"
    );

    let mut rows_json = Vec::new();
    let mut lstm_log_sum = 0.0f64;
    let mut lstm_count = 0usize;
    for case in cases() {
        let (m, k, n) = (case.m, case.k, case.n);
        let a = random_matrix(&mut rng, m, k);
        let (b, shape) = match case.form {
            Form::Nn => (random_matrix(&mut rng, k, n), format!("{}x{}·{}x{}", m, k, k, n)),
            // tn: lhs is the k-major activation matrix (m rows shared).
            Form::Tn => (random_matrix(&mut rng, m, n), format!("{}x{}ᵀ·{}x{}", m, k, m, n)),
            Form::Nt => (random_matrix(&mut rng, n, k), format!("{}x{}·{}x{}ᵀ", m, k, n, k)),
        };

        // Agreement check before timing: the speedup must not come from
        // different math.
        let (mut new_out, mut old_out) = (Matrix::default(), Matrix::default());
        match case.form {
            Form::Nn => {
                a.matmul_into(&b, &mut new_out);
                old_out.reset(m, n);
                old_out.fill_zero();
                old_matmul_acc(&a, &b, &mut old_out);
            }
            Form::Tn => {
                a.matmul_tn_into(&b, &mut new_out);
                old_out.reset(k, n);
                old_out.fill_zero();
                old_matmul_tn_acc(&a, &b, &mut old_out);
            }
            Form::Nt => {
                a.matmul_nt_into(&b, &mut new_out);
                old_matmul_nt_into(&a, &b, &mut old_out);
            }
        }
        assert_eq!(new_out.shape(), old_out.shape(), "{}: shape drift", case.name);
        for (i, (x, y)) in new_out.as_slice().iter().zip(old_out.as_slice().iter()).enumerate() {
            if exact {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}: element {} diverged from the pre-PR kernel: {} vs {}",
                    case.name,
                    i,
                    x,
                    y
                );
            } else {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                    "{}: element {} beyond fast-gemm tolerance: {} vs {}",
                    case.name,
                    i,
                    x,
                    y
                );
            }
        }

        let mut out = Matrix::default();
        let old_ns = match case.form {
            Form::Nn => time_ns(reps, iters, || {
                out.reset(m, n);
                out.fill_zero();
                old_matmul_acc(&a, &b, &mut out);
            }),
            Form::Tn => time_ns(reps, iters, || {
                out.reset(k, n);
                out.fill_zero();
                old_matmul_tn_acc(&a, &b, &mut out);
            }),
            Form::Nt => time_ns(reps, iters, || old_matmul_nt_into(&a, &b, &mut out)),
        };
        let new_ns = match case.form {
            Form::Nn => time_ns(reps, iters, || a.matmul_into(&b, &mut out)),
            Form::Tn => time_ns(reps, iters, || a.matmul_tn_into(&b, &mut out)),
            Form::Nt => time_ns(reps, iters, || a.matmul_nt_into(&b, &mut out)),
        };
        let speedup = old_ns / new_ns;
        if case.group == "lstm" {
            lstm_log_sum += speedup.ln();
            lstm_count += 1;
        }
        println!(
            "{:<12} {:<18} {:>14} {:>12.0} {:>12.0} {:>8.2}x",
            case.group, case.name, shape, old_ns, new_ns, speedup
        );
        rows_json.push(serde_json::json!({
            "group": case.group,
            "case": case.name,
            "shape": shape,
            "old_ns": old_ns,
            "new_ns": new_ns,
            "speedup": speedup,
        }));
    }

    let lstm_geomean = (lstm_log_sum / lstm_count as f64).exp();
    println!("lstm geomean speedup\t{:.2}x", lstm_geomean);

    if let Some(path) = &args.json {
        let value = serde_json::json!({
            "bench": "gemm",
            "kernel": gemm::active_kernel(),
            "bit_exact_default_backend": exact,
            "config": {
                "seed": args.seed,
                "fast": args.fast,
                "reps": reps,
                "iters": iters,
            },
            "cases": rows_json,
            "lstm_geomean_speedup": lstm_geomean,
        });
        std::fs::write(path, serde_json::to_string_pretty(&value).expect("serializable"))
            .unwrap_or_else(|e| eprintln!("failed to write {}: {}", path, e));
        eprintln!("wrote {}", path);
    }

    if let Some(min) = args.min_speedup {
        if (lstm_geomean as f32) < min {
            eprintln!("FAIL: lstm geomean speedup {:.2}x below required {:.2}x", lstm_geomean, min);
            std::process::exit(1);
        }
    }
}
