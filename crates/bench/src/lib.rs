//! Shared plumbing for the figure/table regeneration harnesses.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper (see DESIGN.md's per-experiment index). They share the command
//! line: `--fast` runs a scaled-down configuration for smoke testing,
//! `--seed N` changes the master seed, and `--json PATH` additionally
//! dumps the series as JSON for downstream plotting.

use nfv_detect::pipeline::{DetectorKind, PipelineConfig};
use nfv_simnet::{SimConfig, SimPreset};

/// Parsed harness arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Use the reduced configuration.
    pub fast: bool,
    /// Master seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Override the synthetic fleet size (`--vpes N`). Harnesses that
    /// scale with fleet size (notably `fleet10k`) honor this; the
    /// figure-regeneration binaries keep their preset sizes unless
    /// overridden.
    pub vpes: Option<usize>,
}

impl BenchArgs {
    /// Parses `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> BenchArgs {
        Self::parse_with(|_| false)
    }

    /// Parses `std::env::args`, letting the caller consume
    /// binary-specific flags first: `extra` sees each unrecognized flag
    /// (with the remaining args iterator available via its own state)
    /// and returns true when it handled it.
    pub fn parse_with(mut extra: impl FnMut(&str) -> bool) -> BenchArgs {
        let mut out = BenchArgs { fast: false, seed: 42, json: None, vpes: None };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--fast" => out.fast = true,
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--json" => {
                    out.json = Some(args.next().unwrap_or_else(|| usage("--json needs a path")));
                }
                "--vpes" => {
                    out.vpes = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--vpes needs an integer")),
                    );
                }
                other if extra(other) => {}
                other => usage(&format!("unknown flag {:?}", other)),
            }
        }
        out
    }

    /// The simulation configuration for this run.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = if self.fast {
            let mut cfg = SimConfig::preset(SimPreset::Fast, self.seed);
            cfg.months = 4;
            cfg.n_vpes = 8;
            cfg
        } else {
            SimConfig::preset(SimPreset::Full, self.seed)
        };
        if let Some(v) = self.vpes {
            cfg.n_vpes = v;
        }
        cfg
    }

    /// A pipeline configuration scaled to the run size.
    pub fn pipeline_config(&self, detector: DetectorKind) -> PipelineConfig {
        let mut cfg = PipelineConfig { detector, seed: self.seed, ..Default::default() };
        if self.fast {
            cfg.lstm.epochs = 2;
            cfg.lstm.oversample_rounds = 1;
            cfg.lstm.hidden = 24;
            cfg.lstm.max_train_windows = 8_000;
            cfg.gru.epochs = 2;
            cfg.gru.oversample_rounds = 1;
            cfg.gru.hidden = 24;
            cfg.gru.max_train_windows = 8_000;
            cfg.autoencoder.epochs = 12;
        }
        cfg
    }

    /// Writes the JSON dump when `--json` was given.
    pub fn maybe_write_json(&self, value: &serde_json::Value) {
        if let Some(path) = &self.json {
            std::fs::write(path, serde_json::to_string_pretty(value).expect("serializable"))
                .unwrap_or_else(|e| eprintln!("failed to write {}: {}", path, e));
            eprintln!("wrote {}", path);
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {}", msg);
    eprintln!("usage: <bin> [--fast] [--seed N] [--json PATH] [--vpes N]");
    std::process::exit(2)
}
