//! # nfv-fail — deterministic failpoint injection
//!
//! A process-global registry of *named failpoints*: places in the
//! workspace's IO and durability paths that can be told, from a test,
//! the environment, or the CLI, to misbehave on purpose. The point of
//! the crate is to make fault handling *testable and reproducible*:
//! the same spec and seed always fire the same faults at the same
//! evaluation indices, so a chaos run is replayable bit for bit.
//!
//! ## Usage
//!
//! Production code drops an evaluation at each boundary it wants to be
//! probeable:
//!
//! ```
//! match nfv_fail::point("ckpt.save.rename") {
//!     nfv_fail::Outcome::Pass => { /* carry on */ }
//!     nfv_fail::Outcome::Err => { /* pretend the rename failed */ }
//!     nfv_fail::Outcome::Torn(frac) => { /* write only `frac` of the bytes */ }
//! }
//! ```
//!
//! Tests (or `NFV_FAILPOINTS=...` / `nfvpredict ... --failpoints ...`)
//! arm the registry with a spec string:
//!
//! ```text
//! ckpt.save.rename=err(2);serve.heartbeat=delay(40);bundle.load=err@0.5
//! ```
//!
//! Grammar per entry: `name=policy` where policy is one of
//!
//! * `err` / `err(n)` — the first `n` firings (default 1) report
//!   [`Outcome::Err`]; later evaluations pass. Models a transient IO
//!   error that heals.
//! * `delay(ms)` — every firing sleeps `ms` milliseconds, then passes.
//!   Models a stalled disk or a descheduled thread.
//! * `torn` / `torn(frac)` — the first firing (default `frac` = 0.5)
//!   reports [`Outcome::Torn`]; the caller is expected to persist only
//!   that fraction of its bytes. Models a crash mid-write.
//! * `panic` — the first firing panics. Models a bug in the IO path
//!   itself; used to prove containment.
//! * `off` — explicitly disarms the point (useful to override an env
//!   spec from the CLI).
//!
//! Any policy takes an optional `@p` probability suffix (`0 < p <= 1`).
//! Whether a given evaluation fires is a pure function of the global
//! seed ([`set_seed`] / `NFV_FAILPOINTS_SEED`), the point name, and the
//! evaluation index — never of wall-clock or thread timing.
//!
//! ## Zero cost when idle
//!
//! [`point`] starts with one relaxed atomic load; when no spec has been
//! installed it returns [`Outcome::Pass`] without touching a lock, so
//! leaving failpoints compiled into release binaries costs a
//! well-predicted branch per evaluation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint tells its caller to do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Proceed normally (the point is unarmed, out of budget, or the
    /// probability gate said no this time).
    Pass,
    /// Pretend the operation failed with a transient error.
    Err,
    /// Persist only this fraction of the bytes, then report success —
    /// a torn write the next reader must detect by checksum.
    Torn(f32),
}

/// The canonical names of every failpoint wired into the workspace.
/// Chaos sweeps iterate this list; new wiring should extend it.
pub const KNOWN_POINTS: &[&str] = &[
    "ckpt.save",
    "ckpt.save.create",
    "ckpt.save.write",
    "ckpt.save.rename",
    "ckpt.load",
    "bundle.save.rename",
    "bundle.load",
    "serve.snapshot.rename",
    "serve.snapshot.load",
    "serve.heartbeat",
    "pool.spawn",
];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    Err,
    Delay(u64),
    Torn(f32),
    Panic,
    Off,
}

#[derive(Debug, Clone)]
struct Point {
    action: Action,
    /// Remaining firings; `None` = unlimited (delay defaults to this).
    remaining: Option<u64>,
    /// Per-evaluation firing probability (1.0 = always).
    prob: f64,
    /// Evaluations seen while armed (the RNG stream position).
    hits: u64,
    /// Evaluations that actually fired.
    fired: u64,
}

#[derive(Default)]
struct Registry {
    seed: u64,
    points: HashMap<String, Point>,
}

/// Fast-path gate: false until the first successful [`configure`].
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

/// SplitMix64: cheap, high-quality, and stateless given the inputs.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic per-evaluation coin flip in `[0, 1)`.
fn roll(seed: u64, name: &str, hit: u64) -> f64 {
    let z = mix(seed ^ fnv1a64(name) ^ hit.wrapping_mul(0x2545_f491_4f6c_dd1d));
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Evaluates the named failpoint. Unarmed points return
/// [`Outcome::Pass`] after a single atomic load. `delay` policies sleep
/// here; `panic` policies panic here; `err`/`torn` are returned for the
/// caller to act on.
pub fn point(name: &str) -> Outcome {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Outcome::Pass;
    }
    let (action, delay_ms) = {
        let mut reg = registry().lock().unwrap();
        let seed = reg.seed;
        let Some(p) = reg.points.get_mut(name) else {
            return Outcome::Pass;
        };
        let hit = p.hits;
        p.hits += 1;
        if p.action == Action::Off || p.remaining == Some(0) {
            return Outcome::Pass;
        }
        if p.prob < 1.0 && roll(seed, name, hit) >= p.prob {
            return Outcome::Pass;
        }
        if let Some(rem) = p.remaining.as_mut() {
            *rem -= 1;
        }
        p.fired += 1;
        match p.action {
            Action::Delay(ms) => (Action::Delay(ms), ms),
            other => (other, 0),
        }
    };
    // Lock released before sleeping or unwinding.
    match action {
        Action::Err => Outcome::Err,
        Action::Torn(frac) => Outcome::Torn(frac),
        Action::Delay(_) => {
            std::thread::sleep(Duration::from_millis(delay_ms));
            Outcome::Pass
        }
        Action::Panic => panic!("failpoint {name:?} fired a panic policy"),
        Action::Off => Outcome::Pass,
    }
}

/// Convenience for IO boundaries that only distinguish pass/fail:
/// returns a transient `io::Error` on [`Outcome::Err`] (and treats a
/// torn outcome as an error too — the caller is not a writer).
pub fn io_check(name: &str) -> std::io::Result<()> {
    match point(name) {
        Outcome::Pass => Ok(()),
        Outcome::Err | Outcome::Torn(_) => {
            Err(std::io::Error::other(format!("failpoint {name} injected a transient error")))
        }
    }
}

/// Parses and installs a spec (see the module docs for the grammar).
/// Entries are additive over the current registry; an entry for an
/// already-armed name replaces it. Returns a description of the first
/// malformed entry, installing nothing in that case.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (name, policy) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry {entry:?} is missing '='"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("failpoint entry {entry:?} has an empty name"));
        }
        parsed.push((name.to_string(), parse_policy(policy.trim())?));
    }
    let mut reg = registry().lock().unwrap();
    for (name, point) in parsed {
        reg.points.insert(name, point);
    }
    if !reg.points.is_empty() {
        ACTIVE.store(true, Ordering::Relaxed);
    }
    Ok(())
}

fn parse_policy(policy: &str) -> Result<Point, String> {
    let (body, prob) = match policy.split_once('@') {
        Some((body, p)) => {
            let prob: f64 = p
                .trim()
                .parse()
                .ok()
                .filter(|p| *p > 0.0 && *p <= 1.0)
                .ok_or_else(|| format!("bad probability {p:?} (want 0 < p <= 1)"))?;
            (body.trim(), prob)
        }
        None => (policy, 1.0),
    };
    let (kind, arg) = match body.split_once('(') {
        Some((kind, rest)) => {
            let arg =
                rest.strip_suffix(')').ok_or_else(|| format!("unclosed argument in {body:?}"))?;
            (kind.trim(), Some(arg.trim()))
        }
        None => (body, None),
    };
    let num = |what: &str| -> Result<f64, String> {
        arg.ok_or_else(|| format!("{kind} needs an argument"))?
            .parse::<f64>()
            .map_err(|_| format!("bad {what} in {body:?}"))
    };
    let (action, remaining) = match kind {
        "err" => {
            let n = match arg {
                Some(_) => num("count")? as u64,
                None => 1,
            };
            (Action::Err, Some(n))
        }
        "delay" => (Action::Delay(num("delay in ms")? as u64), None),
        "torn" => {
            let frac = match arg {
                Some(_) => num("fraction")?,
                None => 0.5,
            };
            if !(0.0..=1.0).contains(&frac) {
                return Err(format!("torn fraction must be in [0, 1], got {frac}"));
            }
            (Action::Torn(frac as f32), Some(1))
        }
        "panic" => (Action::Panic, Some(1)),
        "off" => (Action::Off, None),
        other => return Err(format!("unknown failpoint policy {other:?}")),
    };
    Ok(Point { action, remaining, prob, hits: 0, fired: 0 })
}

/// Sets the global seed that drives `@p` probability gates.
pub fn set_seed(seed: u64) {
    registry().lock().unwrap().seed = seed;
}

/// Installs the spec from `NFV_FAILPOINTS` (and the seed from
/// `NFV_FAILPOINTS_SEED`) when present. Call once at process start.
pub fn init_from_env() -> Result<(), String> {
    if let Ok(seed) = std::env::var("NFV_FAILPOINTS_SEED") {
        let seed =
            seed.parse().map_err(|_| format!("NFV_FAILPOINTS_SEED {seed:?} is not a u64"))?;
        set_seed(seed);
    }
    match std::env::var("NFV_FAILPOINTS") {
        Ok(spec) => configure(&spec),
        Err(_) => Ok(()),
    }
}

/// True when at least one point has ever been armed this process.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Disarms every point and resets hit counters. The fast-path gate
/// stays open for the life of the process once armed (re-closing it
/// would race concurrent evaluations); an empty registry still passes.
pub fn clear() {
    registry().lock().unwrap().points.clear();
}

/// Evaluations seen by a point while armed (0 if never armed).
pub fn hits(name: &str) -> u64 {
    registry().lock().unwrap().points.get(name).map_or(0, |p| p.hits)
}

/// Evaluations on which the point actually fired its policy.
pub fn fired(name: &str) -> u64 {
    registry().lock().unwrap().points.get(name).map_or(0, |p| p.fired)
}

/// Names currently armed, sorted — for diagnostics and sweep drivers.
pub fn armed() -> Vec<String> {
    let mut names: Vec<String> = registry().lock().unwrap().points.keys().cloned().collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global; tests must not interleave.
    fn lock() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        let guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        guard
    }

    #[test]
    fn unarmed_points_pass() {
        let _g = lock();
        assert_eq!(point("never.configured"), Outcome::Pass);
    }

    #[test]
    fn err_budget_is_consumed_then_heals() {
        let _g = lock();
        configure("a.b=err(2)").unwrap();
        assert_eq!(point("a.b"), Outcome::Err);
        assert_eq!(point("a.b"), Outcome::Err);
        assert_eq!(point("a.b"), Outcome::Pass);
        assert_eq!(hits("a.b"), 3);
        assert_eq!(fired("a.b"), 2);
    }

    #[test]
    fn torn_fires_once_with_fraction() {
        let _g = lock();
        configure("w=torn(0.25)").unwrap();
        assert_eq!(point("w"), Outcome::Torn(0.25));
        assert_eq!(point("w"), Outcome::Pass);
    }

    #[test]
    fn probability_stream_is_deterministic() {
        let _g = lock();
        let run = || -> Vec<Outcome> {
            clear();
            set_seed(42);
            configure("p=err(1000000)@0.5").unwrap();
            (0..64).map(|_| point("p")).collect()
        };
        let first = run();
        assert_eq!(first, run(), "same seed must give the same firing stream");
        let fired = first.iter().filter(|o| **o == Outcome::Err).count();
        assert!((10..=54).contains(&fired), "p=0.5 over 64 rolls fired {fired} times");
    }

    #[test]
    fn off_disarms_and_bad_specs_are_rejected() {
        let _g = lock();
        configure("x=err(5)").unwrap();
        configure("x=off").unwrap();
        assert_eq!(point("x"), Outcome::Pass);
        assert!(configure("noequals").is_err());
        assert!(configure("x=bogus(1)").is_err());
        assert!(configure("x=err(2").is_err());
        assert!(configure("x=err@1.5").is_err());
        assert!(configure("x=torn(2.0)").is_err());
    }

    #[test]
    fn panic_policy_panics_and_is_catchable() {
        let _g = lock();
        configure("boom=panic").unwrap();
        let caught = std::panic::catch_unwind(|| point("boom"));
        assert!(caught.is_err());
        assert_eq!(point("boom"), Outcome::Pass, "panic budget is one-shot");
    }
}
