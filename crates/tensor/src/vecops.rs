//! Free functions on `&[f32]` vectors: dot products, norms, softmax,
//! normalization, and distances used across the workspace.

/// Dot product of two equal-length vectors.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two vectors.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Cosine similarity; returns 0 when either vector is all zeros.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Numerically-stable softmax into a fresh vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Index of the maximum element. Returns `None` for an empty slice.
pub fn argmax(a: &[f32]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in a.iter().enumerate() {
        if v > a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Indices of the `k` largest elements, in descending value order.
pub fn top_k(a: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| a[j].partial_cmp(&a[i]).unwrap_or(std::cmp::Ordering::Equal));
    idx.truncate(k);
    idx
}

/// Scales `a` in place so it sums to one. A zero vector is left untouched.
pub fn normalize_l1(a: &mut [f32]) {
    let sum: f32 = a.iter().sum();
    if sum != 0.0 {
        let inv = 1.0 / sum;
        for v in a.iter_mut() {
            *v *= inv;
        }
    }
}

/// Scales `a` in place to unit L2 norm. A zero vector is left untouched.
pub fn normalize_l2(a: &mut [f32]) {
    let n = norm2(a);
    if n != 0.0 {
        let inv = 1.0 / n;
        for v in a.iter_mut() {
            *v *= inv;
        }
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f32>() / a.len() as f32
    }
}

/// Population variance; 0 for slices with fewer than two elements.
pub fn variance(a: &[f32]) -> f32 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / a.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn cosine_similarity_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.0, 1.0, 2.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn argmax_and_top_k() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(top_k(&[0.1, 0.9, 0.5, 0.7], 2), vec![1, 3]);
        assert_eq!(top_k(&[0.1, 0.2], 5), vec![1, 0]);
    }

    #[test]
    fn normalization() {
        let mut a = [2.0, 2.0];
        normalize_l1(&mut a);
        assert_eq!(a, [0.5, 0.5]);
        let mut b = [3.0, 4.0];
        normalize_l2(&mut b);
        assert!((norm2(&b) - 1.0).abs() < 1e-6);
        let mut z = [0.0, 0.0];
        normalize_l1(&mut z);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn mean_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, [3.0, 5.0]);
    }
}
