//! A dense, row-major `f32` matrix and the kernels used by the neural
//! network and classical ML crates.

use std::fmt;

/// Dense row-major matrix of `f32`.
///
/// The element at row `r`, column `c` lives at `data[r * cols + c]`.
/// All binary operations assert shape compatibility.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", &self.data[r * self.cols..(r + 1) * self.cols])?;
            }
        }
        Ok(())
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix; useful as a placeholder in reusable
    /// scratch structures that are shaped on first use via
    /// [`Matrix::reset`].
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair, handy for assertions.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {} out of bounds ({} rows)", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {} out of bounds ({} rows)", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row: length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Extracts column `c` as a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col index {} out of bounds ({} cols)", c, self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns a new matrix containing rows `[start, end)`.
    pub fn rows_range(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "rows_range out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Reshapes `self` to `rows x cols`, reusing the allocation where
    /// possible. Element contents are **unspecified** afterwards — callers
    /// must overwrite every element (or call [`Matrix::fill_zero`]).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        if self.data.len() != n {
            self.data.resize(n, 0.0);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Makes `self` an exact copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.reset(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Gathers the given rows into a new matrix (used for mini-batching).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Gathers the given rows into `out` (reshaped to `indices.len() x cols`).
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.reset(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
    }

    /// Adds each row of `src` into `self`'s row `indices[r]` (the sparse
    /// row scatter used by embedding-table gradients).
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Matrix) {
        assert_eq!(src.rows, indices.len(), "scatter_add_rows: row count mismatch");
        assert_eq!(src.cols, self.cols, "scatter_add_rows: width mismatch");
        for (r, &id) in indices.iter().enumerate() {
            assert!(
                id < self.rows,
                "scatter_add_rows: row {} out of bounds ({} rows)",
                id,
                self.rows
            );
            for (d, &s) in self.row_mut(id).iter_mut().zip(src.row(r).iter()) {
                *d += s;
            }
        }
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Writes `self * rhs` into `out` (reshaped to `rows x rhs.cols`).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        out.reset(self.rows, rhs.cols);
        out.fill_zero();
        self.matmul_acc(rhs, out);
    }

    /// Accumulates `self * rhs` into `out`: `out += self * rhs`.
    ///
    /// Dispatches into the packed [`crate::gemm`] backend. Each output
    /// element accumulates in ascending-k order with unfused multiplies,
    /// so default-feature results are bit-identical to a scalar i-k-j
    /// loop; a NaN/Inf anywhere in the operands always propagates (there
    /// is deliberately no zero-skip fast path).
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul_acc: out shape mismatch");
        crate::gemm::gemm_nn_acc(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Matrix product `self^T * rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// Writes `self^T * rhs` into `out` (reshaped to `cols x rhs.cols`).
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        out.reset(self.cols, rhs.cols);
        out.fill_zero();
        self.matmul_tn_acc(rhs, out);
    }

    /// Accumulates `self^T * rhs` into `out`: `out += self^T * rhs`.
    ///
    /// Dispatches into the packed [`crate::gemm`] backend; per-element
    /// accumulation stays in ascending shared-row order (bit-exact vs.
    /// the scalar loop under default features), and non-finite operands
    /// always propagate.
    pub fn matmul_tn_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: row counts differ ({}x{} ^T * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.cols, rhs.cols), "matmul_tn_acc: out shape mismatch");
        crate::gemm::gemm_tn_acc(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Matrix product `self * rhs^T` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// Writes `self * rhs^T` into `out` (reshaped to `rows x rhs.rows`).
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: column counts differ ({}x{} * {}x{}^T)",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reset(self.rows, rhs.rows);
        out.fill_zero();
        crate::gemm::gemm_nt_acc(
            self.rows,
            self.cols,
            rhs.rows,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose of `self` into `out` (reshaped to `cols x rows`).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reset(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Elementwise in-place addition: `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise in-place subtraction: `self -= rhs`.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }

    /// In-place scaled addition: `self += alpha * rhs` (BLAS `axpy`).
    pub fn scaled_add_assign(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "scaled_add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Writes `self + alpha * rhs` into `out` (reshaped to match `self`).
    pub fn add_scaled_into(&self, alpha: f32, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled_into: shape mismatch");
        out.reset(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(self.data.iter()).zip(rhs.data.iter()) {
            *o = a + alpha * b;
        }
    }

    /// Elementwise (Hadamard) product into a new matrix.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard: shape mismatch");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds `row` to every row of `self` (bias broadcast).
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "add_row_broadcast: width mismatch");
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(row.iter()) {
                *a += b;
            }
        }
    }

    /// Sums over rows, producing a length-`cols` vector (bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &a) in out.iter_mut().zip(self.row(r).iter()) {
                *o += a;
            }
        }
        out
    }

    /// Accumulates the column-wise sums of `self` into `out`, a `1 x cols`
    /// row vector: `out += sum_rows(self)`.
    pub fn sum_rows_acc(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (1, self.cols), "sum_rows_acc: out shape mismatch");
        for r in 0..self.rows {
            for (o, &a) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += a;
            }
        }
    }

    /// Writes the column-wise sums of `self` into `out` (reshaped to `1 x cols`).
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.reset(1, self.cols);
        out.fill_zero();
        self.sum_rows_acc(out);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &a| m.max(a.abs()))
    }

    /// In-place row-wise softmax (numerically stabilized).
    pub fn softmax_rows_inplace(&mut self) {
        let cols = self.cols;
        for r in 0..self.rows {
            let row = &mut self.data[r * cols..(r + 1) * cols];
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// Index of the maximum element of each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Clips every element into `[-limit, limit]` (gradient clipping).
    pub fn clip_inplace(&mut self, limit: f32) {
        assert!(limit > 0.0, "clip limit must be positive");
        for a in &mut self.data {
            *a = a.clamp(-limit, limit);
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Stacks matrices vertically. All inputs must have the same width.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack: no inputs");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack: width mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Concatenates matrices horizontally. All inputs must have the same height.
    pub fn hstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hstack: no inputs");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack: height mismatch");
                out.data[r * cols + off..r * cols + off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
        assert_eq!(i.matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f32 * 0.5);
        let b = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.25);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f32 * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.25);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 31 + c * 7) as f32);
        assert_eq!(a.transpose().transpose().as_slice(), a.as_slice());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_argmax() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 5.0, 0.0]);
        let argmax_before = m.argmax_rows();
        m.softmax_rows_inplace();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {} sums to {}", r, s);
        }
        assert_eq!(m.argmax_rows(), argmax_before);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut m = Matrix::from_vec(1, 3, vec![1000.0, 1001.0, 999.0]);
        m.softmax_rows_inplace();
        assert!(!m.has_non_finite());
        assert_eq!(m.argmax_rows(), vec![1]);
    }

    #[test]
    fn broadcast_and_sum_rows_are_inverse_shapes() {
        let mut m = Matrix::zeros(3, 4);
        m.add_row_broadcast(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum_rows(), vec![3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn hstack_vstack_shapes_and_content() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 3, 2.0);
        let h = Matrix::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.row(0), &[1.0, 1.0, 2.0, 2.0, 2.0]);
        let c = Matrix::filled(1, 5, 3.0);
        let v = Matrix::vstack(&[&h, &c]);
        assert_eq!(v.shape(), (3, 5));
        assert_eq!(v.row(2), &[3.0; 5]);
    }

    #[test]
    fn gather_rows_picks_requested_rows() {
        let m = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32);
        let g = m.gather_rows(&[4, 0, 2]);
        assert_eq!(g.row(0), m.row(4));
        assert_eq!(g.row(1), m.row(0));
        assert_eq!(g.row(2), m.row(2));
    }

    #[test]
    fn clip_bounds_all_elements() {
        let mut m = Matrix::from_vec(1, 4, vec![-10.0, -0.5, 0.5, 10.0]);
        m.clip_inplace(1.0);
        assert_eq!(m.as_slice(), &[-1.0, -0.5, 0.5, 1.0]);
    }

    #[test]
    fn scaled_add_assign_axpy() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.scaled_add_assign(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0; 4]);
    }

    #[test]
    fn has_non_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(!m.has_non_finite());
        m.set(0, 1, f32::NAN);
        assert!(m.has_non_finite());
    }

    #[test]
    fn reset_reshapes_and_reuses_allocation() {
        let mut m = Matrix::zeros(3, 4);
        m.reset(2, 6);
        assert_eq!(m.shape(), (2, 6));
        assert_eq!(m.as_slice().len(), 12);
        m.reset(1, 3);
        assert_eq!(m.shape(), (1, 3));
        assert_eq!(m.as_slice().len(), 3);
    }

    #[test]
    fn copy_from_duplicates_contents() {
        let src = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let mut dst = Matrix::zeros(1, 1);
        dst.copy_from(&src);
        assert_eq!(dst.shape(), src.shape());
        assert_eq!(dst.as_slice(), src.as_slice());
    }

    #[test]
    fn into_kernels_match_allocating_variants() {
        let a = Matrix::from_fn(4, 5, |r, c| ((r * 5 + c) as f32 * 0.37).sin());
        let b = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f32 * 0.53).cos());
        let c = Matrix::from_fn(4, 5, |r, c| ((r + c) as f32 * 0.11).tan());

        let mut out = Matrix::zeros(9, 9); // wrong shape on purpose
        a.matmul_into(&b, &mut out);
        assert_eq!(out.as_slice(), a.matmul(&b).as_slice());

        a.matmul_tn_into(&c, &mut out);
        assert_eq!(out.as_slice(), a.matmul_tn(&c).as_slice());

        a.matmul_nt_into(&c, &mut out);
        assert_eq!(out.as_slice(), a.matmul_nt(&c).as_slice());

        a.transpose_into(&mut out);
        assert_eq!(out.as_slice(), a.transpose().as_slice());
    }

    #[test]
    fn acc_kernels_accumulate_on_top() {
        let a = Matrix::from_fn(3, 7, |r, c| (r as f32 - c as f32) * 0.25);
        let b = Matrix::from_fn(7, 2, |r, c| (r + c) as f32 * 0.1);
        let mut out = Matrix::filled(3, 2, 1.0);
        a.matmul_acc(&b, &mut out);
        let expect = a.matmul(&b);
        for (o, e) in out.as_slice().iter().zip(expect.as_slice().iter()) {
            assert!((o - (e + 1.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn unrolled_matmul_handles_odd_inner_dims() {
        // Inner dims that exercise the unroll remainder paths (1, 2, 3, 5).
        for k in [1usize, 2, 3, 5, 9] {
            let a = Matrix::from_fn(3, k, |r, c| ((r * k + c) as f32 * 0.3).sin());
            let b = Matrix::from_fn(k, 4, |r, c| ((r * 4 + c) as f32 * 0.7).cos());
            let mut manual = Matrix::zeros(3, 4);
            for i in 0..3 {
                for j in 0..4 {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += a.get(i, kk) * b.get(kk, j);
                    }
                    manual.set(i, j, acc);
                }
            }
            let fast = a.matmul(&b);
            for (f, m) in fast.as_slice().iter().zip(manual.as_slice().iter()) {
                assert!((f - m).abs() < 1e-5, "k={k}: {f} vs {m}");
            }
            // Odd row counts exercise the tn remainder row.
            let tn = a.matmul_tn(&a);
            let tn_ref = a.transpose().matmul(&a);
            for (f, m) in tn.as_slice().iter().zip(tn_ref.as_slice().iter()) {
                assert!((f - m).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn add_scaled_into_matches_axpy() {
        let a = Matrix::filled(2, 3, 1.0);
        let b = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let mut out = Matrix::zeros(1, 1);
        a.add_scaled_into(2.0, &b, &mut out);
        assert_eq!(out.shape(), (2, 3));
        assert_eq!(out.as_slice(), &[1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
    }

    #[test]
    fn gather_rows_into_and_scatter_add_roundtrip() {
        let m = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let mut g = Matrix::zeros(0, 0);
        m.gather_rows_into(&[4, 0, 4], &mut g);
        assert_eq!(g.shape(), (3, 3));
        assert_eq!(g.row(0), m.row(4));
        assert_eq!(g.row(2), m.row(4));

        let mut acc = Matrix::zeros(5, 3);
        acc.scatter_add_rows(&[4, 0, 4], &g);
        // Row 4 received itself twice, row 0 once.
        for c in 0..3 {
            assert_eq!(acc.get(4, c), 2.0 * m.get(4, c));
            assert_eq!(acc.get(0, c), m.get(0, c));
            assert_eq!(acc.get(1, c), 0.0);
        }
    }

    #[test]
    fn sum_rows_acc_accumulates() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let mut out = Matrix::zeros(1, 2);
        m.sum_rows_acc(&mut out);
        assert_eq!(out.as_slice(), &[6.0, 9.0]);
        m.sum_rows_acc(&mut out);
        assert_eq!(out.as_slice(), &[12.0, 18.0]);
        let mut fresh = Matrix::zeros(4, 4);
        m.sum_rows_into(&mut fresh);
        assert_eq!(fresh.shape(), (1, 2));
        assert_eq!(fresh.as_slice(), &[6.0, 9.0]);
    }
}
