//! A dense, row-major `f32` matrix and the kernels used by the neural
//! network and classical ML crates.

use std::fmt;

/// Dense row-major matrix of `f32`.
///
/// The element at row `r`, column `c` lives at `data[r * cols + c]`.
/// All binary operations assert shape compatibility.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", &self.data[r * self.cols..(r + 1) * self.cols])?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair, handy for assertions.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {} out of bounds ({} rows)", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {} out of bounds ({} rows)", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row: length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Extracts column `c` as a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col index {} out of bounds ({} cols)", c, self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns a new matrix containing rows `[start, end)`.
    pub fn rows_range(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "rows_range out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gathers the given rows into a new matrix (used for mini-batching).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.set_row(i, self.row(r));
        }
        out
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j order keeps the inner loop contiguous in both rhs and out.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self^T * rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: row counts differ ({}x{} ^T * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for i in 0..self.rows {
            let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let rhs_row = &rhs.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * rhs^T` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: column counts differ ({}x{} * {}x{}^T)",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let rhs_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0f32;
                for (a, b) in lhs_row.iter().zip(rhs_row.iter()) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise in-place addition: `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise in-place subtraction: `self -= rhs`.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }

    /// In-place scaled addition: `self += alpha * rhs` (BLAS `axpy`).
    pub fn scaled_add_assign(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "scaled_add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Elementwise (Hadamard) product into a new matrix.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard: shape mismatch");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds `row` to every row of `self` (bias broadcast).
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "add_row_broadcast: width mismatch");
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(row.iter()) {
                *a += b;
            }
        }
    }

    /// Sums over rows, producing a length-`cols` vector (bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &a) in out.iter_mut().zip(self.row(r).iter()) {
                *o += a;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &a| m.max(a.abs()))
    }

    /// In-place row-wise softmax (numerically stabilized).
    pub fn softmax_rows_inplace(&mut self) {
        let cols = self.cols;
        for r in 0..self.rows {
            let row = &mut self.data[r * cols..(r + 1) * cols];
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// Index of the maximum element of each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Clips every element into `[-limit, limit]` (gradient clipping).
    pub fn clip_inplace(&mut self, limit: f32) {
        assert!(limit > 0.0, "clip limit must be positive");
        for a in &mut self.data {
            *a = a.clamp(-limit, limit);
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Stacks matrices vertically. All inputs must have the same width.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack: no inputs");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack: width mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Concatenates matrices horizontally. All inputs must have the same height.
    pub fn hstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hstack: no inputs");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack: height mismatch");
                out.data[r * cols + off..r * cols + off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
        assert_eq!(i.matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f32 * 0.5);
        let b = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.25);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f32 * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.25);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 31 + c * 7) as f32);
        assert_eq!(a.transpose().transpose().as_slice(), a.as_slice());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_argmax() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 5.0, 0.0]);
        let argmax_before = m.argmax_rows();
        m.softmax_rows_inplace();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {} sums to {}", r, s);
        }
        assert_eq!(m.argmax_rows(), argmax_before);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut m = Matrix::from_vec(1, 3, vec![1000.0, 1001.0, 999.0]);
        m.softmax_rows_inplace();
        assert!(!m.has_non_finite());
        assert_eq!(m.argmax_rows(), vec![1]);
    }

    #[test]
    fn broadcast_and_sum_rows_are_inverse_shapes() {
        let mut m = Matrix::zeros(3, 4);
        m.add_row_broadcast(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum_rows(), vec![3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn hstack_vstack_shapes_and_content() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 3, 2.0);
        let h = Matrix::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.row(0), &[1.0, 1.0, 2.0, 2.0, 2.0]);
        let c = Matrix::filled(1, 5, 3.0);
        let v = Matrix::vstack(&[&h, &c]);
        assert_eq!(v.shape(), (3, 5));
        assert_eq!(v.row(2), &[3.0; 5]);
    }

    #[test]
    fn gather_rows_picks_requested_rows() {
        let m = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32);
        let g = m.gather_rows(&[4, 0, 2]);
        assert_eq!(g.row(0), m.row(4));
        assert_eq!(g.row(1), m.row(0));
        assert_eq!(g.row(2), m.row(2));
    }

    #[test]
    fn clip_bounds_all_elements() {
        let mut m = Matrix::from_vec(1, 4, vec![-10.0, -0.5, 0.5, 10.0]);
        m.clip_inplace(1.0);
        assert_eq!(m.as_slice(), &[-1.0, -0.5, 0.5, 1.0]);
    }

    #[test]
    fn scaled_add_assign_axpy() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.scaled_add_assign(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0; 4]);
    }

    #[test]
    fn has_non_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(!m.has_non_finite());
        m.set(0, 1, f32::NAN);
        assert!(m.has_non_finite());
    }
}
