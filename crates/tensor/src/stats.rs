//! Descriptive statistics used by the paper-reproduction figures:
//! empirical quantiles and CDFs (Fig 1b, Fig 3), histograms (Fig 1a),
//! and a running mean/variance accumulator.

/// Empirical quantile of `data` at `q` in `[0, 1]` using linear
/// interpolation between order statistics (type-7, the numpy default).
///
/// Returns `None` for an empty slice.
pub fn quantile(data: &[f32], q: f32) -> Option<f32> {
    if data.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile: q={} outside [0,1]", q);
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile over data that is already sorted ascending.
pub fn quantile_sorted(sorted: &[f32], q: f32) -> f32 {
    assert!(!sorted.is_empty(), "quantile_sorted: empty input");
    let pos = q as f64 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = (pos - lo as f64) as f32;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// The five standard box-plot quantiles `(min, q25, median, q75, max)`.
pub fn five_number_summary(data: &[f32]) -> Option<(f32, f32, f32, f32, f32)> {
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some((
        sorted[0],
        quantile_sorted(&sorted, 0.25),
        quantile_sorted(&sorted, 0.5),
        quantile_sorted(&sorted, 0.75),
        sorted[sorted.len() - 1],
    ))
}

/// Empirical CDF evaluated at the given `points`: fraction of `data <= p`.
pub fn ecdf_at(data: &[f32], points: &[f32]) -> Vec<f32> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    points
        .iter()
        .map(|&p| {
            let count = sorted.partition_point(|&v| v <= p);
            if sorted.is_empty() {
                0.0
            } else {
                count as f32 / sorted.len() as f32
            }
        })
        .collect()
}

/// `(value, cumulative_fraction)` pairs of the full empirical CDF,
/// one pair per distinct sorted sample.
pub fn ecdf(data: &[f32]) -> Vec<(f32, f32)> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f32;
    sorted.iter().enumerate().map(|(i, &v)| (v, (i + 1) as f32 / n)).collect()
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets; values
/// outside the range are clamped into the first/last bucket.
pub fn histogram(data: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram: need at least one bin");
    assert!(lo < hi, "histogram: empty range");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f32;
    for &v in data {
        let idx = (((v - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f32) {
        self.n += 1;
        let delta = x as f64 - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x as f64 - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f32 {
        self.mean as f32
    }

    /// Running population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f32 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64) as f32
        }
    }

    /// Running population standard deviation.
    pub fn std_dev(&self) -> f32 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_median_of_odd() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
    }

    #[test]
    fn quantile_interpolates() {
        // Sorted: [10, 20, 30, 40]; q=0.5 -> between 20 and 30.
        assert_eq!(quantile(&[40.0, 10.0, 30.0, 20.0], 0.5), Some(25.0));
        assert_eq!(quantile(&[40.0, 10.0, 30.0, 20.0], 0.0), Some(10.0));
        assert_eq!(quantile(&[40.0, 10.0, 30.0, 20.0], 1.0), Some(40.0));
    }

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn five_number_summary_known() {
        let (min, q25, med, q75, max) = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!((min, q25, med, q75, max), (1.0, 2.0, 3.0, 4.0, 5.0));
    }

    #[test]
    fn ecdf_at_fractions() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ecdf_at(&data, &[0.5, 2.0, 10.0]), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn ecdf_is_monotone_and_ends_at_one() {
        let data = [5.0, 1.0, 3.0, 3.0];
        let cdf = ecdf(&data);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = histogram(&[-1.0, 0.1, 0.5, 0.9, 2.0], 0.0, 1.0, 2);
        // -1.0 clamps into bin 0; 0.5 lands exactly on the bin-1 boundary;
        // 2.0 clamps into bin 1.
        assert_eq!(h, vec![2, 3]);
    }

    #[test]
    fn running_stats_match_batch() {
        let data = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let mut rs = RunningStats::new();
        for &x in &data {
            rs.push(x);
        }
        assert_eq!(rs.count(), 5);
        assert!((rs.mean() - 3.0).abs() < 1e-6);
        assert!((rs.variance() - 2.0).abs() < 1e-5);
    }
}
