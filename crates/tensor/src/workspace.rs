//! A scratch-buffer arena for allocation-free inner loops.
//!
//! Training and inference kernels need many short-lived intermediate
//! matrices per step (gate pre-activations, transposed weights, per-layer
//! deltas). Allocating them fresh every step dominates the runtime of
//! small models, so hot paths borrow buffers from a [`Workspace`] instead:
//! `take` hands out a reshaped buffer (recycling a previous allocation
//! when one is big enough) and `recycle` returns it to the pool once the
//! caller is done. Buffers from `take` have **unspecified contents**; use
//! [`Workspace::take_zeroed`] when the kernel accumulates.

use crate::matrix::Matrix;

/// Pool of reusable [`Matrix`] buffers.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pool: Vec<Matrix>,
}

impl Workspace {
    /// An empty workspace; buffers are allocated lazily on first use.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Borrows a `rows x cols` buffer with unspecified contents.
    ///
    /// Prefers a pooled buffer whose allocation already fits the request;
    /// otherwise repurposes any pooled buffer (growing it), and only
    /// allocates from scratch when the pool is empty.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = rows * cols;
        let mut m = match self.pool.iter().position(|m| m.as_slice().len() >= need) {
            Some(i) => self.pool.swap_remove(i),
            None => self.pool.pop().unwrap_or_default(),
        };
        m.reset(rows, cols);
        m
    }

    /// Borrows a zero-filled `rows x cols` buffer.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.take(rows, cols);
        m.fill_zero();
        m
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn recycle(&mut self, m: Matrix) {
        self.pool.push(m);
    }

    /// Shapes `seq` to exactly `len` matrices of `rows x cols` each,
    /// recycling surplus entries and drawing new ones from the pool.
    /// Contents of every entry are unspecified afterwards.
    pub fn ensure_seq(&mut self, seq: &mut Vec<Matrix>, len: usize, rows: usize, cols: usize) {
        while seq.len() > len {
            let m = seq.pop().expect("len checked above");
            self.recycle(m);
        }
        for m in seq.iter_mut() {
            m.reset(rows, cols);
        }
        while seq.len() < len {
            seq.push(self.take(rows, cols));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_allocation() {
        let mut ws = Workspace::new();
        let a = ws.take(4, 4);
        assert_eq!(a.shape(), (4, 4));
        ws.recycle(a);
        assert_eq!(ws.pooled(), 1);
        // A smaller request must reuse the pooled 16-element buffer.
        let b = ws.take(2, 3);
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut ws = Workspace::new();
        let mut a = ws.take(2, 2);
        a.fill_zero();
        a.set(0, 0, 7.0);
        ws.recycle(a);
        let b = ws.take_zeroed(2, 2);
        assert_eq!(b.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn ensure_seq_grows_and_shrinks() {
        let mut ws = Workspace::new();
        let mut seq = Vec::new();
        ws.ensure_seq(&mut seq, 3, 2, 5);
        assert_eq!(seq.len(), 3);
        assert!(seq.iter().all(|m| m.shape() == (2, 5)));
        ws.ensure_seq(&mut seq, 1, 4, 4);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].shape(), (4, 4));
        assert_eq!(ws.pooled(), 2);
    }
}
