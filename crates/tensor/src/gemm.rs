//! Blocked, SIMD-friendly GEMM backend behind the [`Matrix`] `matmul_*`
//! kernels.
//!
//! All three product forms reduce to one packed inner kernel computing
//! `C += A · B` with `A` row-major and `B` repacked into column panels of
//! [`NR`] consecutive columns (`panel[k * NR + lane] = b[k][j0 + lane]`),
//! so the innermost loop reads both operands contiguously:
//!
//! * `matmul` (`A · B`): pack `B`'s rows into panels.
//! * `matmul_tn` (`Aᵀ · B`): transpose-pack `A`, then run the same kernel.
//! * `matmul_nt` (`A · Bᵀ`): transpose-pack `B` into panels.
//!
//! The micro-kernel accumulates [`MR`] output rows × one panel at a time
//! with lane accumulators held in registers across the entire `k` loop.
//! Every output element still receives its contributions **in ascending
//! `k` order, one rounded multiply and one rounded add per contribution**
//! — exactly the arithmetic of the pre-existing scalar loops — so the
//! default backend is bit-identical to them on finite inputs, whether the
//! lanes are evaluated by the autovectorized scalar kernel or by the
//! explicit AVX kernel selected at runtime (`_mm256_mul_ps` +
//! `_mm256_add_ps` are element-wise IEEE ops, not fused).
//!
//! Unlike the old loops, the kernel has **no zero-skip fast path**: a
//! `0.0` in `A` no longer suppresses the multiply, so a NaN/Inf in `B`
//! propagates to the output (`0.0 * NaN` is NaN) instead of being
//! silently swallowed. Sparsity no longer buys skipped work, but the
//! packed panels recover far more than the skip ever did.
//!
//! The `fast-gemm` cargo feature (default off) additionally enables an
//! FMA kernel with a 2-way split-`k` accumulator for long reductions.
//! That path is faster but **not bit-identical** to the scalar loop —
//! fused multiplies round once instead of twice and the split changes the
//! summation order. [`default_backend_bit_exact`] reports which contract
//! the build provides; the trainer-equivalence suites consult it.
//!
//! Pack buffers are thread-local and grow-only, so steady-state training
//! does not allocate in here.
//!
//! ## Row-panel parallelism
//!
//! Large products additionally fan out over **row blocks** through the
//! persistent [`nfv_pool`] worker pool: the rhs is packed *once* on the
//! calling thread, the immutable packed panels are shared by every
//! worker, and each worker computes a disjoint, MR-aligned block of
//! output rows. Because every output element is produced by the exact
//! same per-element arithmetic regardless of which block it lands in
//! (the micro-kernels are row-independent — accumulators never cross
//! rows), the parallel result is **bit-identical to the serial kernel
//! for any worker count**, in both the default and the `fast-gemm`
//! backend. Row blocks are carved in ascending row order and written
//! panel-ordered within each block, so there is nothing to reduce and
//! nothing timing-dependent to observe.
//!
//! The worker count is the same `--threads` knob as everywhere else:
//! [`set_threads`] is called by the pipeline/CLI/bench entry points with
//! their configured thread count (`0` = auto, resolved by
//! `nfv_pool::resolve_workers`). Products below [`PAR_MIN_MKN`] and
//! regions already running *on* a pool worker (e.g. a GEMM inside a
//! gradient-shard task) stay serial — the outer region owns the cores.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Panel width (columns per packed panel / SIMD lanes per accumulator).
pub const NR: usize = 8;
/// Output rows processed together by the micro-kernel.
pub const MR: usize = 4;

/// Minimum product volume (`m · k · n` multiplies) for the row-panel
/// parallel path. Below this the whole product takes ~tens of
/// microseconds serially — the same order as a pool dispatch — so the
/// fan-out cannot win (measured by `nfv-bench --bin pool_overhead`).
pub const PAR_MIN_MKN: usize = 32 * 1024;

thread_local! {
    /// Reusable packing arenas: `[0]` holds the packed rhs panels, `[1]`
    /// the transpose-packed lhs used by the `tn` form.
    static PACK: RefCell<[Vec<f32>; 2]> = const { RefCell::new([Vec::new(), Vec::new()]) };

    /// Per-thread override of the process-wide worker count, used by
    /// [`with_threads`] (tests and scoped experiments).
    static THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Process-wide GEMM worker request. `1` (the default) keeps every
/// product serial; `0` means auto (one worker per host core). This is
/// set from the same `--threads` configuration that drives the trainer
/// and the scoring fan-out — there is deliberately no second knob.
static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide GEMM worker request (`0` = auto, `1` = serial,
/// `n` = up to `n` workers, capped at the host's core count by the pool
/// resolver). Any value produces bit-identical results; this is purely a
/// scheduling knob, so entry points (pipeline, CLI, benches) call it
/// with their `--threads` setting once at startup.
pub fn set_threads(threads: usize) {
    // Same cap policy as every other parallel region: oversubscribing
    // the host only adds dispatch overhead (outputs are identical
    // either way), so resolve the request through the pool's policy.
    // The `with_threads` override stays raw so tests can force
    // multi-panel partitions on any machine.
    THREADS.store(nfv_pool::resolve_workers(threads, usize::MAX), Ordering::Relaxed);
}

/// The currently effective worker request for this thread: the
/// [`with_threads`] override when inside one, else the process-wide
/// [`set_threads`] value.
pub fn configured_threads() -> usize {
    THREADS_OVERRIDE.with(|t| t.get()).unwrap_or_else(|| THREADS.load(Ordering::Relaxed))
}

/// Runs `f` with the calling thread's GEMM worker request overridden to
/// `threads`, restoring the previous value afterwards (also on panic).
/// Tests use this to compare worker counts without racing the global.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS_OVERRIDE.with(|t| t.set(self.0));
        }
    }
    let _restore = Restore(THREADS_OVERRIDE.with(|t| t.replace(Some(threads))));
    f()
}

/// True when the compiled default backend is bit-identical to the
/// reference scalar loop (ascending-k accumulation, no FMA). The
/// `fast-gemm` feature trades this guarantee for speed; bit-exactness
/// test suites relax to tolerance comparisons when this returns `false`.
#[inline]
pub const fn default_backend_bit_exact() -> bool {
    cfg!(not(feature = "fast-gemm"))
}

/// Human-readable name of the kernel the runtime dispatch selects, for
/// benchmark reports and logs.
pub fn active_kernel() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if cfg!(feature = "fast-gemm") && std::arch::is_x86_feature_detected!("fma") {
            return "x86_64/fma (fast-gemm, split-k)";
        }
        if std::arch::is_x86_feature_detected!("avx") {
            return "x86_64/avx (bit-exact)";
        }
    }
    "scalar (bit-exact)"
}

// ---------------------------------------------------------------------
// Public entry points (called from `Matrix::matmul_*`).
// ---------------------------------------------------------------------

/// `c += a · b` where `a` is `m x k`, `b` is `k x n`, `c` is `m x n`,
/// all row-major.
pub fn gemm_nn_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    PACK.with(|bufs| {
        let bufs = &mut *bufs.borrow_mut();
        let (packed, _) = bufs.split_at_mut(1);
        pack_rhs(k, n, b, &mut packed[0]);
        kernel_dispatch(m, k, n, a, &packed[0], c);
    });
}

/// `c += aᵀ · b` where `a` is `r x m` (so `aᵀ` is `m x r`), `b` is
/// `r x n`, `c` is `m x n`.
///
/// `a` is transpose-packed into a scratch `m x r` row-major buffer and
/// the product then runs through the same panel kernel as the `nn` form;
/// per output element the reduction stays in ascending shared-row order,
/// matching the old outer-product loop bit for bit.
pub fn gemm_tn_acc(r: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), r * m);
    debug_assert_eq!(b.len(), r * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || r == 0 || n == 0 {
        return;
    }
    PACK.with(|bufs| {
        let bufs = &mut *bufs.borrow_mut();
        let (packed, at) = bufs.split_at_mut(1);
        pack_rhs(r, n, b, &mut packed[0]);
        // Transpose-pack a (r x m) into at (m x r).
        let at = &mut at[0];
        at.clear();
        at.resize(m * r, 0.0);
        for (i, row) in a.chunks_exact(m).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                at[j * r + i] = v;
            }
        }
        kernel_dispatch(m, r, n, at, &packed[0], c);
    });
}

/// `c += a · bᵀ` where `a` is `m x k`, `b` is `j x k` (so `bᵀ` is
/// `k x j`), `c` is `m x j`.
pub fn gemm_nt_acc(m: usize, k: usize, j: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), j * k);
    debug_assert_eq!(c.len(), m * j);
    if m == 0 || k == 0 || j == 0 {
        return;
    }
    PACK.with(|bufs| {
        let bufs = &mut *bufs.borrow_mut();
        let (packed, _) = bufs.split_at_mut(1);
        pack_rhs_transposed(k, j, b, &mut packed[0]);
        kernel_dispatch(m, k, j, a, &packed[0], c);
    });
}

// ---------------------------------------------------------------------
// Packing.
// ---------------------------------------------------------------------

/// Number of full panels and leftover columns for a width-`n` rhs.
#[inline]
fn panels_of(n: usize) -> (usize, usize) {
    (n / NR, n % NR)
}

/// Packs a row-major `k x n` matrix into `NR`-column panels:
/// `out[p * k * NR + kk * NR + lane] = b[kk * n + p * NR + lane]`.
/// The last panel is zero-padded when `n % NR != 0`; the tail kernel
/// reads it with the same layout but only stores the live lanes.
fn pack_rhs(k: usize, n: usize, b: &[f32], out: &mut Vec<f32>) {
    let (np, tail) = panels_of(n);
    let np_total = np + usize::from(tail > 0);
    out.clear();
    out.resize(np_total * k * NR, 0.0);
    for p in 0..np {
        let dst = &mut out[p * k * NR..(p + 1) * k * NR];
        let col0 = p * NR;
        for kk in 0..k {
            dst[kk * NR..(kk + 1) * NR].copy_from_slice(&b[kk * n + col0..kk * n + col0 + NR]);
        }
    }
    if tail > 0 {
        let dst = &mut out[np * k * NR..];
        let col0 = np * NR;
        for kk in 0..k {
            dst[kk * NR..kk * NR + tail].copy_from_slice(&b[kk * n + col0..kk * n + col0 + tail]);
        }
    }
}

/// Packs panels of the *transpose* of a row-major `j x k` matrix, i.e.
/// the same layout [`pack_rhs`] would produce for the `k x j` matrix
/// `bᵀ`: `out[p * k * NR + kk * NR + lane] = b[(p * NR + lane) * k + kk]`,
/// again zero-padding the last panel.
fn pack_rhs_transposed(k: usize, j: usize, b: &[f32], out: &mut Vec<f32>) {
    let (np, tail) = panels_of(j);
    let np_total = np + usize::from(tail > 0);
    out.clear();
    out.resize(np_total * k * NR, 0.0);
    for p in 0..np_total {
        let lanes = if p < np { NR } else { tail };
        let dst = &mut out[p * k * NR..(p + 1) * k * NR];
        for lane in 0..lanes {
            let src = &b[(p * NR + lane) * k..(p * NR + lane + 1) * k];
            for (kk, &v) in src.iter().enumerate() {
                dst[kk * NR + lane] = v;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Kernel dispatch.
// ---------------------------------------------------------------------

/// Number of row blocks the parallel path would use for an `m x k · k x n`
/// product under the current worker request: 1 when the product is too
/// small ([`PAR_MIN_MKN`]) or serial was requested, otherwise the request
/// (auto = host cores) capped by the number of MR-row panels.
fn row_blocks(requested: usize, m: usize, k: usize, n: usize) -> usize {
    if requested == 1 || m.saturating_mul(k).saturating_mul(n) < PAR_MIN_MKN {
        return 1;
    }
    let req = if requested == 0 { nfv_pool::host_cores() } else { requested };
    req.min(m.div_ceil(MR)).max(1)
}

/// Runs the packed kernel over the whole output, fanning MR-aligned row
/// blocks out across the persistent pool when the product is large
/// enough. Every worker reads the same packed panels and writes its own
/// disjoint row range with the identical per-element arithmetic, so this
/// is bit-identical to [`kernel_rows`] on one thread (see module docs).
fn kernel_dispatch(m: usize, k: usize, n: usize, a: &[f32], packed: &[f32], c: &mut [f32]) {
    let blocks = row_blocks(configured_threads(), m, k, n);
    // Nested regions (a GEMM inside a pool task) stay serial: the outer
    // fan-out already owns the workers, and the pool would run the
    // spawned tasks inline anyway.
    if blocks <= 1 || nfv_pool::in_worker() {
        kernel_rows(m, k, n, a, packed, c);
        return;
    }
    // MR-aligned block height so only the last block has remainder rows;
    // a.chunks and c.chunks_mut carve the same ascending row ranges.
    let rows = m.div_ceil(blocks).next_multiple_of(MR);
    nfv_pool::global().scope(|s| {
        for (ab, cb) in a.chunks(rows * k).zip(c.chunks_mut(rows * n)) {
            s.spawn(move || kernel_rows(cb.len() / n, k, n, ab, packed, cb));
        }
    });
}

/// Runs the packed kernel over every full panel of a row range, then the
/// zero-padded tail panel (last `n % NR` columns) with per-lane scalar
/// stores. `a` is `m x k` row-major.
fn kernel_rows(m: usize, k: usize, n: usize, a: &[f32], packed: &[f32], c: &mut [f32]) {
    let (np, tail) = panels_of(n);
    #[cfg(target_arch = "x86_64")]
    {
        #[cfg(feature = "fast-gemm")]
        if std::arch::is_x86_feature_detected!("fma") {
            // SAFETY: FMA support was just verified at runtime.
            unsafe { panels_fma(m, k, n, a, packed, c, np) };
            tail_from_panel(m, k, n, a, packed, c, np, tail);
            return;
        }
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { panels_avx(m, k, n, a, packed, c, np) };
            tail_from_panel(m, k, n, a, packed, c, np, tail);
            return;
        }
    }
    panels_scalar(m, k, n, a, packed, c, np);
    tail_from_panel(m, k, n, a, packed, c, np, tail);
}

/// Scalar micro-kernel over the packed panels; the fixed-width lane
/// arrays autovectorize on targets without the explicit SIMD path.
#[allow(clippy::too_many_arguments)]
fn panels_scalar(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    packed: &[f32],
    c: &mut [f32],
    np: usize,
) {
    for p in 0..np {
        let panel = &packed[p * k * NR..(p + 1) * k * NR];
        let col0 = p * NR;
        let mut i = 0;
        while i + MR <= m {
            let (a0, a1, a2, a3) =
                (&a[i * k..], &a[(i + 1) * k..], &a[(i + 2) * k..], &a[(i + 3) * k..]);
            let mut acc = [[0.0f32; NR]; MR];
            for (r, acc_r) in acc.iter_mut().enumerate() {
                acc_r.copy_from_slice(&c[(i + r) * n + col0..(i + r) * n + col0 + NR]);
            }
            for kk in 0..k {
                let brow = &panel[kk * NR..(kk + 1) * NR];
                let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
                for (acc_r, &ar) in acc.iter_mut().zip(av.iter()) {
                    for (lane, &b) in acc_r.iter_mut().zip(brow.iter()) {
                        *lane += ar * b;
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                c[(i + r) * n + col0..(i + r) * n + col0 + NR].copy_from_slice(acc_r);
            }
            i += MR;
        }
        while i < m {
            let arow = &a[i * k..(i + 1) * k];
            let mut acc = [0.0f32; NR];
            acc.copy_from_slice(&c[i * n + col0..i * n + col0 + NR]);
            for (kk, &av) in arow.iter().enumerate() {
                let brow = &panel[kk * NR..(kk + 1) * NR];
                for (lane, &b) in acc.iter_mut().zip(brow.iter()) {
                    *lane += av * b;
                }
            }
            c[i * n + col0..i * n + col0 + NR].copy_from_slice(&acc);
            i += 1;
        }
    }
}

/// Column tail (`n % NR` rightmost columns): lane accumulators over the
/// zero-padded final panel, storing only the live lanes. Accumulation
/// per element is still one multiply + one add per ascending `k`.
#[allow(clippy::too_many_arguments)]
fn tail_from_panel(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    packed: &[f32],
    c: &mut [f32],
    np: usize,
    tail: usize,
) {
    if tail == 0 {
        return;
    }
    let panel = &packed[np * k * NR..(np + 1) * k * NR];
    let col0 = np * NR;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut acc = [0.0f32; NR];
        acc[..tail].copy_from_slice(&c[i * n + col0..i * n + col0 + tail]);
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &panel[kk * NR..(kk + 1) * NR];
            for (lane, &b) in acc.iter_mut().zip(brow.iter()) {
                *lane += av * b;
            }
        }
        c[i * n + col0..i * n + col0 + tail].copy_from_slice(&acc[..tail]);
    }
}

// ---------------------------------------------------------------------
// Explicit x86_64 SIMD kernels.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn panels_avx(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    packed: &[f32],
    c: &mut [f32],
    np: usize,
) {
    use std::arch::x86_64::*;
    for p in 0..np {
        let panel = packed[p * k * NR..(p + 1) * k * NR].as_ptr();
        let col0 = p * NR;
        let mut i = 0;
        while i + MR <= m {
            let a0 = a[i * k..].as_ptr();
            let a1 = a[(i + 1) * k..].as_ptr();
            let a2 = a[(i + 2) * k..].as_ptr();
            let a3 = a[(i + 3) * k..].as_ptr();
            let mut acc0 = _mm256_loadu_ps(c[i * n + col0..].as_ptr());
            let mut acc1 = _mm256_loadu_ps(c[(i + 1) * n + col0..].as_ptr());
            let mut acc2 = _mm256_loadu_ps(c[(i + 2) * n + col0..].as_ptr());
            let mut acc3 = _mm256_loadu_ps(c[(i + 3) * n + col0..].as_ptr());
            for kk in 0..k {
                let b = _mm256_loadu_ps(panel.add(kk * NR));
                // mul + add (not fused): identical rounding to the scalar
                // reference, which is what keeps this path bit-exact.
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(*a0.add(kk)), b));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(*a1.add(kk)), b));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(*a2.add(kk)), b));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(*a3.add(kk)), b));
            }
            _mm256_storeu_ps(c[i * n + col0..].as_mut_ptr(), acc0);
            _mm256_storeu_ps(c[(i + 1) * n + col0..].as_mut_ptr(), acc1);
            _mm256_storeu_ps(c[(i + 2) * n + col0..].as_mut_ptr(), acc2);
            _mm256_storeu_ps(c[(i + 3) * n + col0..].as_mut_ptr(), acc3);
            i += MR;
        }
        while i < m {
            let arow = a[i * k..].as_ptr();
            let mut acc = _mm256_loadu_ps(c[i * n + col0..].as_ptr());
            for kk in 0..k {
                let b = _mm256_loadu_ps(panel.add(kk * NR));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(*arow.add(kk)), b));
            }
            _mm256_storeu_ps(c[i * n + col0..].as_mut_ptr(), acc);
            i += 1;
        }
    }
}

/// `fast-gemm` kernel: FMA with a 2-way split-k accumulator pair per
/// register. Faster on long reductions, **not bit-exact** — see the
/// module docs.
#[cfg(all(target_arch = "x86_64", feature = "fast-gemm"))]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn panels_fma(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    packed: &[f32],
    c: &mut [f32],
    np: usize,
) {
    use std::arch::x86_64::*;
    for p in 0..np {
        let panel = packed[p * k * NR..(p + 1) * k * NR].as_ptr();
        let col0 = p * NR;
        let mut i = 0;
        while i + 2 <= m {
            let a0 = a[i * k..].as_ptr();
            let a1 = a[(i + 1) * k..].as_ptr();
            let mut e0 = _mm256_loadu_ps(c[i * n + col0..].as_ptr());
            let mut o0 = _mm256_setzero_ps();
            let mut e1 = _mm256_loadu_ps(c[(i + 1) * n + col0..].as_ptr());
            let mut o1 = _mm256_setzero_ps();
            let mut kk = 0;
            while kk + 2 <= k {
                let b0 = _mm256_loadu_ps(panel.add(kk * NR));
                let b1 = _mm256_loadu_ps(panel.add((kk + 1) * NR));
                e0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.add(kk)), b0, e0);
                o0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.add(kk + 1)), b1, o0);
                e1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.add(kk)), b0, e1);
                o1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.add(kk + 1)), b1, o1);
                kk += 2;
            }
            if kk < k {
                let b = _mm256_loadu_ps(panel.add(kk * NR));
                e0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.add(kk)), b, e0);
                e1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.add(kk)), b, e1);
            }
            _mm256_storeu_ps(c[i * n + col0..].as_mut_ptr(), _mm256_add_ps(e0, o0));
            _mm256_storeu_ps(c[(i + 1) * n + col0..].as_mut_ptr(), _mm256_add_ps(e1, o1));
            i += 2;
        }
        while i < m {
            let arow = a[i * k..].as_ptr();
            let mut even = _mm256_loadu_ps(c[i * n + col0..].as_ptr());
            let mut odd = _mm256_setzero_ps();
            let mut kk = 0;
            while kk + 2 <= k {
                even = _mm256_fmadd_ps(
                    _mm256_set1_ps(*arow.add(kk)),
                    _mm256_loadu_ps(panel.add(kk * NR)),
                    even,
                );
                odd = _mm256_fmadd_ps(
                    _mm256_set1_ps(*arow.add(kk + 1)),
                    _mm256_loadu_ps(panel.add((kk + 1) * NR)),
                    odd,
                );
                kk += 2;
            }
            if kk < k {
                even = _mm256_fmadd_ps(
                    _mm256_set1_ps(*arow.add(kk)),
                    _mm256_loadu_ps(panel.add(kk * NR)),
                    even,
                );
            }
            _mm256_storeu_ps(c[i * n + col0..].as_mut_ptr(), _mm256_add_ps(even, odd));
            i += 1;
        }
    }
}
