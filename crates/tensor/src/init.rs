//! Seeded random weight initializers.

use crate::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization for a `rows x cols` weight matrix:
/// samples from `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    uniform_in(rows, cols, -limit, limit, rng)
}

/// Uniform initialization in `[lo, hi)`.
pub fn uniform_in(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    assert!(lo < hi, "uniform_in: empty range");
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn xavier_respects_limit() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = xavier_uniform(10, 20, &mut rng);
        let limit = (6.0 / 30.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&v| v > -limit && v < limit));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = xavier_uniform(5, 5, &mut SmallRng::seed_from_u64(42));
        let b = xavier_uniform(5, 5, &mut SmallRng::seed_from_u64(42));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = uniform_in(8, 8, -0.25, 0.25, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.25..0.25).contains(&v)));
    }
}
