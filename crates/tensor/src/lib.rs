//! Dense `f32` linear-algebra kernels and statistics utilities.
//!
//! This crate is the numeric foundation of the `nfvpredict` workspace. It
//! deliberately follows the smoltcp design philosophy: simplicity and
//! robustness over clever type-level tricks. There is a single dense,
//! row-major [`Matrix`] type, a handful of free vector functions, seeded
//! random initializers, and the descriptive statistics (quantiles, CDFs,
//! histograms) used by the analysis figures of the paper reproduction.
//!
//! Shape errors are programming errors, not runtime conditions, so the
//! kernels `assert!` on mismatched dimensions with descriptive messages
//! rather than returning `Result`.

pub mod gemm;
pub mod init;
pub mod matrix;
pub mod stats;
pub mod vecops;
pub mod workspace;

pub use init::{uniform_in, xavier_uniform};
pub use matrix::Matrix;
pub use workspace::Workspace;
