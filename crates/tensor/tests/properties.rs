//! Property-based tests for the tensor kernels.

use nfv_tensor::stats;
use nfv_tensor::vecops;
use nfv_tensor::Matrix;
use proptest::prelude::*;

/// Strategy producing an arbitrary matrix with dimensions in [1, 8] and
/// well-behaved finite elements.
fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn matrix_with_shape(r: usize, c: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-100.0f32..100.0, r * c)
        .prop_map(move |data| Matrix::from_vec(r, c, data))
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy()) {
        let t = m.transpose().transpose();
        prop_assert_eq!(t.as_slice(), m.as_slice());
    }

    #[test]
    fn matmul_distributes_over_addition(
        dims in (1usize..=5, 1usize..=5, 1usize..=5)
    ) {
        let (r, k, c) = dims;
        let a = Matrix::from_fn(r, k, |i, j| ((i * 7 + j * 3) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(k, c, |i, j| ((i * 5 + j * 2) % 13) as f32 - 6.0);
        let mut b2 = b.clone();
        b2.scale(2.0);
        // a * (b + b) == (a*b) + (a*b)
        let lhs = a.matmul(&b2);
        let mut rhs = a.matmul(&b);
        let rhs2 = rhs.clone();
        rhs.add_assign(&rhs2);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_tn_nt_agree_with_naive(m in matrix_strategy()) {
        let g = m.matmul_tn(&m); // m^T m: (cols x cols), PSD
        let naive = m.transpose().matmul(&m);
        for (x, y) in g.as_slice().iter().zip(naive.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + x.abs()));
        }
        // Diagonal of a Gram matrix is non-negative.
        for i in 0..g.rows() {
            prop_assert!(g.get(i, i) >= -1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy()) {
        let mut s = m.clone();
        s.softmax_rows_inplace();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn hstack_then_split_roundtrip(a in matrix_with_shape(3, 2), b in matrix_with_shape(3, 4)) {
        let h = Matrix::hstack(&[&a, &b]);
        prop_assert_eq!(h.shape(), (3, 6));
        for r in 0..3 {
            prop_assert_eq!(&h.row(r)[..2], a.row(r));
            prop_assert_eq!(&h.row(r)[2..], b.row(r));
        }
    }

    #[test]
    fn cosine_similarity_bounded(
        a in prop::collection::vec(-50.0f32..50.0, 1..16),
    ) {
        let b: Vec<f32> = a.iter().map(|v| v * 0.5 + 1.0).collect();
        let s = vecops::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
        // Self-similarity of a nonzero vector is 1.
        if vecops::norm2(&a) > 1e-3 {
            prop_assert!((vecops::cosine_similarity(&a, &a) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn quantiles_are_monotone(data in prop::collection::vec(-1e4f32..1e4, 1..64)) {
        let q1 = stats::quantile(&data, 0.25).unwrap();
        let q2 = stats::quantile(&data, 0.5).unwrap();
        let q3 = stats::quantile(&data, 0.75).unwrap();
        prop_assert!(q1 <= q2 && q2 <= q3);
        let lo = stats::quantile(&data, 0.0).unwrap();
        let hi = stats::quantile(&data, 1.0).unwrap();
        prop_assert!(data.iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn ecdf_at_is_monotone_in_points(data in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let points: Vec<f32> = (-10..=10).map(|i| i as f32 * 10.0).collect();
        let cdf = stats::ecdf_at(&data, &points);
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn histogram_conserves_mass(data in prop::collection::vec(-10.0f32..10.0, 0..128)) {
        let h = stats::histogram(&data, -5.0, 5.0, 7);
        prop_assert_eq!(h.iter().sum::<usize>(), data.len());
    }

    #[test]
    fn top_k_returns_descending_values(data in prop::collection::vec(-100.0f32..100.0, 1..32)) {
        let k = data.len().min(5);
        let idx = vecops::top_k(&data, k);
        prop_assert_eq!(idx.len(), k);
        for w in idx.windows(2) {
            prop_assert!(data[w[0]] >= data[w[1]]);
        }
    }
}
