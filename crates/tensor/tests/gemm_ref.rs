//! Reference suite for the packed GEMM backend.
//!
//! Three layers of guarantees:
//!
//! 1. **Semantics** (proptest): every `matmul_*` entry point equals a
//!    naive triple loop — same ascending-reduction accumulation order,
//!    so equality is asserted *bitwise* — on random shapes including
//!    empty (0-row / 0-col) matrices and exact-zero elements.
//! 2. **Bit-exactness vs. the pre-PR kernels**: faithful copies of the
//!    old scalar loops (k-unrolled-by-4 / i-unrolled-by-2, with the
//!    zero-skip fast paths) must agree bit-for-bit with the new backend
//!    on dense finite fixtures — the contract that keeps the captured
//!    trainer trajectories and crash-resume checkpoints valid.
//! 3. **Non-finite propagation**: the old zero-skip swallowed a NaN in
//!    `rhs` whenever its paired lhs element was exactly `0.0`; the new
//!    backend must propagate it. The regression test demonstrates the
//!    old kernel failing exactly this way.
//!
//! Under the `fast-gemm` feature the backend deliberately reorders the
//! reduction (FMA + split-k), so the bitwise suites relax to tolerance
//! via [`nfv_tensor::gemm::default_backend_bit_exact`].

use nfv_tensor::Matrix;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Naive ground truth: plain triple loops, ascending reduction index,
// one multiply + one add per contribution, no skips.
// ---------------------------------------------------------------------

fn naive_nn_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = out.get(i, j);
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
}

fn naive_tn_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    for k in 0..a.cols() {
        for j in 0..b.cols() {
            let mut acc = out.get(k, j);
            for i in 0..a.rows() {
                acc += a.get(i, k) * b.get(i, j);
            }
            out.set(k, j, acc);
        }
    }
}

fn naive_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(j, k);
            }
            out.set(i, j, acc);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Faithful copies of the pre-PR kernels (including the zero-skip bug).
// ---------------------------------------------------------------------

/// The old `matmul_acc`: i-k-j, k unrolled by 4, zero-skip on lhs.
fn pre_pr_matmul_acc(lhs: &Matrix, rhs: &Matrix, out: &mut Matrix) {
    let n = rhs.cols();
    for i in 0..lhs.rows() {
        let lhs_row = lhs.row(i);
        let out_row = out.row_mut(i);
        let mut k = 0;
        while k + 4 <= lhs.cols() {
            let (a0, a1, a2, a3) = (lhs_row[k], lhs_row[k + 1], lhs_row[k + 2], lhs_row[k + 3]);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                k += 4;
                continue;
            }
            let base = rhs.as_slice();
            let r0 = &base[k * n..(k + 1) * n];
            let r1 = &base[(k + 1) * n..(k + 2) * n];
            let r2 = &base[(k + 2) * n..(k + 3) * n];
            let r3 = &base[(k + 3) * n..(k + 4) * n];
            for j in 0..n {
                let mut acc = out_row[j];
                acc += a0 * r0[j];
                acc += a1 * r1[j];
                acc += a2 * r2[j];
                acc += a3 * r3[j];
                out_row[j] = acc;
            }
            k += 4;
        }
        while k < lhs.cols() {
            let a = lhs_row[k];
            if a != 0.0 {
                let rhs_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
            k += 1;
        }
    }
}

/// The old `matmul_tn_acc`: i unrolled by 2, zero-skip on lhs pairs.
fn pre_pr_matmul_tn_acc(lhs: &Matrix, rhs: &Matrix, out: &mut Matrix) {
    let n = rhs.cols();
    let mut i = 0;
    while i + 2 <= lhs.rows() {
        let l0 = lhs.row(i);
        let l1 = lhs.row(i + 1);
        let r0 = rhs.row(i);
        let r1 = rhs.row(i + 1);
        for k in 0..lhs.cols() {
            let (a0, a1) = (l0[k], l1[k]);
            if a0 == 0.0 && a1 == 0.0 {
                continue;
            }
            let out_row = out.row_mut(k);
            for j in 0..n {
                let mut acc = out_row[j];
                acc += a0 * r0[j];
                acc += a1 * r1[j];
                out_row[j] = acc;
            }
        }
        i += 2;
    }
    if i < lhs.rows() {
        let lhs_row = lhs.row(i);
        let rhs_row = rhs.row(i);
        for (k, &a) in lhs_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let out_row = out.row_mut(k);
            for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                *o += a * b;
            }
        }
    }
}

/// The old `matmul_nt_into`: one scalar dot product per output element.
fn pre_pr_matmul_nt(lhs: &Matrix, rhs: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(lhs.rows(), rhs.rows());
    for i in 0..lhs.rows() {
        for j in 0..rhs.rows() {
            let mut acc = 0.0f32;
            for (a, b) in lhs.row(i).iter().zip(rhs.row(j).iter()) {
                acc += a * b;
            }
            out.set(i, j, acc);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------

fn assert_matrix_exact(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{}: shape mismatch", what);
    let exact = nfv_tensor::gemm::default_backend_bit_exact();
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice().iter()).enumerate() {
        if exact {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{}: element {} differs bitwise: got {}, want {}",
                what,
                i,
                g,
                w
            );
        } else {
            assert!(
                (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                "{}: element {} beyond fast-gemm tolerance: got {}, want {}",
                what,
                i,
                g,
                w
            );
        }
    }
}

/// Dense fixture that never contains an exact zero, so the pre-PR
/// zero-skip can not fire and bit-identity must hold unconditionally.
fn dense_fixture(rows: usize, cols: usize, salt: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 * salt + 0.173).sin() + 1.5)
}

/// ReLU-like fixture: roughly half the elements are exactly 0.0.
fn sparse_fixture(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = r * cols + c + salt;
        if h.is_multiple_of(2) {
            0.0
        } else {
            (h as f32 * 0.37).cos() * 2.0
        }
    })
}

/// Shapes chosen to exercise full panels, the zero-padded column tail,
/// the 4-row micro-kernel and its remainder rows, and the LSTM training
/// dimensions themselves.
const FIXTURE_SHAPES: [(usize, usize, usize); 8] = [
    (1, 1, 1),
    (4, 4, 4),
    (5, 7, 9),
    (3, 2, 17),
    (8, 16, 24),
    (2, 25, 11),
    (13, 6, 8),
    (64, 17, 128),
];

// ---------------------------------------------------------------------
// 1. Proptest: all eight entry points vs. the naive triple loop.
// ---------------------------------------------------------------------

/// Dimensions in `[0, 9]` so empty matrices are generated, and elements
/// drawn from a grid with frequent exact zeros.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..=9, 0usize..=9, 0usize..=9)
}

fn grid(v: i32) -> f32 {
    if (-2..=2).contains(&v) && v % 2 == 0 {
        0.0
    } else {
        v as f32 * 0.25
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nn_variants_match_naive(
        dims in dims(),
        seeds in (-14i32..=14, -14i32..=14),
    ) {
        let (m, k, n) = dims;
        let a = Matrix::from_fn(m, k, |r, c| grid(((r * 5 + c * 3) as i32 + seeds.0) % 15 - 7));
        let b = Matrix::from_fn(k, n, |r, c| grid(((r * 7 + c * 2) as i32 + seeds.1) % 15 - 7));
        let mut want = Matrix::zeros(m, n);
        naive_nn_acc(&a, &b, &mut want);

        assert_matrix_exact(&a.matmul(&b), &want, "matmul");
        let mut out = Matrix::filled(3, 3, 9.0); // dirty, wrong shape on purpose
        a.matmul_into(&b, &mut out);
        assert_matrix_exact(&out, &want, "matmul_into");

        let init = Matrix::from_fn(m, n, |r, c| grid(((r + 2 * c) as i32) % 15 - 7));
        let mut acc = init.clone();
        a.matmul_acc(&b, &mut acc);
        let mut want_acc = init;
        naive_nn_acc(&a, &b, &mut want_acc);
        assert_matrix_exact(&acc, &want_acc, "matmul_acc");
    }

    #[test]
    fn tn_variants_match_naive(
        dims in dims(),
        salt in 0usize..1000,
    ) {
        let (r, m, n) = dims;
        let a = Matrix::from_fn(r, m, |i, j| grid(((i * 3 + j * 5 + salt) % 15) as i32 - 7));
        let b = Matrix::from_fn(r, n, |i, j| grid(((i * 2 + j * 7 + salt) % 15) as i32 - 7));
        let mut want = Matrix::zeros(m, n);
        naive_tn_acc(&a, &b, &mut want);

        assert_matrix_exact(&a.matmul_tn(&b), &want, "matmul_tn");
        let mut out = Matrix::filled(2, 5, -3.0);
        a.matmul_tn_into(&b, &mut out);
        assert_matrix_exact(&out, &want, "matmul_tn_into");

        let init = Matrix::from_fn(m, n, |i, j| grid(((i * 4 + j + salt) % 15) as i32 - 7));
        let mut acc = init.clone();
        a.matmul_tn_acc(&b, &mut acc);
        let mut want_acc = init;
        naive_tn_acc(&a, &b, &mut want_acc);
        assert_matrix_exact(&acc, &want_acc, "matmul_tn_acc");
    }

    #[test]
    fn nt_variants_match_naive(
        dims in dims(),
        salt in 0usize..1000,
    ) {
        let (m, k, j) = dims;
        let a = Matrix::from_fn(m, k, |r, c| grid(((r * 3 + c * 5 + salt) % 15) as i32 - 7));
        let b = Matrix::from_fn(j, k, |r, c| grid(((r * 2 + c * 7 + salt) % 15) as i32 - 7));
        let want = naive_nt(&a, &b);

        assert_matrix_exact(&a.matmul_nt(&b), &want, "matmul_nt");
        let mut out = Matrix::filled(1, 4, 2.5);
        a.matmul_nt_into(&b, &mut out);
        assert_matrix_exact(&out, &want, "matmul_nt_into");
    }
}

// ---------------------------------------------------------------------
// 2. Bit-exactness vs. the pre-PR scalar kernels.
// ---------------------------------------------------------------------

#[test]
fn default_backend_matches_pre_pr_kernels_on_dense_fixtures() {
    for &(m, k, n) in &FIXTURE_SHAPES {
        let a = dense_fixture(m, k, 0.61);
        let b = dense_fixture(k, n, 0.43);
        let bt = b.transpose();

        let mut want = Matrix::zeros(m, n);
        pre_pr_matmul_acc(&a, &b, &mut want);
        assert_matrix_exact(&a.matmul(&b), &want, "nn vs pre-PR");

        let at = a.transpose();
        let mut want_tn = Matrix::zeros(m, n);
        pre_pr_matmul_tn_acc(&at, &b, &mut want_tn);
        assert_matrix_exact(&at.matmul_tn(&b), &want_tn, "tn vs pre-PR");

        let want_nt = pre_pr_matmul_nt(&a, &bt);
        assert_matrix_exact(&a.matmul_nt(&bt), &want_nt, "nt vs pre-PR");

        // Accumulating on top of a dense non-zero out buffer.
        let init = dense_fixture(m, n, 0.29);
        let mut got_acc = init.clone();
        a.matmul_acc(&b, &mut got_acc);
        let mut want_acc = init;
        pre_pr_matmul_acc(&a, &b, &mut want_acc);
        assert_matrix_exact(&got_acc, &want_acc, "nn acc vs pre-PR");
    }
}

#[test]
fn default_backend_matches_pre_pr_kernels_on_relu_sparse_lhs() {
    // With finite operands and a `+0.0`-initialized accumulator, the old
    // zero-skip was observationally pure: skipping `0.0 * b` adds `±0.0`
    // to an accumulator that can never be `-0.0`. The new backend does
    // the multiplies anyway and must land on identical bits.
    for &(m, k, n) in &FIXTURE_SHAPES {
        let a = sparse_fixture(m, k, 1);
        let b = dense_fixture(k, n, 0.53);

        let mut want = Matrix::zeros(m, n);
        pre_pr_matmul_acc(&a, &b, &mut want);
        assert_matrix_exact(&a.matmul(&b), &want, "sparse nn vs pre-PR");

        let at = a.transpose();
        let mut want_tn = Matrix::zeros(m, n);
        pre_pr_matmul_tn_acc(&at, &b, &mut want_tn);
        assert_matrix_exact(&at.matmul_tn(&b), &want_tn, "sparse tn vs pre-PR");
    }
}

// ---------------------------------------------------------------------
// 3. Non-finite propagation (the bug the zero-skip caused).
// ---------------------------------------------------------------------

/// Builds the poisoned pair: the entire aligned 4-wide k-block of lhs
/// containing `bad_k` is zeroed (a freshly-zeroed / ReLU-dead span, the
/// exact shape the old kernel's block-skip keyed on) and row `bad_k` of
/// rhs is NaN, so every product against the NaN is `0.0 * NaN`.
fn poisoned_pair(m: usize, k: usize, n: usize, bad_k: usize) -> (Matrix, Matrix) {
    let mut a = dense_fixture(m, k, 0.71);
    let mut b = dense_fixture(k, n, 0.37);
    let blk = bad_k / 4 * 4;
    for i in 0..m {
        for kk in blk..(blk + 4).min(k) {
            a.set(i, kk, 0.0);
        }
    }
    for j in 0..n {
        b.set(bad_k, j, f32::NAN);
    }
    (a, b)
}

#[test]
fn nan_in_rhs_behind_zero_lhs_propagates_through_all_entry_points() {
    let (m, k, n, bad_k) = (5, 9, 11, 4);
    let (a, b) = poisoned_pair(m, k, n, bad_k);

    // The pre-PR kernels swallowed the NaN: the nn block-skip jumped the
    // all-zero lhs block so row `bad_k` of rhs was never read, and the tn
    // pair-skip did the same over zero shared-row pairs. That is exactly
    // the regression this suite pins down.
    let mut old = Matrix::zeros(m, n);
    pre_pr_matmul_acc(&a, &b, &mut old);
    assert!(
        !old.has_non_finite(),
        "pre-PR nn kernel no longer swallows the NaN; update this regression test"
    );
    let mut old_tn = Matrix::zeros(m, n);
    pre_pr_matmul_tn_acc(&a.transpose(), &b, &mut old_tn);
    assert!(
        !old_tn.has_non_finite(),
        "pre-PR tn kernel no longer swallows the NaN; update this regression test"
    );
    // The scalar-tail path (k beyond the last full unroll block) skipped
    // single zeros too.
    let (a_tail, b_tail) = poisoned_pair(3, 9, 4, 8);
    let mut old_tail = Matrix::zeros(3, 4);
    pre_pr_matmul_acc(&a_tail, &b_tail, &mut old_tail);
    assert!(!old_tail.has_non_finite(), "pre-PR tail skip no longer swallows the NaN");
    assert!(a_tail.matmul(&b_tail).has_non_finite(), "tail-path matmul swallowed 0.0 * NaN");

    // The new backend must propagate it everywhere.
    assert!(a.matmul(&b).has_non_finite(), "matmul swallowed 0.0 * NaN");
    let mut out = Matrix::default();
    a.matmul_into(&b, &mut out);
    assert!(out.has_non_finite(), "matmul_into swallowed 0.0 * NaN");
    let mut acc = Matrix::zeros(m, n);
    a.matmul_acc(&b, &mut acc);
    assert!(acc.has_non_finite(), "matmul_acc swallowed 0.0 * NaN");

    let at = a.transpose();
    assert!(at.matmul_tn(&b).has_non_finite(), "matmul_tn swallowed 0.0 * NaN");
    at.matmul_tn_into(&b, &mut out);
    assert!(out.has_non_finite(), "matmul_tn_into swallowed 0.0 * NaN");
    let mut acc = Matrix::zeros(m, n);
    at.matmul_tn_acc(&b, &mut acc);
    assert!(acc.has_non_finite(), "matmul_tn_acc swallowed 0.0 * NaN");

    let bt = b.transpose();
    assert!(a.matmul_nt(&bt).has_non_finite(), "matmul_nt swallowed 0.0 * NaN");
    a.matmul_nt_into(&bt, &mut out);
    assert!(out.has_non_finite(), "matmul_nt_into swallowed 0.0 * NaN");
}

#[test]
fn infinity_behind_zero_lhs_propagates_as_nan() {
    // `0.0 * inf` is NaN by IEEE 754; the old skip hid that too.
    let (m, k, n, bad_k) = (4, 8, 8, 7);
    let (mut a, mut b) = poisoned_pair(m, k, n, bad_k);
    for j in 0..n {
        b.set(bad_k, j, f32::INFINITY);
    }
    a.set(2, bad_k, 0.0);
    let c = a.matmul(&b);
    assert!(c.has_non_finite(), "matmul swallowed 0.0 * inf");
}

// ---------------------------------------------------------------------
// 4. Row-panel-parallel path: bitwise equal to the serial kernel at
//    every worker count, in BOTH backends (the micro-kernels are
//    row-independent, so a row's bits never depend on which block —
//    or which worker — produced it). `gemm::with_threads` scopes the
//    worker request to this thread, so the sweep cannot race other
//    tests.
// ---------------------------------------------------------------------

fn assert_bitwise(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{}: shape mismatch", what);
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice().iter()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{}: element {} differs bitwise: got {}, want {}",
            what,
            i,
            g,
            w
        );
    }
}

/// Runs all three product forms (plus a dirty-accumulator case) at one
/// worker count and compares bitwise against the serial results.
fn check_parallel_matches_serial(a: &Matrix, b: &Matrix, init: &Matrix, workers: usize) {
    let (serial_nn, serial_tn, serial_nt, serial_acc) = nfv_tensor::gemm::with_threads(1, || {
        let mut acc = init.clone();
        a.matmul_acc(b, &mut acc);
        (a.matmul(b), a.transpose().matmul_tn(b), a.matmul_nt(&b.transpose()), acc)
    });
    nfv_tensor::gemm::with_threads(workers, || {
        let what = format!("nn @ {workers} workers");
        assert_bitwise(&a.matmul(b), &serial_nn, &what);
        let what = format!("tn @ {workers} workers");
        assert_bitwise(&a.transpose().matmul_tn(b), &serial_tn, &what);
        let what = format!("nt @ {workers} workers");
        assert_bitwise(&a.matmul_nt(&b.transpose()), &serial_nt, &what);
        let mut acc = init.clone();
        a.matmul_acc(b, &mut acc);
        let what = format!("nn acc @ {workers} workers");
        assert_bitwise(&acc, &serial_acc, &what);
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes spanning empty matrices, sub-threshold products
    /// (which stay serial) and products wide/tall enough to split into
    /// several MR-row blocks with remainder rows and column tails.
    #[test]
    fn parallel_path_is_bitwise_serial_on_random_shapes(
        dims in (0usize..=70, 0usize..=24, 0usize..=33),
        salt in 0usize..1000,
    ) {
        let (m, k, n) = dims;
        let a = Matrix::from_fn(m, k, |r, c| grid(((r * 3 + c * 5 + salt) % 15) as i32 - 7));
        let b = Matrix::from_fn(k, n, |r, c| grid(((r * 2 + c * 7 + salt) % 15) as i32 - 7));
        let init = Matrix::from_fn(m, n, |r, c| grid(((r + 2 * c + salt) % 15) as i32 - 7));
        for workers in [1, 2, 4, 8] {
            check_parallel_matches_serial(&a, &b, &init, workers);
        }
    }
}

#[test]
fn parallel_path_is_bitwise_serial_on_forced_split_shapes() {
    // Shapes chosen to exceed PAR_MIN_MKN so the fan-out genuinely
    // engages: a square block, a tall-skinny product whose row count is
    // not a multiple of MR (remainder rows land in the last block), and
    // a wide product with a column tail (n % NR != 0).
    for &(m, k, n) in &[(64, 64, 64), (131, 40, 24), (48, 21, 77), (257, 16, 16)] {
        assert!(
            m * k * n >= nfv_tensor::gemm::PAR_MIN_MKN,
            "fixture ({m},{k},{n}) too small to engage the parallel path"
        );
        let a = dense_fixture(m, k, 0.61);
        let b = dense_fixture(k, n, 0.43);
        let init = dense_fixture(m, n, 0.29);
        for workers in 1..=8 {
            check_parallel_matches_serial(&a, &b, &init, workers);
        }
        // 0 = auto (host cores) must match too.
        check_parallel_matches_serial(&a, &b, &init, 0);
    }
}

#[test]
fn parallel_path_keeps_the_fast_gemm_tolerance_contract() {
    // Whatever backend is compiled in, the *parallel* result equals the
    // *serial* result of that backend bitwise — so the backend's own
    // contract vs the naive loop (bit-exact by default, documented
    // tolerance under fast-gemm) carries over to every worker count.
    let (m, k, n) = (96, 33, 40);
    let a = dense_fixture(m, k, 0.37);
    let b = dense_fixture(k, n, 0.59);
    let mut want = Matrix::zeros(m, n);
    naive_nn_acc(&a, &b, &mut want);
    for workers in [2, 4, 8] {
        let got = nfv_tensor::gemm::with_threads(workers, || a.matmul(&b));
        assert_matrix_exact(&got, &want, "parallel vs naive");
    }
}

// ---------------------------------------------------------------------
// Empty-shape edge cases (explicit, beyond the proptest coverage).
// ---------------------------------------------------------------------

#[test]
fn empty_shapes_produce_empty_or_zero_outputs() {
    let a0 = Matrix::zeros(0, 5);
    let b = Matrix::zeros(5, 3);
    assert_eq!(a0.matmul(&b).shape(), (0, 3));

    let a = Matrix::filled(2, 0, 0.0);
    let b0 = Matrix::zeros(0, 4);
    let c = a.matmul(&b0);
    assert_eq!(c.shape(), (2, 4));
    assert!(c.as_slice().iter().all(|&v| v == 0.0), "k=0 product must be all zeros");

    let bn = Matrix::zeros(5, 0);
    assert_eq!(Matrix::zeros(2, 5).matmul(&bn).shape(), (2, 0));

    assert_eq!(a0.matmul_tn(&Matrix::zeros(0, 2)).shape(), (5, 2));
    let tn = a0.matmul_tn(&Matrix::zeros(0, 2));
    assert!(tn.as_slice().iter().all(|&v| v == 0.0));

    assert_eq!(a.matmul_nt(&Matrix::zeros(7, 0)).shape(), (2, 7));
}
