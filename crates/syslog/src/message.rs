//! The syslog message model and RFC3164-style rendering.

use crate::time::rfc3164_timestamp;
use std::fmt;

/// RFC3164 severity levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// System is unusable.
    Emergency = 0,
    /// Action must be taken immediately.
    Alert = 1,
    /// Critical conditions.
    Critical = 2,
    /// Error conditions.
    Error = 3,
    /// Warning conditions.
    Warning = 4,
    /// Normal but significant condition.
    Notice = 5,
    /// Informational messages.
    Info = 6,
    /// Debug-level messages.
    Debug = 7,
}

impl Severity {
    /// Numeric severity code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a numeric severity code.
    pub fn from_code(code: u8) -> Option<Severity> {
        Some(match code {
            0 => Severity::Emergency,
            1 => Severity::Alert,
            2 => Severity::Critical,
            3 => Severity::Error,
            4 => Severity::Warning,
            5 => Severity::Notice,
            6 => Severity::Info,
            7 => Severity::Debug,
            _ => return None,
        })
    }
}

/// One syslog message as emitted by a (simulated or real) device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyslogMessage {
    /// Seconds since the simulation epoch.
    pub timestamp: u64,
    /// Emitting host name (e.g. `vpe07`).
    pub host: String,
    /// Emitting process/daemon (e.g. `rpd`, `chassisd`).
    pub process: String,
    /// Message severity.
    pub severity: Severity,
    /// Free-form message body.
    pub text: String,
}

impl SyslogMessage {
    /// Renders the message as a single RFC3164-style line:
    /// `<PRI>Mmm dd hh:mm:ss host process: text`
    /// with facility fixed to local7 (23), as typical for network gear.
    pub fn to_line(&self) -> String {
        let pri = 23 * 8 + self.severity.code() as u16;
        format!(
            "<{}>{} {} {}: {}",
            pri,
            rfc3164_timestamp(self.timestamp),
            self.host,
            self.process,
            self.text
        )
    }
}

impl fmt::Display for SyslogMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_code_roundtrip() {
        for code in 0..8u8 {
            assert_eq!(Severity::from_code(code).unwrap().code(), code);
        }
        assert_eq!(Severity::from_code(8), None);
    }

    #[test]
    fn line_format_contains_all_fields() {
        let msg = SyslogMessage {
            timestamp: 3661,
            host: "vpe03".to_string(),
            process: "rpd".to_string(),
            severity: Severity::Warning,
            text: "BGP peer 10.0.0.1 session flap".to_string(),
        };
        let line = msg.to_line();
        assert_eq!(line, "<188>Oct  1 01:01:01 vpe03 rpd: BGP peer 10.0.0.1 session flap");
    }

    #[test]
    fn severity_ordering_matches_rfc() {
        assert!(Severity::Emergency < Severity::Error);
        assert!(Severity::Error < Severity::Info);
    }
}
