//! Time-ordered template streams and sliding-window extraction.
//!
//! After signature matching, a vPE's syslog becomes a sequence of
//! `(template id, timestamp)` records. The LSTM consumes fixed-length
//! windows of `(id, normalized gap)` tuples and predicts the next id
//! (§4.2 of the paper).

use crate::time::{month_index, DAY};

/// One structured log record: a template occurrence at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Seconds since the simulation epoch.
    pub time: u64,
    /// Template id (catalog or vocabulary id, per context).
    pub template: usize,
}

/// A time-sorted sequence of log records for one host (or one pooled
/// group of hosts).
#[derive(Debug, Clone, Default)]
pub struct LogStream {
    records: Vec<LogRecord>,
}

/// Normalizes an inter-arrival gap (seconds) into `[0, 1]` with a
/// logarithmic scale saturating at one day.
pub fn gap_feature(gap_seconds: u64) -> f32 {
    let g = (1.0 + gap_seconds as f64).ln() / (1.0 + DAY as f64).ln();
    g.min(1.0) as f32
}

/// Fixed-length windows extracted from a stream, ready for the sequence
/// model: window `i` covers `ids[i]`/`gaps[i]` and the training target is
/// `targets[i]`, the template that actually followed at `times[i]`.
#[derive(Debug, Clone, Default)]
pub struct WindowSet {
    /// Template-id windows.
    pub ids: Vec<Vec<usize>>,
    /// Normalized gap windows, parallel to `ids`.
    pub gaps: Vec<Vec<f32>>,
    /// The observed next template for each window.
    pub targets: Vec<usize>,
    /// Timestamp of each target record.
    pub times: Vec<u64>,
}

impl WindowSet {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no window was extracted.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends all windows of `other`.
    pub fn extend(&mut self, other: WindowSet) {
        self.ids.extend(other.ids);
        self.gaps.extend(other.gaps);
        self.targets.extend(other.targets);
        self.times.extend(other.times);
    }

    /// Selects a subset of windows by index (used by the over-sampling
    /// training loop).
    pub fn gather(&self, indices: &[usize]) -> WindowSet {
        WindowSet {
            ids: indices.iter().map(|&i| self.ids[i].clone()).collect(),
            gaps: indices.iter().map(|&i| self.gaps[i].clone()).collect(),
            targets: indices.iter().map(|&i| self.targets[i]).collect(),
            times: indices.iter().map(|&i| self.times[i]).collect(),
        }
    }
}

impl LogStream {
    /// Builds a stream, sorting records by time (stable, so equal-time
    /// records keep their relative order).
    pub fn from_records(mut records: Vec<LogRecord>) -> LogStream {
        records.sort_by_key(|r| r.time);
        LogStream { records }
    }

    /// Appends another stream's records in place, keeping time order.
    ///
    /// The common case — `tail` starts at or after this stream's last
    /// record, as when the pipeline appends a freshly-encoded month — is
    /// a plain `extend` with no re-sort and no rebuild of the existing
    /// prefix. Overlapping tails fall back to a stable sort, which
    /// produces exactly what [`LogStream::from_records`] over the
    /// concatenation would.
    pub fn append(&mut self, tail: LogStream) {
        if tail.records.is_empty() {
            return;
        }
        let sorted = match (self.records.last(), tail.records.first()) {
            (Some(last), Some(first)) => last.time <= first.time,
            _ => true,
        };
        self.records.extend(tail.records);
        if !sorted {
            self.records.sort_by_key(|r| r.time);
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, time-ordered.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Drops the oldest `n` records in place (all of them when `n`
    /// exceeds the length). Used by the pipeline's history trimming:
    /// once a month is scored and trained on, only a scoring-context
    /// tail of the stream is ever read again, so the prefix can go.
    pub fn drop_front(&mut self, n: usize) {
        let n = n.min(self.records.len());
        self.records.drain(..n);
    }

    /// Records with `start <= time < end`.
    pub fn slice_time(&self, start: u64, end: u64) -> &[LogRecord] {
        let lo = self.records.partition_point(|r| r.time < start);
        let hi = self.records.partition_point(|r| r.time < end);
        &self.records[lo..hi]
    }

    /// Normalized template frequency distribution over `vocab` ids for
    /// records in `[start, end)`.
    pub fn template_distribution(&self, vocab: usize, start: u64, end: u64) -> Vec<f32> {
        let mut dist = vec![0.0f32; vocab];
        let slice = self.slice_time(start, end);
        for r in slice {
            if r.template < vocab {
                dist[r.template] += 1.0;
            }
        }
        normalize_l1(&mut dist);
        dist
    }

    /// Extracts every window of `k` consecutive records followed by a
    /// target record, restricted to targets inside `[start, end)`.
    ///
    /// A `filter` receives the *target* record and can exclude windows
    /// (used to drop log entries near tickets when building "normal"
    /// training data).
    pub fn windows_in(
        &self,
        k: usize,
        start: u64,
        end: u64,
        mut filter: impl FnMut(&LogRecord) -> bool,
    ) -> WindowSet {
        assert!(k >= 1, "windows_in: window length must be >= 1");
        let mut out = WindowSet::default();
        if self.records.len() <= k {
            return out;
        }
        for t in k..self.records.len() {
            let target = &self.records[t];
            if target.time < start || target.time >= end || !filter(target) {
                continue;
            }
            let window = &self.records[t - k..t];
            out.ids.push(window.iter().map(|r| r.template).collect());
            let mut gaps = Vec::with_capacity(k);
            for (j, r) in window.iter().enumerate() {
                let prev_time =
                    if t - k + j == 0 { r.time } else { self.records[t - k + j - 1].time };
                gaps.push(gap_feature(r.time - prev_time));
            }
            out.gaps.push(gaps);
            out.targets.push(target.template);
            out.times.push(target.time);
        }
        out
    }

    /// All windows of the stream (no time restriction or filter).
    pub fn windows(&self, k: usize) -> WindowSet {
        self.windows_in(k, 0, u64::MAX, |_| true)
    }

    /// Splits the stream into per-month sub-streams keyed by the
    /// zero-based month index since the epoch.
    pub fn split_by_month(&self) -> Vec<(usize, LogStream)> {
        let mut out: Vec<(usize, LogStream)> = Vec::new();
        for r in &self.records {
            let m = month_index(r.time);
            match out.last_mut() {
                Some((month, stream)) if *month == m => stream.records.push(*r),
                _ => out.push((m, LogStream { records: vec![*r] })),
            }
        }
        out
    }
}

/// Local L1-normalize: nfv-syslog deliberately has no dependency on
/// nfv-tensor, so this mirrors `nfv_tensor::vecops::normalize_l1`.
fn normalize_l1(v: &mut [f32]) {
    let sum: f32 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> LogStream {
        LogStream::from_records(vec![
            LogRecord { time: 10, template: 0 },
            LogRecord { time: 20, template: 1 },
            LogRecord { time: 35, template: 2 },
            LogRecord { time: 50, template: 1 },
            LogRecord { time: 90, template: 0 },
        ])
    }

    #[test]
    fn records_are_sorted_on_construction() {
        let s = LogStream::from_records(vec![
            LogRecord { time: 50, template: 1 },
            LogRecord { time: 10, template: 0 },
        ]);
        assert_eq!(s.records()[0].time, 10);
    }

    #[test]
    fn slice_time_bounds_are_half_open() {
        let s = stream();
        let slice = s.slice_time(20, 50);
        assert_eq!(slice.len(), 2);
        assert_eq!(slice[0].time, 20);
        assert_eq!(slice[1].time, 35);
    }

    #[test]
    fn template_distribution_is_normalized() {
        let s = stream();
        let dist = s.template_distribution(3, 0, 100);
        assert_eq!(dist.len(), 3);
        assert!((dist.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((dist[1] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn windows_have_correct_targets_and_gaps() {
        let s = stream();
        let ws = s.windows(2);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws.ids[0], vec![0, 1]);
        assert_eq!(ws.targets[0], 2);
        assert_eq!(ws.times[0], 35);
        // Gap of the very first record is defined as 0.
        assert_eq!(ws.gaps[0][0], gap_feature(0));
        assert_eq!(ws.gaps[0][1], gap_feature(10));
        // Last window: records at 35, 50 targeting 90.
        assert_eq!(ws.ids[2], vec![2, 1]);
        assert_eq!(ws.targets[2], 0);
    }

    #[test]
    fn window_filter_excludes_targets() {
        let s = stream();
        let ws = s.windows_in(2, 0, u64::MAX, |r| r.template != 0);
        // The target=0 window at time 90 is dropped.
        assert_eq!(ws.len(), 2);
        assert!(ws.targets.iter().all(|&t| t != 0));
    }

    #[test]
    fn short_stream_yields_no_windows() {
        let s = LogStream::from_records(vec![LogRecord { time: 1, template: 0 }]);
        assert!(s.windows(3).is_empty());
    }

    #[test]
    fn gap_feature_is_monotone_and_saturates() {
        assert_eq!(gap_feature(0), 0.0);
        assert!(gap_feature(60) < gap_feature(3600));
        assert_eq!(gap_feature(DAY), 1.0);
        assert_eq!(gap_feature(10 * DAY), 1.0);
    }

    #[test]
    fn split_by_month_groups_contiguously() {
        let s = LogStream::from_records(vec![
            LogRecord { time: 0, template: 0 },
            LogRecord { time: 5 * DAY, template: 1 },
            LogRecord { time: 40 * DAY, template: 2 },
        ]);
        let months = s.split_by_month();
        assert_eq!(months.len(), 2);
        assert_eq!(months[0].0, 0);
        assert_eq!(months[0].1.len(), 2);
        assert_eq!(months[1].0, 1);
    }

    #[test]
    fn append_matches_rebuild_from_concatenated_records() {
        let base = vec![
            LogRecord { time: 10, template: 1 },
            LogRecord { time: 20, template: 2 },
            LogRecord { time: 20, template: 3 },
        ];
        // In-order tail (the monthly-append fast path) and an overlapping
        // tail (forces the stable-sort fallback).
        for tail in [
            vec![LogRecord { time: 20, template: 4 }, LogRecord { time: 30, template: 5 }],
            vec![LogRecord { time: 5, template: 6 }, LogRecord { time: 25, template: 7 }],
        ] {
            let mut appended = LogStream::from_records(base.clone());
            appended.append(LogStream::from_records(tail.clone()));
            let mut combined = base.clone();
            combined.extend(tail);
            let rebuilt = LogStream::from_records(combined);
            assert_eq!(appended.records(), rebuilt.records());
        }
    }

    #[test]
    fn append_empty_tail_is_a_noop() {
        let mut s = LogStream::from_records(vec![LogRecord { time: 1, template: 0 }]);
        s.append(LogStream::from_records(vec![]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn gather_selects_windows() {
        let s = stream();
        let ws = s.windows(2);
        let sub = ws.gather(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.ids[0], ws.ids[2]);
        assert_eq!(sub.targets[1], ws.targets[0]);
    }
}
