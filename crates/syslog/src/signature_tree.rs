//! Signature-tree template extraction (after Qiu et al., "What happened
//! in my network: mining network events from router syslogs", IMC '10).
//!
//! Raw syslog bodies are tokenized on whitespace and organized into a
//! tree: the root splits on token count, and each subtree recursively
//! splits on the dominant token at the most discriminative position.
//! Leaves become [`Signature`]s — token sequences where stable positions
//! are literals and the rest are wildcards. Tokens that contain digits
//! (numbers, IPs, interface names, hex ids) are treated as variable and
//! never used as split keys, the standard heuristic in log-template
//! mining.
//!
//! The tree then maps *new* raw messages to signature ids via
//! [`SignatureTree::match_message`], which is how the detector converts
//! a live syslog stream into the template sequence the LSTM consumes.

use std::collections::HashMap;

/// Configuration for [`SignatureTree::build`].
#[derive(Debug, Clone)]
pub struct SignatureTreeConfig {
    /// Minimum fraction of a group sharing a token at a position for the
    /// position to drive a split.
    pub split_support: f32,
    /// Groups smaller than this become leaves immediately.
    pub min_group: usize,
    /// Safety cap on the number of extracted signatures.
    pub max_signatures: usize,
}

impl Default for SignatureTreeConfig {
    fn default() -> Self {
        // A low split support matters: templates sharing a token count
        // land in one group, and when a dozen of them each hold well
        // under a third of the group, a high threshold would stop the
        // recursion and collapse them all into a single all-wildcard
        // catch-all signature. Any stable word carried by at least ~3%
        // of the group is worth splitting on.
        SignatureTreeConfig { split_support: 0.03, min_group: 3, max_signatures: 4096 }
    }
}

/// One token of a signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigToken {
    /// Position fixed to this word.
    Lit(String),
    /// Variable position.
    Wildcard,
}

/// An extracted log signature (template).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Dense id within the tree.
    pub id: usize,
    /// Token pattern.
    pub tokens: Vec<SigToken>,
}

impl Signature {
    /// Number of literal positions (specificity).
    pub fn literal_count(&self) -> usize {
        self.tokens.iter().filter(|t| matches!(t, SigToken::Lit(_))).count()
    }

    /// True when `words` matches this signature exactly.
    pub fn matches(&self, words: &[&str]) -> bool {
        words.len() == self.tokens.len()
            && self.tokens.iter().zip(words.iter()).all(|(t, w)| match t {
                SigToken::Lit(lit) => lit == w,
                SigToken::Wildcard => true,
            })
    }

    /// Human-readable pattern with `*` for wildcards.
    pub fn pattern(&self) -> String {
        self.tokens
            .iter()
            .map(|t| match t {
                SigToken::Lit(w) => w.as_str(),
                SigToken::Wildcard => "*",
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A fitted signature tree.
#[derive(Debug, Clone, Default)]
pub struct SignatureTree {
    signatures: Vec<Signature>,
    by_len: HashMap<usize, Vec<usize>>,
}

/// A token is variable-looking when it contains a digit (numbers, IPs,
/// interface names, hex ids) or is the wildcard marker `*` (which
/// appears when a tree is rebuilt from rendered signature patterns).
/// Such tokens never become literals. Shared with the Drain miner.
pub(crate) fn looks_variable(token: &str) -> bool {
    token == "*" || token.bytes().any(|b| b.is_ascii_digit())
}

impl SignatureTree {
    /// Extracts signatures from a training corpus of raw message bodies.
    pub fn build(corpus: &[&str], cfg: &SignatureTreeConfig) -> SignatureTree {
        assert!(
            (0.0..=1.0).contains(&cfg.split_support),
            "SignatureTree: split_support must be in [0, 1]"
        );
        // Tokenize and group by token count.
        let tokenized: Vec<Vec<&str>> =
            corpus.iter().map(|m| m.split_whitespace().collect()).collect();
        let mut by_count: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, words) in tokenized.iter().enumerate() {
            if !words.is_empty() {
                by_count.entry(words.len()).or_default().push(i);
            }
        }

        let mut tree = SignatureTree::default();
        let mut counts: Vec<usize> = by_count.keys().copied().collect();
        counts.sort_unstable();
        for count in counts {
            let members = &by_count[&count];
            split_group(&tokenized, members, cfg, &mut tree);
        }
        tree
    }

    fn push_signature(&mut self, tokens: Vec<SigToken>) {
        let id = self.signatures.len();
        let len = tokens.len();
        // Deduplicate identical leaves (can arise from sibling subtrees).
        if let Some(ids) = self.by_len.get(&len) {
            if ids.iter().any(|&i| self.signatures[i].tokens == tokens) {
                return;
            }
        }
        self.signatures.push(Signature { id, tokens });
        self.by_len.entry(len).or_default().push(id);
    }

    /// Number of extracted signatures.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True when no signature was extracted.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// All signatures.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }

    /// Signature by id.
    pub fn get(&self, id: usize) -> &Signature {
        &self.signatures[id]
    }

    /// Maps a raw message body to the most specific matching signature.
    pub fn match_message(&self, text: &str) -> Option<usize> {
        let words: Vec<&str> = text.split_whitespace().collect();
        let candidates = self.by_len.get(&words.len())?;
        candidates
            .iter()
            .copied()
            .filter(|&id| self.signatures[id].matches(&words))
            .max_by_key(|&id| self.signatures[id].literal_count())
    }
}

fn split_group(
    tokenized: &[Vec<&str>],
    members: &[usize],
    cfg: &SignatureTreeConfig,
    tree: &mut SignatureTree,
) {
    if members.is_empty() || tree.len() >= cfg.max_signatures {
        return;
    }
    let width = tokenized[members[0]].len();

    // Per-position dominant stable token and its support.
    let mut best_split: Option<(usize, &str, f32)> = None;
    let mut all_stable = true;
    let mut stable_token: Vec<Option<&str>> = vec![None; width];
    for p in 0..width {
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for &m in members {
            let tok = tokenized[m][p];
            if !looks_variable(tok) {
                *freq.entry(tok).or_insert(0) += 1;
            }
        }
        // Ties on count are broken by the token itself: `HashMap`
        // iteration order varies per instance, and letting it pick the
        // winner made the whole template catalog (and everything trained
        // on it) differ from run to run.
        let Some((&tok, &count)) = freq.iter().max_by_key(|&(&tok, &c)| (c, tok)) else {
            all_stable = false; // every token variable-looking
            continue;
        };
        if count == members.len() {
            stable_token[p] = Some(tok);
            continue;
        }
        all_stable = false;
        let support = count as f32 / members.len() as f32;
        if support >= cfg.split_support && best_split.is_none_or(|(_, _, s)| support > s) {
            best_split = Some((p, tok, support));
        }
    }

    let small = members.len() < cfg.min_group;
    if all_stable || small || best_split.is_none() {
        // Leaf: stable positions are literals, the rest wildcards.
        let tokens: Vec<SigToken> = (0..width)
            .map(|p| match stable_token[p] {
                Some(tok) => SigToken::Lit(tok.to_string()),
                None => SigToken::Wildcard,
            })
            .collect();
        tree.push_signature(tokens);
        return;
    }

    let (pos, tok, _) = best_split.expect("checked above");
    let tok = tok.to_string();
    let (with, without): (Vec<usize>, Vec<usize>) =
        members.iter().partition(|&&m| tokenized[m][pos] == tok);
    split_group(tokenized, &with, cfg, tree);
    split_group(tokenized, &without, cfg, tree);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        let mut msgs = Vec::new();
        for i in 0..20 {
            msgs.push(format!("BGP peer 10.0.{}.1 session flap count {}", i, i * 3));
            msgs.push(format!("interface xe-0/0/{} carrier down", i % 8));
            msgs.push(format!("fan tray {} failure detected on slot {}", i % 4, i % 6));
        }
        msgs
    }

    fn build_default(msgs: &[String]) -> SignatureTree {
        let refs: Vec<&str> = msgs.iter().map(|s| s.as_str()).collect();
        SignatureTree::build(&refs, &SignatureTreeConfig::default())
    }

    #[test]
    fn extracts_one_signature_per_template() {
        let msgs = corpus();
        let tree = build_default(&msgs);
        assert_eq!(
            tree.len(),
            3,
            "patterns: {:?}",
            tree.signatures().iter().map(|s| s.pattern()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn matches_unseen_instances_of_known_templates() {
        let msgs = corpus();
        let tree = build_default(&msgs);
        let id = tree.match_message("BGP peer 192.168.99.7 session flap count 4242");
        assert!(id.is_some());
        let sig = tree.get(id.unwrap());
        assert!(sig.pattern().starts_with("BGP peer *"), "{}", sig.pattern());
    }

    #[test]
    fn numeric_tokens_become_wildcards() {
        let msgs = corpus();
        let tree = build_default(&msgs);
        for sig in tree.signatures() {
            for tok in &sig.tokens {
                if let SigToken::Lit(w) = tok {
                    assert!(!looks_variable(w), "literal {:?} looks variable", w);
                }
            }
        }
    }

    #[test]
    fn unknown_structure_returns_none() {
        let msgs = corpus();
        let tree = build_default(&msgs);
        assert_eq!(tree.match_message("completely different words entirely here now ok"), None);
        assert_eq!(tree.match_message("short"), None);
    }

    #[test]
    fn distinguishes_templates_with_same_length() {
        // Same token count, different literal structure.
        let msgs: Vec<String> = (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    format!("link up on port {}", i)
                } else {
                    format!("link down on port {}", i)
                }
            })
            .collect();
        let tree = build_default(&msgs);
        assert_eq!(tree.len(), 2);
        let up = tree.match_message("link up on port 99").unwrap();
        let down = tree.match_message("link down on port 99").unwrap();
        assert_ne!(up, down);
    }

    #[test]
    fn most_specific_signature_wins_on_overlap() {
        let mut tree = SignatureTree::default();
        tree.push_signature(vec![
            SigToken::Lit("error".to_string()),
            SigToken::Wildcard,
            SigToken::Wildcard,
        ]);
        tree.push_signature(vec![
            SigToken::Lit("error".to_string()),
            SigToken::Lit("in".to_string()),
            SigToken::Wildcard,
        ]);
        let id = tree.match_message("error in module9").unwrap();
        assert_eq!(tree.get(id).literal_count(), 2);
    }

    #[test]
    fn empty_corpus_yields_empty_tree() {
        let tree = SignatureTree::build(&[], &SignatureTreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.match_message("anything at all"), None);
    }

    #[test]
    fn duplicate_leaves_are_deduplicated() {
        let msgs: Vec<String> = (0..10).map(|i| format!("same fixed words {}", i)).collect();
        let tree = build_default(&msgs);
        assert_eq!(tree.len(), 1);
    }
}
