//! Log templates: the structured representation behind raw syslog text.
//!
//! A [`Template`] is a sequence of literal tokens and typed variable
//! slots (IP address, interface name, number, ...). The simulator renders
//! template instances into raw text; the signature tree recovers the
//! template id from raw text. Keeping both directions in one crate lets
//! property tests assert the render→extract→match roundtrip.

use crate::message::Severity;
use rand::Rng;

/// Typed variable slot inside a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Dotted-quad IPv4 address.
    Ip,
    /// Small decimal number (counter, slot id, error code).
    Number,
    /// Router interface name like `xe-0/1/3`.
    Interface,
    /// BGP peer AS number like `AS65012`.
    Peer,
    /// Hex session/task identifier.
    HexId,
}

impl VarKind {
    /// Renders a random instance of this variable kind.
    pub fn render(self, rng: &mut impl Rng) -> String {
        match self {
            VarKind::Ip => format!(
                "{}.{}.{}.{}",
                rng.gen_range(1..224),
                rng.gen_range(0..256),
                rng.gen_range(0..256),
                rng.gen_range(1..255)
            ),
            VarKind::Number => format!("{}", rng.gen_range(0..10_000)),
            VarKind::Interface => format!(
                "xe-{}/{}/{}",
                rng.gen_range(0..4),
                rng.gen_range(0..2),
                rng.gen_range(0..8)
            ),
            VarKind::Peer => format!("AS{}", rng.gen_range(64_512..65_535)),
            VarKind::HexId => format!("0x{:06x}", rng.gen_range(0..0x100_0000)),
        }
    }
}

/// One token of a template body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TplToken {
    /// A fixed word.
    Lit(String),
    /// A typed variable slot.
    Var(VarKind),
}

/// Network layer a template reports on. Virtualization hides most
/// physical-layer events from vPEs (§2 of the paper), which the
/// simulator models by giving vPE catalogs few `Physical` templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Optics, fans, power, temperature — mostly invisible to a VNF.
    Physical,
    /// Link/interface state.
    Link,
    /// Routing/forwarding.
    Network,
    /// Control-plane protocols (BGP, OSPF, LDP...).
    Protocol,
    /// OS/VM-level events.
    System,
    /// Management-plane daemons.
    Management,
}

/// A log template: fixed structure with typed variable slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Stable identifier within its [`TemplateSet`].
    pub id: usize,
    /// Emitting process name.
    pub process: String,
    /// Message severity.
    pub severity: Severity,
    /// Which layer the event belongs to.
    pub layer: Layer,
    /// Token sequence.
    pub tokens: Vec<TplToken>,
}

impl Template {
    /// Builds a template from a pattern string where `{ip}`, `{num}`,
    /// `{iface}`, `{peer}` and `{hex}` mark variable slots; all other
    /// whitespace-separated tokens are literals.
    pub fn from_pattern(
        id: usize,
        process: &str,
        severity: Severity,
        layer: Layer,
        pattern: &str,
    ) -> Template {
        let tokens = pattern
            .split_whitespace()
            .map(|tok| match tok {
                "{ip}" => TplToken::Var(VarKind::Ip),
                "{num}" => TplToken::Var(VarKind::Number),
                "{iface}" => TplToken::Var(VarKind::Interface),
                "{peer}" => TplToken::Var(VarKind::Peer),
                "{hex}" => TplToken::Var(VarKind::HexId),
                lit => TplToken::Lit(lit.to_string()),
            })
            .collect();
        Template { id, process: process.to_string(), severity, layer, tokens }
    }

    /// Renders the message body with random variable instances.
    pub fn render(&self, rng: &mut impl Rng) -> String {
        let words: Vec<String> = self
            .tokens
            .iter()
            .map(|t| match t {
                TplToken::Lit(w) => w.clone(),
                TplToken::Var(kind) => kind.render(rng),
            })
            .collect();
        words.join(" ")
    }

    /// Number of tokens in the body.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }
}

/// An ordered collection of templates with stable ids.
#[derive(Debug, Clone, Default)]
pub struct TemplateSet {
    templates: Vec<Template>,
}

impl TemplateSet {
    /// Empty set.
    pub fn new() -> Self {
        TemplateSet::default()
    }

    /// Adds a template built from a pattern string and returns its id.
    pub fn add(&mut self, process: &str, severity: Severity, layer: Layer, pattern: &str) -> usize {
        let id = self.templates.len();
        self.templates.push(Template::from_pattern(id, process, severity, layer, pattern));
        id
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Template by id.
    pub fn get(&self, id: usize) -> &Template {
        &self.templates[id]
    }

    /// Iterates over all templates.
    pub fn iter(&self) -> impl Iterator<Item = &Template> {
        self.templates.iter()
    }

    /// Ids of templates on the given layer.
    pub fn ids_on_layer(&self, layer: Layer) -> Vec<usize> {
        self.templates.iter().filter(|t| t.layer == layer).map(|t| t.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn pattern_parsing_identifies_slots() {
        let t = Template::from_pattern(
            0,
            "rpd",
            Severity::Warning,
            Layer::Protocol,
            "BGP peer {ip} ( {peer} ) session flap count {num}",
        );
        assert_eq!(t.token_count(), 10);
        assert_eq!(t.tokens[0], TplToken::Lit("BGP".to_string()));
        assert_eq!(t.tokens[2], TplToken::Var(VarKind::Ip));
        assert_eq!(t.tokens[4], TplToken::Var(VarKind::Peer));
        assert_eq!(t.tokens[9], TplToken::Var(VarKind::Number));
    }

    #[test]
    fn render_fills_slots_and_keeps_literals() {
        let t = Template::from_pattern(
            0,
            "rpd",
            Severity::Info,
            Layer::Protocol,
            "peer {ip} state changed to Established",
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let text = t.render(&mut rng);
        let words: Vec<&str> = text.split_whitespace().collect();
        assert_eq!(words.len(), 6);
        assert_eq!(words[0], "peer");
        assert_eq!(words[2], "state");
        assert_eq!(words[1].split('.').count(), 4, "slot must render an IP: {}", words[1]);
    }

    #[test]
    fn renders_vary_but_structure_is_stable() {
        let t = Template::from_pattern(
            0,
            "kernel",
            Severity::Error,
            Layer::System,
            "task {hex} crashed with code {num}",
        );
        let mut rng = SmallRng::seed_from_u64(2);
        let a = t.render(&mut rng);
        let b = t.render(&mut rng);
        assert_ne!(a, b, "variable slots should differ between renders");
        assert_eq!(a.split_whitespace().count(), b.split_whitespace().count());
    }

    #[test]
    fn template_set_ids_are_dense_and_stable() {
        let mut set = TemplateSet::new();
        let a = set.add("rpd", Severity::Info, Layer::Protocol, "hello {num}");
        let b = set.add("chassisd", Severity::Error, Layer::Physical, "fan {num} failed");
        assert_eq!((a, b), (0, 1));
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(1).process, "chassisd");
        assert_eq!(set.ids_on_layer(Layer::Physical), vec![1]);
    }

    #[test]
    fn var_kinds_render_expected_shapes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(VarKind::Ip.render(&mut rng).split('.').count(), 4);
        assert!(VarKind::Peer.render(&mut rng).starts_with("AS"));
        assert!(VarKind::HexId.render(&mut rng).starts_with("0x"));
        assert!(VarKind::Interface.render(&mut rng).starts_with("xe-"));
        let n: i64 = VarKind::Number.render(&mut rng).parse().unwrap();
        assert!((0..10_000).contains(&n));
    }
}
