//! Minimal civil-time arithmetic for rendering syslog timestamps.
//!
//! The simulation clock is a `u64` count of seconds since the simulation
//! epoch (2016-10-01 00:00:00, the start of the paper's 18-month
//! window). Syslog's RFC3164 header needs month/day/hour/minute/second,
//! so this module converts epoch offsets to calendar fields without
//! pulling in a date-time dependency.

/// Simulation epoch: 2016-10-01.
pub const EPOCH_YEAR: u32 = 2016;
/// Month (1-based) of the simulation epoch.
pub const EPOCH_MONTH: u32 = 10;

/// Seconds per minute.
pub const MINUTE: u64 = 60;
/// Seconds per hour.
pub const HOUR: u64 = 3600;
/// Seconds per day.
pub const DAY: u64 = 86_400;

const MONTH_ABBR: [&str; 12] =
    ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];

/// Calendar fields of a simulation timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CivilTime {
    /// Full year, e.g. 2017.
    pub year: u32,
    /// 1-based month.
    pub month: u32,
    /// 1-based day of month.
    pub day: u32,
    /// Hour in `[0, 24)`.
    pub hour: u32,
    /// Minute in `[0, 60)`.
    pub minute: u32,
    /// Second in `[0, 60)`.
    pub second: u32,
}

fn is_leap(year: u32) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_month(year: u32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        other => panic!("invalid month {}", other),
    }
}

/// Converts an epoch offset in seconds to calendar fields.
pub fn civil_from_epoch(seconds: u64) -> CivilTime {
    let mut days = seconds / DAY;
    let rem = seconds % DAY;
    let mut year = EPOCH_YEAR;
    let mut month = EPOCH_MONTH;
    loop {
        let dim = days_in_month(year, month) as u64;
        if days < dim {
            break;
        }
        days -= dim;
        month += 1;
        if month > 12 {
            month = 1;
            year += 1;
        }
    }
    CivilTime {
        year,
        month,
        day: days as u32 + 1,
        hour: (rem / HOUR) as u32,
        minute: ((rem % HOUR) / MINUTE) as u32,
        second: (rem % MINUTE) as u32,
    }
}

/// Formats the RFC3164 `Mmm dd hh:mm:ss` header portion.
pub fn rfc3164_timestamp(seconds: u64) -> String {
    let t = civil_from_epoch(seconds);
    format!(
        "{} {:>2} {:02}:{:02}:{:02}",
        MONTH_ABBR[(t.month - 1) as usize],
        t.day,
        t.hour,
        t.minute,
        t.second
    )
}

/// Zero-based month index since the simulation epoch (month 0 = Oct '16),
/// used by the paper's monthly train/update/test protocol.
pub fn month_index(seconds: u64) -> usize {
    let t = civil_from_epoch(seconds);
    ((t.year - EPOCH_YEAR) * 12 + t.month - EPOCH_MONTH) as usize
}

/// First second of the given zero-based month index.
pub fn month_start(month_idx: usize) -> u64 {
    let mut seconds = 0u64;
    let mut year = EPOCH_YEAR;
    let mut month = EPOCH_MONTH;
    for _ in 0..month_idx {
        seconds += days_in_month(year, month) as u64 * DAY;
        month += 1;
        if month > 12 {
            month = 1;
            year += 1;
        }
    }
    seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_oct_first() {
        let t = civil_from_epoch(0);
        assert_eq!((t.year, t.month, t.day, t.hour, t.minute, t.second), (2016, 10, 1, 0, 0, 0));
    }

    #[test]
    fn rollover_to_next_month_and_year() {
        // October has 31 days.
        let t = civil_from_epoch(31 * DAY);
        assert_eq!((t.year, t.month, t.day), (2016, 11, 1));
        // Oct + Nov + Dec = 31 + 30 + 31 = 92 days.
        let t = civil_from_epoch(92 * DAY);
        assert_eq!((t.year, t.month, t.day), (2017, 1, 1));
    }

    #[test]
    fn leap_february_2020_has_29_days() {
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2017, 2), 28);
        assert_eq!(days_in_month(2100, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
    }

    #[test]
    fn rfc3164_format() {
        assert_eq!(rfc3164_timestamp(0), "Oct  1 00:00:00");
        assert_eq!(rfc3164_timestamp(DAY + 3 * HOUR + 4 * MINUTE + 5), "Oct  2 03:04:05");
    }

    #[test]
    fn month_index_counts_from_epoch() {
        assert_eq!(month_index(0), 0);
        assert_eq!(month_index(31 * DAY), 1); // Nov '16
        assert_eq!(month_index(92 * DAY), 3); // Jan '17
        assert_eq!(month_index(month_start(17)), 17); // Mar '18, last month
    }

    #[test]
    fn month_start_round_trips_with_month_index() {
        for m in 0..18 {
            let s = month_start(m);
            assert_eq!(month_index(s), m, "month {}", m);
            if s > 0 {
                assert_eq!(month_index(s - 1), m - 1, "end of month {}", m - 1);
            }
        }
    }
}
