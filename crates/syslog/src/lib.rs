//! Syslog substrate: message model, raw-text rendering and parsing, and
//! the signature-tree template extraction of Qiu et al. (IMC '10) that
//! the paper uses to structure vPE syslogs (§2, §4.2).
//!
//! The full raw-log path is exercised end to end: the simulator renders
//! template instances into RFC3164-style lines, and the detector side
//! parses those lines and recovers template ids through the signature
//! tree, exactly as the production pipeline would.

pub mod drain;
pub mod message;
pub mod parse;
pub mod signature_tree;
pub mod stream;
pub mod template;
pub mod time;
pub mod vocab;

pub use drain::{DrainConfig, DrainMiner};
pub use message::{Severity, SyslogMessage};
pub use signature_tree::{SigToken, Signature, SignatureTree, SignatureTreeConfig};
pub use stream::{LogRecord, LogStream};
pub use template::{Template, TemplateSet, VarKind};
pub use vocab::TemplateVocab;
