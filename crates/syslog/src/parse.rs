//! Parsing RFC3164-style syslog lines back into [`SyslogMessage`]s.
//!
//! The parser accepts the format produced by
//! [`SyslogMessage::to_line`](crate::message::SyslogMessage::to_line):
//! `<PRI>Mmm dd hh:mm:ss host process: text`. Because RFC3164 headers
//! carry no year, the caller supplies the epoch-relative year context
//! implicitly: timestamps are resolved against the simulation epoch by
//! searching forward from a caller-provided lower bound.

use crate::message::{Severity, SyslogMessage};
use crate::time::{civil_from_epoch, DAY};

/// Error produced when a line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "syslog parse error: {}", self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err(reason: impl Into<String>) -> ParseError {
    ParseError { reason: reason.into() }
}

const MONTH_ABBR: [&str; 12] =
    ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];

/// Parses one syslog line. `not_before` is a lower bound (in epoch
/// seconds) used to resolve the year-less RFC3164 timestamp; pass the
/// timestamp of the previous message (or 0) when reading a stream in
/// order.
pub fn parse_line(line: &str, not_before: u64) -> Result<SyslogMessage, ParseError> {
    // <PRI>
    let rest = line.strip_prefix('<').ok_or_else(|| err("missing <PRI>"))?;
    let close = rest.find('>').ok_or_else(|| err("unterminated <PRI>"))?;
    let pri: u16 = rest[..close].parse().map_err(|_| err("non-numeric PRI"))?;
    let severity = Severity::from_code((pri % 8) as u8).ok_or_else(|| err("bad severity"))?;
    let rest = &rest[close + 1..];

    // Mmm dd hh:mm:ss — the header is fixed-width ASCII; validate that
    // before byte-indexed slicing so non-ASCII garbage yields an error
    // instead of a char-boundary panic.
    if rest.len() < 16 || !rest.as_bytes()[..16].is_ascii() {
        return Err(err("truncated or non-ascii timestamp"));
    }
    let month_str = &rest[0..3];
    let month = MONTH_ABBR
        .iter()
        .position(|&m| m == month_str)
        .ok_or_else(|| err(format!("unknown month {:?}", month_str)))? as u32
        + 1;
    let day: u32 = rest[4..6].trim().parse().map_err(|_| err("bad day"))?;
    let hour: u32 = rest[7..9].parse().map_err(|_| err("bad hour"))?;
    let minute: u32 = rest[10..12].parse().map_err(|_| err("bad minute"))?;
    let second: u32 = rest[13..15].parse().map_err(|_| err("bad second"))?;
    if !(1..=31).contains(&day) || hour > 23 || minute > 59 || second > 59 {
        return Err(err("timestamp field out of range"));
    }
    let rest = rest[15..].strip_prefix(' ').ok_or_else(|| err("missing space after time"))?;

    // host process: text
    let (host, rest) = rest.split_once(' ').ok_or_else(|| err("missing host"))?;
    let (process, text) = rest.split_once(": ").ok_or_else(|| err("missing process"))?;

    let timestamp = resolve_timestamp(month, day, hour, minute, second, not_before)
        .ok_or_else(|| err("timestamp not resolvable after lower bound"))?;

    Ok(SyslogMessage {
        timestamp,
        host: host.to_string(),
        process: process.to_string(),
        severity,
        text: text.to_string(),
    })
}

/// Finds the first epoch timestamp `>= not_before.saturating_sub(1 day)`
/// whose calendar fields match. The one-day slack tolerates slightly
/// out-of-order lines around a month boundary.
fn resolve_timestamp(
    month: u32,
    day: u32,
    hour: u32,
    minute: u32,
    second: u32,
    not_before: u64,
) -> Option<u64> {
    let time_of_day = hour as u64 * 3600 + minute as u64 * 60 + second as u64;
    let start_day = not_before.saturating_sub(DAY) / DAY;
    // Scan at most ~2 years of days for the matching calendar date.
    for d in start_day..start_day + 800 {
        let civil = civil_from_epoch(d * DAY);
        if civil.month == month && civil.day == day {
            return Some(d * DAY + time_of_day);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(timestamp: u64) -> SyslogMessage {
        SyslogMessage {
            timestamp,
            host: "vpe12".to_string(),
            process: "chassisd".to_string(),
            severity: Severity::Error,
            text: "fan tray 2 failure detected on slot 4".to_string(),
        }
    }

    #[test]
    fn roundtrip_at_epoch() {
        let msg = sample(12_345);
        let parsed = parse_line(&msg.to_line(), 0).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn roundtrip_after_year_rollover() {
        // ~15 months in: Jan '18.
        let ts = 460 * DAY + 7 * 3600;
        let msg = sample(ts);
        let parsed = parse_line(&msg.to_line(), ts - 100).unwrap();
        assert_eq!(parsed.timestamp, ts);
    }

    #[test]
    fn ambiguous_month_resolved_by_lower_bound() {
        // "Oct  1" exists both at epoch (2016) and one year later (2017).
        let msg_2017 = sample(365 * DAY);
        let line = msg_2017.to_line();
        let near_epoch = parse_line(&line, 0).unwrap();
        assert_eq!(near_epoch.timestamp, msg_2017.timestamp % DAY);
        let near_2017 = parse_line(&line, 360 * DAY).unwrap();
        assert_eq!(near_2017.timestamp, msg_2017.timestamp);
    }

    #[test]
    fn text_with_colons_survives() {
        let msg = SyslogMessage {
            timestamp: 60,
            host: "vpe01".to_string(),
            process: "rpd".to_string(),
            severity: Severity::Notice,
            text: "interface xe-0/0/1: carrier transitions: 5".to_string(),
        };
        let parsed = parse_line(&msg.to_line(), 0).unwrap();
        assert_eq!(parsed.text, msg.text);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_line("no pri here", 0).is_err());
        assert!(parse_line("<abc>Oct  1 00:00:00 h p: t", 0).is_err());
        assert!(parse_line("<188>Xxx  1 00:00:00 h p: t", 0).is_err());
        assert!(parse_line("<188>Oct  1 00:00:00 hostonly", 0).is_err());
        assert!(parse_line("<188>Oct  1 00:00:00 host noprocess", 0).is_err());
    }

    #[test]
    fn non_ascii_header_is_an_error_not_a_panic() {
        assert!(parse_line("<188>Ja\u{e9}  1 00:00:00 host proc: text", 0).is_err());
        // Non-ASCII in the message body is fine.
        let ok = parse_line("<188>Oct  1 00:00:00 host proc: caf\u{e9} down", 0).unwrap();
        assert!(ok.text.contains("caf\u{e9}"));
    }

    #[test]
    fn out_of_range_time_fields_are_rejected() {
        assert!(parse_line("<188>Oct  1 99:99:99 host proc: text", 0).is_err());
        assert!(parse_line("<188>Oct  1 24:00:00 host proc: text", 0).is_err());
        assert!(parse_line("<188>Oct 32 00:00:00 host proc: text", 0).is_err());
        assert!(parse_line("<188>Oct  1 23:59:59 host proc: text", 0).is_ok());
    }
}
